#!/usr/bin/env bash
# Checks every relative markdown link in README.md, DESIGN.md,
# EXPERIMENTS.md, ROADMAP.md, CHANGES.md, and docs/*.md for a dangling
# target. External links (http/https/mailto) and pure in-page anchors
# (#fragment) are skipped; a relative target is resolved against the
# directory of the file that contains it, and its optional #fragment is
# stripped before the existence check. Exits non-zero listing every
# dangling link. Run from the repository root (CI does).
set -u

fail=0
checked=0

for file in README.md DESIGN.md EXPERIMENTS.md ROADMAP.md CHANGES.md docs/*.md; do
    [ -f "$file" ] || continue
    dir=$(dirname "$file")
    # Inline links: ](target) — tolerates several per line; skips
    # fenced/inline code by virtue of markdown links not appearing there
    # in this repo's style.
    targets=$(grep -o '](\([^)]*\))' "$file" | sed 's/^](//; s/)$//')
    while IFS= read -r target; do
        [ -n "$target" ] || continue
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ]; then
            echo "DANGLING: $file -> $target"
            fail=1
        fi
    done <<EOF
$targets
EOF
done

if [ "$fail" -ne 0 ]; then
    echo "link check failed"
    exit 1
fi
echo "link check: $checked relative links OK"
