//! Offline stand-in for `serde`, specialised to the needs of this
//! workspace.
//!
//! Instead of serde's zero-copy visitor architecture, types convert to and
//! from an owned JSON [`Value`] tree — a deliberate simplification: every
//! serialization in this repo is small experiment metadata, never a hot
//! path. The public surface mirrors real serde where the workspace touches
//! it: `use serde::{Serialize, Deserialize}` imports both the traits and
//! the derive macros, and the companion `serde_json` crate provides
//! `json!`, `to_string`, `to_string_pretty`, and `from_str`.
//!
//! Derive support covers the shapes the workspace uses: structs with named
//! fields, tuple/newtype structs, and enums with unit variants.

mod impls;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Serialization error (also used by `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Wraps an error with the path element that produced it.
    pub fn context(path: &str, inner: Error) -> Self {
        Error {
            message: format!("{path}: {}", inner.message),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can serialize itself into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `value` into `Self`.
    ///
    /// # Errors
    ///
    /// Returns an error describing the first structural mismatch.
    fn from_value(value: &Value) -> Result<Self, Error>;
}
