//! `Serialize`/`Deserialize` implementations for primitives and standard
//! containers.

use crate::value::{Map, Number, Value};
use crate::{Deserialize, Error, Serialize};

// ---------------------------------------------------------------- numbers

macro_rules! impl_unsigned {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!(
                        "expected unsigned integer, got {value}"
                    )))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!(
                        "expected integer, got {value}"
                    )))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            // Lenient like serde_json's arbitrary_precision: NaN/inf were
            // rendered as null, accept them back as NaN.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, got {other}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

// ------------------------------------------------------- bool and strings

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {value}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {value}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ----------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {value}")))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        // Emitted in sorted order so serialized output is deterministic
        // regardless of hash-iteration order.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {value}")))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(value)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected {N}-element array, got {got} elements")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom(format!(
                "expected 2-element array, got {value}"
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::custom(format!(
                "expected 3-element array, got {value}"
            ))),
        }
    }
}

// ------------------------------------------------------------ value tree

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-5i32).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.25f64.to_value()).unwrap(), 1.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&v.to_value()).unwrap(), None);
        let pair = (3u64, 4u8);
        assert_eq!(<(u64, u8)>::from_value(&pair.to_value()).unwrap(), pair);
        let nested = vec![(1u64, 2u64), (3, 4)];
        assert_eq!(
            Vec::<(u64, u64)>::from_value(&nested.to_value()).unwrap(),
            nested
        );
    }

    #[test]
    fn type_errors_are_loud() {
        assert!(u64::from_value(&Value::String("x".into())).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(u8::from_value(&300u64.to_value()).is_err());
    }
}
