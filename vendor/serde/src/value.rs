//! The owned JSON value tree and its renderers.

/// A JSON number: integers keep full 64-bit precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `f64` (lossy above 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The number as `i64`, if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }

    fn render(self, out: &mut String) {
        match self {
            Number::PosInt(v) => out.push_str(&v.to_string()),
            Number::NegInt(v) => out.push_str(&v.to_string()),
            // `{:?}` gives the shortest representation that round-trips
            // and always includes a decimal point or exponent.
            Number::Float(v) if v.is_finite() => out.push_str(&format!("{v:?}")),
            // JSON has no NaN/inf; render as null like lenient encoders.
            Number::Float(_) => out.push_str("null"),
        }
    }
}

/// A JSON object preserving insertion order (like `serde_json` preserves
/// struct field order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key, replacing (in place) any existing entry.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the object holds `key`.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Object member access (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64` if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64` if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `&str` if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice if an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object if one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Renders compact JSON.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Renders pretty JSON with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => n.render(out),
            Value::String(s) => render_string(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.render(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    render_string(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.render(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render_compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b".into(), Value::Bool(true));
        m.insert("a".into(), Value::Null);
        m.insert("b".into(), Value::Bool(false));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Bool(false)));
    }

    #[test]
    fn rendering() {
        let mut m = Map::new();
        m.insert("x".into(), Value::Number(Number::Float(1.5)));
        m.insert("s".into(), Value::String("a\"b".into()));
        m.insert(
            "l".into(),
            Value::Array(vec![Value::Number(Number::PosInt(3))]),
        );
        let v = Value::Object(m);
        assert_eq!(v.render_compact(), r#"{"x":1.5,"s":"a\"b","l":[3]}"#);
        assert!(v.render_pretty().contains("\n  \"x\": 1.5"));
    }

    #[test]
    fn float_integers_keep_decimal_point() {
        assert_eq!(Value::Number(Number::Float(2.0)).render_compact(), "2.0");
        assert_eq!(Value::Number(Number::PosInt(2)).render_compact(), "2");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(
            Value::Number(Number::Float(f64::NAN)).render_compact(),
            "null"
        );
    }
}
