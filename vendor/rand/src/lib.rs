//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, self-contained implementation of the traits it relies
//! on: [`RngCore`], [`SeedableRng`], [`Rng`] (with `gen` and `gen_range`),
//! and the [`Standard`] distribution for `f64`/`u64`/`bool` and friends.
//!
//! Determinism contract: every generator in the workspace is a
//! [`rand_chacha`-style](https://docs.rs/rand_chacha) ChaCha8 stream, and
//! all sampling here is a pure function of the stream, so experiment
//! results are reproducible across runs, platforms, and thread counts.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type (e.g. `[u8; 32]` for ChaCha).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the SplitMix64 sequence (the
    /// same construction `rand_core` 0.6 uses for its default method).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut s = z;
            s = (s ^ (s >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            s = (s ^ (s >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            s ^= s >> 31;
            for (dst, src) in chunk.iter_mut().zip(s.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// A distribution that can be sampled with any [`RngCore`].
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution of a type: `[0, 1)` for floats, all
/// values for integers and `bool`.
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() >> 31 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64, u128 => next_u64, i128 => next_u64,
);

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f32 = Standard.sample(rng);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Matches rand's float treatment: the closed upper bound is a
        // measure-zero event, so sampling the half-open span is uniform.
        let unit: f64 = Standard.sample(rng);
        lo + (hi - lo) * unit
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit: f32 = Standard.sample(rng);
        lo + (hi - lo) * unit
    }
}

/// Uniform integer in `[0, span)` by 128-bit widening multiply.
///
/// The bias is at most `span / 2^64`, far below anything observable in
/// these experiments, and the method is branch-free and allocation-free.
#[inline]
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Only reachable for the full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let unit: f64 = Standard.sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 over an incrementing counter: a valid (if weak)
            // bit source that is good enough to test plumbing.
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                for (d, s) in chunk.iter_mut().zip(v) {
                    *d = s;
                }
            }
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = Counter(0);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..10_000 {
            assert!((10..20).contains(&rng.gen_range(10..20)));
            assert!((0..86_400).contains(&rng.gen_range(0..86_400)));
            let v: u64 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&v));
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let s: i64 = rng.gen_range(-100..100);
            assert!((-100..100).contains(&s));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Counter(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        Counter(0).gen_range(5..5);
    }
}
