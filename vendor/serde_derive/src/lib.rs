//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored value-tree `serde` crate, without `syn`/`quote`: the input
//! token stream is walked by hand and the generated impl is assembled as a
//! string. Supported shapes — the only ones this workspace uses:
//!
//! * structs with named fields → JSON objects in field order,
//! * newtype structs (one unnamed field) → transparent,
//! * tuple structs (several unnamed fields) → JSON arrays,
//! * enums whose variants all carry no data → JSON strings.
//!
//! `#[serde(...)]` attributes are not supported and are rejected loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

fn expand(input: TokenStream, direction: Direction) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => generate(&name, &shape, direction)
            .parse()
            .expect("generated impl parses"),
        Err(message) => format!("compile_error!({message:?});")
            .parse()
            .expect("error tokens parse"),
    }
}

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility; find `struct` or `enum`.
    let mut is_enum = false;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' then the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            Some(_) => i += 1,
            None => return Err("derive input has no struct or enum".to_string()),
        }
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".to_string()),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde derive does not support generics (on `{name}`)"
            ));
        }
    }

    if is_enum {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            _ => return Err(format!("expected enum body for `{name}`")),
        };
        return Ok((name, Shape::UnitEnum(parse_unit_variants(body)?)));
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream())?;
            Ok((name, Shape::Named(fields)))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = count_tuple_fields(g.stream());
            Ok((name, Shape::Tuple(arity)))
        }
        _ => Err(format!(
            "unsupported struct shape for `{name}` (unit structs are not serialized)"
        )),
    }
}

/// Field names of a brace-delimited struct body, in declaration order.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        fields.push(name);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Number of fields in a paren-delimited tuple struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut arity = 0;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tok in body {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        arity += 1; // no trailing comma
    }
    arity
}

/// Variant names of an all-unit enum body.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                _ => break,
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "vendored serde derive supports only unit enum variants (`{name}` carries data)"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!("explicit discriminants are unsupported (`{name}`)"));
            }
            Some(other) => return Err(format!("unexpected token after `{name}`: `{other}`")),
            None => {}
        }
        variants.push(name);
    }
    Ok(variants)
}

fn generate(name: &str, shape: &Shape, direction: Direction) -> String {
    match direction {
        Direction::Serialize => generate_serialize(name, shape),
        Direction::Deserialize => generate_deserialize(name, shape),
    }
}

fn generate_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let mut body = String::from("let mut map = ::serde::Map::new();\n");
            for field in fields {
                body.push_str(&format!(
                    "map.insert({field:?}.to_string(), \
                     ::serde::Serialize::to_value(&self.{field}));\n"
                ));
            }
            body.push_str("::serde::Value::Object(map)");
            body
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "::serde::Value::String(match self {{ {} }}.to_string())",
                arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn generate_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let mut body = format!(
                "let obj = value.as_object().ok_or_else(|| \
                 ::serde::Error::custom(format!(\"expected object for {name}, got {{value}}\")))?;\n\
                 Ok({name} {{\n"
            );
            for field in fields {
                body.push_str(&format!(
                    "{field}: ::serde::Deserialize::from_value(\
                     obj.get({field:?}).unwrap_or(&::serde::Value::Null))\
                     .map_err(|e| ::serde::Error::context(\"{name}.{field}\", e))?,\n"
                ));
            }
            body.push_str("})");
            body
        }
        Shape::Tuple(1) => format!(
            "Ok({name}(::serde::Deserialize::from_value(value)\
             .map_err(|e| ::serde::Error::context({name:?}, e))?))"
        ),
        Shape::Tuple(arity) => {
            let mut body = format!(
                "let items = value.as_array().ok_or_else(|| \
                 ::serde::Error::custom(format!(\"expected array for {name}, got {{value}}\")))?;\n\
                 if items.len() != {arity} {{\n\
                     return Err(::serde::Error::custom(format!(\
                         \"expected {arity} elements for {name}, got {{}}\", items.len())));\n\
                 }}\n\
                 Ok({name}(\n"
            );
            for i in 0..*arity {
                body.push_str(&format!(
                    "::serde::Deserialize::from_value(&items[{i}])\
                     .map_err(|e| ::serde::Error::context(\"{name}.{i}\", e))?,\n"
                ));
            }
            body.push_str("))");
            body
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "let tag = value.as_str().ok_or_else(|| \
                 ::serde::Error::custom(format!(\"expected string for {name}, got {{value}}\")))?;\n\
                 match tag {{\n{}\n\
                 other => Err(::serde::Error::custom(format!(\
                     \"unknown {name} variant {{other:?}}\"))),\n}}",
                arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
