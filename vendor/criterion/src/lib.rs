//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API this workspace's benches use
//! ([`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`criterion_group!`], [`criterion_main!`],
//! [`black_box`]) as a plain wall-clock harness: each benchmark runs a
//! short calibration pass, then `sample_size` timed samples, and prints
//! min/median/mean per iteration.
//!
//! Statistical machinery (outlier analysis, HTML reports, comparison with
//! saved baselines) is intentionally absent.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim times one
/// routine call per setup call regardless of variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured call.
    PerIteration,
}

/// The benchmark registry and runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// Substring filter from the command line (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Configures this runner from `std::env::args` (bench name filter).
    /// Called by [`criterion_main!`]; not part of the real criterion API.
    #[doc(hidden)]
    pub fn configure_from_args(mut self) -> Self {
        // Cargo invokes bench binaries as `<bin> --bench [filter]`; any
        // non-flag argument is a substring filter on benchmark names.
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Runs one benchmark: a calibration pass sizing iterations to roughly
    /// 20ms per sample, then `sample_size` timed samples.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(f) = &self.filter {
            if !name.contains(f.as_str()) {
                return self;
            }
        }

        // Calibrate: one un-timed run to find per-iteration cost.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let target = Duration::from_millis(20);
        let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let min = samples_ns[0];
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        println!(
            "{name:<44} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {iters} iters)",
            format_ns(min),
            format_ns(median),
            format_ns(mean),
            self.sample_size,
        );
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times closures inside one benchmark sample.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Groups benchmark functions, mirroring criterion's `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
        #[doc(hidden)]
        fn __criterion_config_for(name: &str) -> Option<$crate::Criterion> {
            if name == stringify!($name) {
                Some($config)
            } else {
                None
            }
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running the given groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $(
                let config = __criterion_config_for(stringify!($group))
                    .unwrap_or_default()
                    .configure_from_args();
                let mut criterion = config;
                $group(&mut criterion);
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(2);
        let mut calls = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| std::hint::black_box(3u64 * 7));
            calls += 1;
        });
        // One calibration call plus two samples.
        assert_eq!(calls, 3);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("match".into()),
        };
        let mut ran = false;
        c.bench_function("other/name", |_| ran = true);
        assert!(!ran);
        c.bench_function("does/match/this", |b| {
            ran = true;
            b.iter(|| 1u8);
        });
        assert!(ran);
    }

    #[test]
    fn formats_durations() {
        assert_eq!(format_ns(12.3), "12.3 ns");
        assert_eq!(format_ns(4_500.0), "4.50 us");
        assert_eq!(format_ns(7_200_000.0), "7.20 ms");
        assert_eq!(format_ns(1_500_000_000.0), "1.500 s");
    }
}
