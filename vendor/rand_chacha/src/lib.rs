//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream RNG.
//!
//! This is a full implementation of the ChaCha block function (Bernstein,
//! 2008) with 8 rounds, exposing the [`ChaCha8Rng`] type the workspace
//! seeds all of its experiments from. The keystream is a pure function of
//! the 32-byte seed, so every simulation in the suite is reproducible from
//! its root `u64` via [`rand::SeedableRng::seed_from_u64`].
//!
//! Word order note: output words are consumed in block order (the standard
//! ChaCha serialization), `next_u64` takes the low half first.

pub use rand::{RngCore, SeedableRng};

/// Re-export mirroring `rand_chacha`'s public `rand_core` dependency.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const ROUNDS: usize = 8;
const WORDS_PER_BLOCK: usize = 16;

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; WORDS_PER_BLOCK],
    /// Current output keystream block.
    buffer: [u32; WORDS_PER_BLOCK],
    /// Next unconsumed word in `buffer`; `WORDS_PER_BLOCK` = exhausted.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buffer.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        self.index = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

#[inline(always)]
fn quarter_round(s: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; WORDS_PER_BLOCK];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            for (d, s) in chunk.iter_mut().zip(bytes) {
                *d = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// IETF RFC 7539 test vector structure check: with the all-zero key and
    /// 20 rounds the first block is a published constant. We run 8 rounds,
    /// so instead verify the keystream against an independently computed
    /// property: determinism, full-period word consumption, and block
    /// chaining.
    #[test]
    fn deterministic_and_chained() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let first: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let again: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(first, again);
        // Crossing the 16-word block boundary must not repeat output.
        let mut seen = first.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 64, "keystream repeated within 4 blocks");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bytes_match_words() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let mut b = ChaCha8Rng::seed_from_u64(3);
        let mut bytes = [0u8; 8];
        a.fill_bytes(&mut bytes);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        assert_eq!(&bytes[..4], &w0);
        assert_eq!(&bytes[4..], &w1);
    }

    #[test]
    fn counter_carries_across_blocks() {
        // Consuming >2^4 blocks exercises the word-12 increment; just
        // check a long stream has sane statistics (mean of unit floats).
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
