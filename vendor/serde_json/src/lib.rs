//! Offline stand-in for `serde_json` over the vendored value-tree `serde`.
//!
//! Provides the pieces the workspace uses: [`json!`], [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], and the [`Value`]
//! tree re-exported from `serde`.

mod parse;

pub use parse::from_str_value;
pub use serde::{Error, Map, Number, Value};

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the vendored value model; the `Result` mirrors the real
/// `serde_json` signature so call sites stay portable.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_compact())
}

/// Serializes `value` to pretty JSON with two-space indentation.
///
/// # Errors
///
/// Never fails for the vendored value model (see [`to_string`]).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_pretty())
}

/// Converts any serializable value to a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an error on malformed JSON or a structural mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::from_str_value(text)?;
    T::from_value(&value)
}

/// Builds a [`Value`] with JSON literal syntax, interpolating Rust
/// expressions, like `serde_json::json!`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation detail of [`json!`] (a token-tree muncher in the style
/// of the real `serde_json`). Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ------------------------------------------------ array accumulation
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----------------------------------------------- object accumulation
    // (@object $map (key tokens) (remaining tokens) (copy of remaining))
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ------------------------------------------------------- main entry
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn literals_and_interpolation() {
        let name = "fridge";
        let err = 0.25f64;
        let v = json!({
            "device": name,
            "error": err,
            "count": 3,
            "nested": { "ok": true, "list": [1, 2.5, "x", null] },
        });
        assert_eq!(
            v.render_compact(),
            r#"{"device":"fridge","error":0.25,"count":3,"nested":{"ok":true,"list":[1,2.5,"x",null]}}"#
        );
    }

    #[test]
    fn expressions_with_paths_and_calls() {
        struct P {
            error_factor: f64,
        }
        let p = P { error_factor: 0.5 };
        let xs = [1.0f64, 2.0];
        let v = json!({
            "e": p.error_factor,
            "sum": xs.iter().sum::<f64>(),
            "vec": (0..3).map(|i| json!(i)).collect::<Vec<_>>(),
        });
        assert_eq!(v.render_compact(), r#"{"e":0.5,"sum":3.0,"vec":[0,1,2]}"#);
    }

    #[test]
    fn round_trip_through_parser() {
        let v = json!({"a": [1, -2, 3.5], "b": {"c": "d\ne"}, "n": null});
        let text = crate::to_string(&v).unwrap();
        let back: crate::Value = crate::from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
