//! A strict recursive-descent JSON parser.

use serde::{Error, Map, Number, Value};

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns an error with byte position on malformed input.
pub fn from_str_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error::custom(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(&format!("unexpected `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1; // past 'u'
                            let first = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid escape code point"))?,
                            );
                            continue; // pos already past the escape
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let text =
                        std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    /// Parses exactly four hex digits starting at `pos`, leaving `pos`
    /// after them.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(v) {
                        return Ok(Value::Number(Number::NegInt(-neg)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str_value("null").unwrap(), Value::Null);
        assert_eq!(from_str_value(" true ").unwrap(), Value::Bool(true));
        assert_eq!(
            from_str_value("42").unwrap(),
            Value::Number(Number::PosInt(42))
        );
        assert_eq!(
            from_str_value("-7").unwrap(),
            Value::Number(Number::NegInt(-7))
        );
        assert_eq!(
            from_str_value("1.5e2").unwrap(),
            Value::Number(Number::Float(150.0))
        );
        assert_eq!(
            from_str_value(r#""a\nb""#).unwrap(),
            Value::String("a\nb".into())
        );
    }

    #[test]
    fn parses_structures() {
        let v = from_str_value(r#"{"a": [1, 2], "b": {"c": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("b").unwrap().get("c").unwrap().is_null());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str_value(r#""A""#).unwrap(), Value::String("A".into()));
        // Raw UTF-8 and the escaped surrogate pair for 😀 (U+1F600).
        assert_eq!(
            from_str_value(r#""😀""#).unwrap(),
            Value::String("😀".into())
        );
        assert_eq!(
            from_str_value("\"\\uD83D\\uDE00\"").unwrap(),
            Value::String("😀".into())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str_value("{").is_err());
        assert!(from_str_value("[1,]").is_err());
        assert!(from_str_value("nulla").is_err());
        assert!(from_str_value("\"unterminated").is_err());
    }
}
