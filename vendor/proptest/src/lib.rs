//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: numeric range
//! strategies, `any::<bool>()`, tuple strategies, `prop::collection::vec`,
//! the [`proptest!`] macro (including `#![proptest_config(...)]`), and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case prints its inputs and panics;
//! * case generation is a deterministic ChaCha8 stream seeded from the
//!   test name, so failures reproduce exactly without regression files;
//! * `PROPTEST_CASES` overrides the per-test case count (default 64).

use rand::Rng as _;
use rand_chacha::rand_core::SeedableRng;

/// The deterministic RNG property strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand_chacha::ChaCha8Rng,
}

impl TestRng {
    /// A generator seeded from a stable hash of `label` (the test name).
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: rand_chacha::ChaCha8Rng::seed_from_u64(h),
        }
    }
}

/// Per-test configuration, mirroring `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: default_cases(),
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The default case count: `PROPTEST_CASES` env var, or 64.
pub fn default_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.inner.gen_range(self.start..self.end)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// A value with a "natural" full-domain strategy.
pub trait Arbitrary {
    /// The strategy `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a type: `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for an entire primitive domain.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary {
    ($($t:ty => |$rng:ident| $body:expr),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, $rng: &mut TestRng) -> $t {
                $body
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Self::Strategy {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary!(
    bool => |rng| rng.inner.gen::<bool>(),
    u8 => |rng| rng.inner.gen::<u8>(),
    u32 => |rng| rng.inner.gen::<u32>(),
    u64 => |rng| rng.inner.gen::<u64>(),
    usize => |rng| rng.inner.gen::<usize>(),
    i32 => |rng| rng.inner.gen::<i32>(),
    i64 => |rng| rng.inner.gen::<i64>(),
    f64 => |rng| rng.inner.gen::<f64>(),
);

/// A strategy that always yields a clone of one value (`Just(x)`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A weighted union of same-valued strategies — what [`prop_oneof!`]
/// builds. Each draw picks an arm with probability proportional to its
/// weight, then delegates to it.
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof needs a positive total weight");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.inner.gen_range(0..total);
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick within total")
    }
}

/// Weighted (or uniform) choice between strategies of one value type,
/// mirroring proptest's `prop_oneof!`:
///
/// ```ignore
/// let s = prop_oneof![
///     5 => 0.0f64..100.0,
///     1 => Just(f64::NAN),
/// ];
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight, Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>)),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>)),+])
    };
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// A strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(
            !size.is_empty(),
            "vec strategy needs a non-empty size range"
        );
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.inner.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, Union,
    };

    /// The `prop::` namespace (`prop::collection::vec` and friends).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests over random inputs.
///
/// Mirrors the `proptest!` surface this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///     #[test]
///     fn prop(x in 0u64..10, v in prop::collection::vec(0.0f64..1.0, 1..5)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    let inputs = ($(Clone::clone(&$arg),)+);
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed with inputs {} = {:?}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            stringify!(($($arg),+)),
                            inputs,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    // Catch-all LAST: internal `@with_config` calls must match above.
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property test (plain `assert!` without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            x in 5u64..10,
            f in -1.0f64..1.0,
            v in prop::collection::vec(any::<bool>(), 2..6),
            pair in (0u64..3, 10usize..12),
        ) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(pair.0 < 3 && (10..12).contains(&pair.1));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_accepted(x in 0u32..2) {
            prop_assert!(x < 2);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let s = 0u64..1_000_000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn just_and_oneof_cover_their_arms() {
        let mut rng = crate::TestRng::deterministic("oneof");
        assert!(Just(f64::NAN).generate(&mut rng).is_nan());
        let s = prop_oneof![
            3 => 0.0f64..1.0,
            1 => Just(f64::NAN),
        ];
        let draws: Vec<f64> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(|v| v.is_nan()), "NaN arm never drawn");
        assert!(
            draws.iter().any(|v| (0.0..1.0).contains(v)),
            "range arm never drawn"
        );
        // Unweighted form: every arm weight defaults to 1.
        let uniform = prop_oneof![Just(1u64), Just(2u64)];
        let picks: std::collections::HashSet<u64> =
            (0..50).map(|_| uniform.generate(&mut rng)).collect();
        assert_eq!(picks.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn zero_weight_union_rejected() {
        crate::Union::<u64>::new(vec![(0, Box::new(Just(1u64)))]);
    }
}
