//! Offline stand-in for `rayon`.
//!
//! Covers the subset the workspace uses: `par_iter()` / `into_par_iter()`
//! on slices, `Vec`, and integer ranges, followed by `.map(...)` and
//! `.collect()` / `.for_each(...)`.
//!
//! Unlike real rayon there is no global work-stealing pool: each `map`
//! runs eagerly on a scoped pool of OS threads pulling `(index, item)`
//! pairs from a shared queue, and results are merged back **in index
//! order**. That makes every adapter chain produce output identical to
//! the equivalent serial iterator regardless of thread count — the
//! property the fleet engine's determinism tests rely on.
//!
//! Thread count is `RAYON_NUM_THREADS` if set (a value of 1 forces the
//! serial path), otherwise `std::thread::available_parallelism()`.

use std::sync::Mutex;

/// Number of worker threads a parallel map will use.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Applies `f` to every item on a scoped thread pool, returning results
/// in input order.
///
/// Items are handed out one at a time from a shared queue, so uneven
/// per-item cost load-balances naturally. A panic in `f` propagates to
/// the caller when the scope joins.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let queue = Mutex::new(items.into_iter().enumerate());
    let done = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let next = queue.lock().expect("queue poisoned").next();
                    match next {
                        Some((index, item)) => local.push((index, f(item))),
                        None => break,
                    }
                }
                done.lock().expect("results poisoned").extend(local);
            });
        }
    });

    let mut merged = done.into_inner().expect("results poisoned");
    merged.sort_unstable_by_key(|(index, _)| *index);
    merged.into_iter().map(|(_, value)| value).collect()
}

/// An eager parallel iterator: adapters run immediately and buffer their
/// output, preserving input order.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map preserving input order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// Runs `f` on every item in parallel, discarding results.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map(self.items, f);
    }

    /// Drains the buffered results into any `FromIterator` collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// Item type of the produced iterator.
    type Item: Send;

    /// Converts `self` into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),* $(,)?) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize);

/// Conversion into a [`ParIter`] over references (`par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send;

    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Rayon-style prelude: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<u64> = (0u64..200).into_par_iter().map(|i| i * i).collect();
        let expected: Vec<u64> = (0u64..200).map(|i| i * i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_iter_over_refs() {
        let words = vec!["a".to_string(), "bb".into(), "ccc".into()];
        let lens: Vec<usize> = words.par_iter().map(|w| w.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        let out: Vec<u64> = (0u64..64)
            .into_par_iter()
            .map(|i| {
                // Make early items slow so late items finish first.
                if i < 8 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                i
            })
            .collect();
        assert_eq!(out, (0u64..64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn for_each_runs_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0usize..100).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }
}
