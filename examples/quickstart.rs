//! Quickstart: simulate a smart home, attack its meter data, defend it.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use iot_privacy_suite::defense::{Chpr, Defense};
use iot_privacy_suite::homesim::{Home, HomeConfig};
use iot_privacy_suite::niom::{evaluate, ThresholdDetector};
use iot_privacy_suite::timeseries::rng::seeded_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate one week of a worker household at 1-minute resolution.
    let home = Home::simulate(&HomeConfig::new(7).days(7));
    println!(
        "simulated {} days of meter data ({} samples, {:.1} kWh total)",
        7,
        home.meter.len(),
        home.meter.energy_kwh()
    );

    // 2. The NIOM attack: infer occupancy from the meter alone.
    let attack = ThresholdDetector::default();
    let before = evaluate(&attack, &home.meter, &home.occupancy)?;
    println!(
        "NIOM attack on raw meter:   accuracy {:.1}%  MCC {:.3}",
        100.0 * before.accuracy,
        before.mcc
    );

    // 3. The CHPr defense: a water heater masks the occupancy signal.
    let defended = Chpr::default().apply(&home.meter, &mut seeded_rng(1));
    let after = evaluate(&attack, &defended.trace, &home.occupancy)?;
    println!(
        "NIOM attack after CHPr:     accuracy {:.1}%  MCC {:.3}",
        100.0 * after.accuracy,
        after.mcc
    );
    println!(
        "CHPr cost: {:.1} kWh extra energy, {:.0} L hot water unserved",
        defended.cost.extra_energy_kwh, defended.cost.unserved_hot_water_liters
    );
    println!("\nThe attack collapsed from informative to near-random — Figure 6 in one example.");
    Ok(())
}
