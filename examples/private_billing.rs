//! Private billing: a meter that proves its bill without revealing a
//! single interval reading (Section III-C, "Private Memoirs of a Smart
//! Meter").
//!
//! ```bash
//! cargo run --release --example private_billing
//! ```

use iot_privacy_suite::homesim::{Home, HomeConfig};
use iot_privacy_suite::niom::{OccupancyDetector, ThresholdDetector};
use iot_privacy_suite::privatemeter::{MeterProver, PedersenParams, UtilityVerifier};
use iot_privacy_suite::timeseries::rng::seeded_rng;
use iot_privacy_suite::timeseries::Resolution;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let home = Home::simulate(&HomeConfig::new(12).days(30));
    let readings = home.meter.downsample(Resolution::FIFTEEN_MINUTES)?;

    // What the cloud pipeline normally sees — and what it can infer:
    let attack = ThresholdDetector::default();
    let inferred = attack.detect(&home.meter);
    let c = home.occupancy.confusion(&inferred)?;
    println!(
        "raw-data pipeline: utility stores {} readings and could infer occupancy at {:.0}% accuracy",
        readings.len(),
        100.0 * c.accuracy()
    );

    // The private meter instead sends commitments.
    let params = PedersenParams::demo();
    let prover = MeterProver::from_trace(params, &readings, &mut seeded_rng(3));
    let verifier = UtilityVerifier::new(params);

    let receipt = prover.bill_total();
    assert!(verifier.verify_total(prover.commitments(), &receipt));
    println!(
        "\nprivate meter: utility received {} commitments (pure randomness to it),",
        prover.len()
    );
    println!(
        "verified the monthly bill of {:.1} kWh from the aggregate opening alone.",
        receipt.total as f64 / 1_000.0
    );

    // A tampering meter is caught.
    let mut cheat = receipt;
    cheat.total -= 1_000; // shave 1 kWh off the bill
    assert!(!verifier.verify_total(prover.commitments(), &cheat));
    println!("a meter claiming 1 kWh less was rejected by the homomorphic check. ✓");
    println!("\nNo readings left the home: nothing for NIOM or NILM to attack.");
    Ok(())
}
