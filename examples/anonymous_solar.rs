//! "Anonymous" solar data isn't: recovering a home's location from its
//! published generation trace (the paper's Enphase scenario, Figures 4–5).
//!
//! ```bash
//! cargo run --release --example anonymous_solar
//! ```

use iot_privacy_suite::solar::{GeoPoint, SolarSite, SunSpot, WeatherGrid, Weatherman};
use iot_privacy_suite::timeseries::rng::seeded_rng;
use iot_privacy_suite::timeseries::Resolution;

fn main() {
    // A homeowner in Amherst, MA shares their "anonymized" solar feed —
    // geo-location stripped, exactly as the Enphase privacy setting offers.
    let secret_location = GeoPoint::new(42.39, -72.53);
    let mut weather = WeatherGrid::new_region(GeoPoint::new(42.1, -72.2), 300.0, 9, 99);
    weather.extend_to(90, 99);
    let site = SolarSite::new(secret_location, 6.2);

    println!("published: 90 days of generation data, no location attached\n");

    // Attack 1 — SunSpot: solar geometry on 1-minute data.
    let fine = site.generate(90, Resolution::ONE_MINUTE, &weather, &mut seeded_rng(1));
    if let Some(guess) = SunSpot::default().localize(&fine) {
        println!(
            "SunSpot (sunrise/sunset geometry):  {} — {:.1} km from the home",
            guess,
            secret_location.distance_km(&guess)
        );
    }

    // Attack 2 — Weatherman: correlate against public weather data, using
    // only hourly generation.
    let coarse = site.generate(90, Resolution::ONE_HOUR, &weather, &mut seeded_rng(2));
    if let Some(guess) = Weatherman::default().localize(&coarse, &weather) {
        println!(
            "Weatherman (weather correlation):   {} — {:.1} km from the home",
            guess,
            secret_location.distance_km(&guess)
        );
    }

    println!("\nStripping the geo-tag did not anonymize the data: the location is");
    println!("embedded in the generation signal itself (sun geometry + weather).");
}
