//! Appliance spy: what a NILM-equipped analytics company learns about your
//! daily life from nothing but the smart-meter feed.
//!
//! Reproduces the paper's intro scenario — "do users eat frozen dinners?
//! what days do they do laundry?" — by running PowerPlay against a
//! simulated home and summarizing the inferred appliance schedule.
//!
//! ```bash
//! cargo run --release --example appliance_spy
//! ```

use iot_privacy_suite::homesim::{Home, HomeConfig};
use iot_privacy_suite::loads::Catalogue;
use iot_privacy_suite::nilm::{profile, Disaggregator, PowerPlay};

fn main() {
    let catalogue = Catalogue::standard();
    let home = Home::simulate(&HomeConfig::new(33).days(7).catalogue(catalogue.clone()));

    // The attacker sees only the aggregate meter trace.
    let tracker = PowerPlay::from_catalogue(&catalogue);
    let estimates = tracker.disaggregate(&home.meter);

    println!("inferred appliance behaviour (7 days, aggregate meter only):\n");
    for est in &estimates {
        let kwh = est.trace.energy_kwh();
        if kwh < 0.01 {
            continue;
        }
        let p = profile(est, 50.0);
        let days: Vec<String> = p.active_days.iter().map(|d| format!("day{d}")).collect();
        let when = p
            .modal_start_hour
            .map(|h| format!("usually ~{h:02}:00"))
            .unwrap_or_default();
        println!(
            "  {:12} {:6.2} kWh  {:4.1} uses/day  active: {:24} {}",
            est.name,
            kwh,
            p.events_per_day(7),
            days.join(" "),
            when
        );
    }

    // The privacy punchline: laundry day, cooking habits, and TV time are
    // all visible, as the paper's job-ad figure gloats.
    let dryer = estimates
        .iter()
        .find(|e| e.name == "dryer")
        .expect("tracked");
    let laundry_days: Vec<u64> = (0..7)
        .filter(|&d| dryer.trace.day_slice(d).energy_kwh() > 0.5)
        .collect();
    println!("\n→ laundry day(s) this week: {laundry_days:?}");
    let tv = estimates.iter().find(|e| e.name == "tv").expect("tracked");
    println!(
        "→ hours of TV this week: {:.1}",
        tv.trace.energy_kwh() / 0.15
    );
    let cooking: f64 = estimates
        .iter()
        .filter(|e| ["cooktop", "microwave", "toaster", "kettle"].contains(&e.name.as_str()))
        .map(|e| e.trace.energy_kwh())
        .sum();
    println!("→ cooking energy: {cooking:.1} kWh (microwave-heavy = frozen dinners?)");
}
