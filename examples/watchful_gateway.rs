//! The watchful gateway: fingerprinting the devices on a home LAN, then
//! catching one that turns into a bot (Section IV end-to-end).
//!
//! ```bash
//! cargo run --release --example watchful_gateway
//! ```

use iot_privacy_suite::netsim::{
    fingerprint::{labelled_examples, DeviceClassifier, NaiveBayes},
    gateway::inject_compromise,
    simulate_home_network, DeviceType, GatewayPolicy, SmartGateway, Verdict,
};
use iot_privacy_suite::timeseries::{LabelSeries, Resolution, Timestamp};

fn main() {
    let occupancy = LabelSeries::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 5 * 1440, |i| {
        let m = i % 1440;
        !(540..1_020).contains(&m)
    });
    let inventory: Vec<DeviceType> = DeviceType::all().to_vec();

    // Week 1: a passive observer (or the gateway) learns the traffic.
    let week1 = simulate_home_network(&inventory, &occupancy, 5, 1);
    let classifier = NaiveBayes::train(&labelled_examples(&week1, 5));
    println!(
        "trained on week 1 flow metadata ({} flows)\n",
        week1.flows.len()
    );

    // Week 2: identify every device from metadata alone.
    let week2 = simulate_home_network(&inventory, &occupancy, 5, 2);
    println!("device identification from encrypted-traffic metadata:");
    for (truth, features) in labelled_examples(&week2, 1) {
        let guess = classifier.predict(&features);
        println!(
            "  actual {:16} → inferred {:16} {}",
            truth.to_string(),
            guess.to_string(),
            if guess == truth { "✓" } else { "✗" }
        );
    }

    // The gateway side: profile in week 1, catch a compromise in week 2.
    let mut gateway = SmartGateway::new(GatewayPolicy::default());
    gateway.profile(&week1.flows, week1.horizon_secs);
    let mut week2_attacked = week2.clone();
    inject_compromise(
        &mut week2_attacked.flows,
        2,
        86_400,
        week2_attacked.horizon_secs,
    );
    let verdicts = gateway.monitor(&week2_attacked.flows, week2_attacked.horizon_secs);
    println!("\ngateway verdicts after device 2 joins a DDoS:");
    let mut ids: Vec<_> = verdicts.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let dtype = week2
            .type_of(id)
            .map(|t| t.to_string())
            .unwrap_or_else(|| "unknown".into());
        println!("  device {id:2} ({dtype:16}) → {:?}", verdicts[&id]);
    }
    assert_eq!(verdicts[&2], Verdict::Quarantined);
    println!("\nThe bot was isolated; everything else kept its least-privilege access.");
}
