//! The thread-safe metric registry and the RAII span guard.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use crate::report::{MetricsReport, Summary};

/// Per-series sample retention cap. Exact `count`/`total`/`min`/`max` are
/// tracked for every observation regardless; only the quantile buffer is
/// bounded, so unbounded workloads (million-home fleets, criterion loops)
/// cannot grow registry memory without limit.
pub const SAMPLE_CAP: usize = 65_536;

/// One timing or value series: exact moments plus a bounded sample buffer
/// for quantiles.
#[derive(Debug, Clone, Default)]
pub(crate) struct Series {
    pub(crate) count: u64,
    pub(crate) total: f64,
    pub(crate) min: f64,
    pub(crate) max: f64,
    pub(crate) samples: Vec<f64>,
}

impl Series {
    fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.total += value;
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(value);
        }
    }

    pub(crate) fn summary(&self) -> Summary {
        Summary::from_series(self.count, self.total, self.min, self.max, &self.samples)
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    timings: BTreeMap<String, Series>,
    histograms: BTreeMap<String, Series>,
}

/// A thread-safe collection of named counters, gauges, timings, and
/// histograms.
///
/// A registry starts **disabled**: every recording call is a cheap
/// early-return (one relaxed atomic load), so instrumented hot paths cost
/// nothing measurable until someone opts in with [`Registry::enable`].
/// All mutation goes through one internal mutex; instrumentation is
/// designed to be stage-granular (one span per pipeline stage, not per
/// sample), so contention is negligible even across rayon workers.
///
/// Most code uses the process-global registry via the crate-level
/// functions ([`crate::span`], [`crate::counter_add`], …); a local
/// `Registry` is useful for tests that must not share state.
///
/// # Examples
///
/// ```
/// let reg = obs::Registry::new();
/// reg.enable();
/// reg.counter_add("demo.stage.items", 3);
/// assert_eq!(reg.snapshot().counter("demo.stage.items"), Some(3));
/// ```
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty, disabled registry (usable in `static` position).
    ///
    /// # Examples
    ///
    /// ```
    /// static REG: obs::Registry = obs::Registry::new();
    /// assert!(!REG.is_enabled());
    /// ```
    pub const fn new() -> Registry {
        Registry {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                timings: BTreeMap::new(),
                histograms: BTreeMap::new(),
            }),
        }
    }

    /// Turns recording on.
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// assert!(reg.is_enabled());
    /// ```
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off (already-recorded values are kept).
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// reg.counter_add("demo.stage.kept", 1);
    /// reg.disable();
    /// reg.counter_add("demo.stage.kept", 1); // ignored
    /// assert_eq!(reg.snapshot().counter("demo.stage.kept"), Some(1));
    /// ```
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on.
    ///
    /// # Examples
    ///
    /// ```
    /// assert!(!obs::Registry::new().is_enabled());
    /// ```
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Adds `by` to the counter `name` (a no-op while disabled).
    ///
    /// Counter merging is commutative, so counters recorded from parallel
    /// workers land in the deterministic section of the report.
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// reg.counter_add("demo.stage.items", 2);
    /// reg.counter_add("demo.stage.items", 1);
    /// assert_eq!(reg.snapshot().counter("demo.stage.items"), Some(3));
    /// ```
    pub fn counter_add(&self, name: &str, by: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(slot) => *slot += by,
            None => {
                inner.counters.insert(name.to_string(), by);
            }
        }
    }

    /// Sets the gauge `name` to `value` (last write wins; no-op while
    /// disabled). Set gauges only from single-threaded sections — a racy
    /// last-write is not deterministic.
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// reg.gauge_set("demo.config.days", 7.0);
    /// assert_eq!(reg.snapshot().gauge("demo.config.days"), Some(7.0));
    /// ```
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Records one sample into the histogram `name` (a no-op while
    /// disabled).
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// for v in [1.0, 2.0, 3.0] {
    ///     reg.observe("demo.stage.watts", v);
    /// }
    /// assert_eq!(reg.snapshot().histogram("demo.stage.watts").unwrap().mean, 2.0);
    /// ```
    pub fn observe(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Records an already-measured duration, in seconds, into the timing
    /// series `name` (a no-op while disabled). [`Registry::span`] is the
    /// usual front door; this exists for durations measured elsewhere.
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// reg.record_seconds("demo.stage.run", 0.25);
    /// assert_eq!(reg.snapshot().timing("demo.stage.run").unwrap().count, 1);
    /// ```
    pub fn record_seconds(&self, name: &str, seconds: f64) {
        if !self.is_enabled() {
            return;
        }
        self.lock()
            .timings
            .entry(name.to_string())
            .or_default()
            .record(seconds);
    }

    /// Starts a scoped span: the guard records the elapsed monotonic time
    /// into the timing series `name` when dropped. While the registry is
    /// disabled the guard is inert and costs one atomic load.
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// {
    ///     let _span = reg.span("demo.stage.work");
    ///     // ... the measured work ...
    /// } // recorded here
    /// assert_eq!(reg.snapshot().timing("demo.stage.work").unwrap().count, 1);
    /// ```
    pub fn span(&self, name: &str) -> Span<'_> {
        if !self.is_enabled() {
            return Span { active: None };
        }
        Span {
            active: Some((self, name.to_string(), Instant::now())),
        }
    }

    /// Runs `f` inside a span named `name` and returns its result.
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// let answer = reg.time("demo.stage.compute", || 6 * 7);
    /// assert_eq!(answer, 42);
    /// assert_eq!(reg.snapshot().timing("demo.stage.compute").unwrap().count, 1);
    /// ```
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let _span = self.span(name);
        f()
    }

    /// Takes a consistent snapshot of everything recorded so far.
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// reg.counter_add("demo.stage.items", 1);
    /// let report = reg.snapshot();
    /// assert!(!report.is_empty());
    /// ```
    pub fn snapshot(&self) -> MetricsReport {
        let inner = self.lock();
        MetricsReport {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            timings: inner
                .timings
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }

    /// Clears every recorded value (the enabled flag is unchanged).
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// reg.counter_add("demo.stage.items", 1);
    /// reg.reset();
    /// assert!(reg.snapshot().is_empty());
    /// ```
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.counters.clear();
        inner.gauges.clear();
        inner.timings.clear();
        inner.histograms.clear();
    }
}

/// RAII guard for one timed scope, created by [`Registry::span`] or
/// [`crate::span`]. Dropping the guard records the scope's elapsed
/// monotonic time; a guard created while the registry was disabled records
/// nothing.
///
/// # Examples
///
/// ```
/// let reg = obs::Registry::new();
/// reg.enable();
/// let span = reg.span("demo.stage.step");
/// drop(span);
/// assert!(reg.snapshot().timing("demo.stage.step").unwrap().total >= 0.0);
/// ```
pub struct Span<'a> {
    active: Option<(&'a Registry, String, Instant)>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((registry, name, start)) = self.active.take() {
            // Re-check: recording may have been disabled mid-span.
            if registry.is_enabled() {
                registry
                    .lock()
                    .timings
                    .entry(name)
                    .or_default()
                    .record(start.elapsed().as_secs_f64());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        reg.counter_add("t.c", 1);
        reg.gauge_set("t.g", 1.0);
        reg.observe("t.h", 1.0);
        reg.record_seconds("t.s", 1.0);
        drop(reg.span("t.span"));
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let reg = Registry::new();
        reg.enable();
        reg.counter_add("t.c", 2);
        reg.counter_add("t.c", 3);
        assert_eq!(reg.snapshot().counter("t.c"), Some(5));
    }

    #[test]
    fn spans_record_on_drop_only() {
        let reg = Registry::new();
        reg.enable();
        let span = reg.span("t.span");
        assert!(reg.snapshot().timing("t.span").is_none());
        drop(span);
        let snap = reg.snapshot();
        let t = snap.timing("t.span").unwrap();
        assert_eq!(t.count, 1);
        assert!(t.total >= 0.0);
    }

    #[test]
    fn span_disabled_mid_flight_is_dropped() {
        let reg = Registry::new();
        reg.enable();
        let span = reg.span("t.span");
        reg.disable();
        drop(span);
        assert!(reg.snapshot().timing("t.span").is_none());
    }

    #[test]
    fn histogram_summary_statistics() {
        let reg = Registry::new();
        reg.enable();
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            reg.observe("t.h", v);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("t.h").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.total, 15.0);
        assert_eq!(h.mean, 3.0);
        assert_eq!(h.p50, 3.0);
        assert_eq!(h.p95, 5.0);
        assert_eq!((h.min, h.max), (1.0, 5.0));
    }

    #[test]
    fn sample_cap_keeps_exact_moments() {
        let mut series = Series::default();
        for i in 0..(SAMPLE_CAP + 10) {
            series.record(i as f64);
        }
        assert_eq!(series.samples.len(), SAMPLE_CAP);
        let s = series.summary();
        assert_eq!(s.count, (SAMPLE_CAP + 10) as u64);
        assert_eq!(s.max, (SAMPLE_CAP + 9) as f64);
    }

    #[test]
    fn reset_clears_values_not_enabled_flag() {
        let reg = Registry::new();
        reg.enable();
        reg.counter_add("t.c", 1);
        reg.reset();
        assert!(reg.snapshot().is_empty());
        assert!(reg.is_enabled());
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = std::sync::Arc::new(Registry::new());
        reg.enable();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        reg.counter_add("t.par", 1);
                        reg.time("t.par.span", || {});
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("t.par"), Some(800));
        assert_eq!(snap.timing("t.par.span").unwrap().count, 800);
    }
}
