//! Prometheus-style text exposition of a [`MetricsReport`].
//!
//! The resident fleet service (`crates/fleetd`) serves this rendering
//! over HTTP at `/metrics` so any Prometheus-compatible scraper can poll
//! the suite's counters, gauges, and timing summaries from a live
//! process. The format follows the Prometheus text exposition format
//! (version 0.0.4): one `# TYPE` line per metric family followed by one
//! sample line per value, floats in Go syntax (`NaN`, `+Inf`, `-Inf` for
//! the non-finite values).
//!
//! Rendering is deterministic for the same reasons the JSON report is:
//! sections appear in a fixed order (counters, gauges, timings,
//! histograms), names within a section are sorted, and floats use
//! shortest-round-trip formatting. The full contract — including how the
//! suite's `crate.stage.metric` names map onto Prometheus names — is in
//! `docs/OBSERVABILITY.md`.

use crate::report::{MetricsReport, Summary};
use std::fmt::Write as _;

/// Mangles a suite metric name (`crate.stage.metric`) into a valid
/// Prometheus metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every character
/// outside that alphabet becomes `_`, and a leading digit is prefixed
/// with `_`. The mapping is stable but not injective — the suite's
/// naming scheme (lowercase words, dots, underscores) never collides in
/// practice.
///
/// # Examples
///
/// ```
/// assert_eq!(obs::prometheus_name("fleetd.admit.samples"), "fleetd_admit_samples");
/// assert_eq!(obs::prometheus_name("nilm.fhmm.decode_exact"), "nilm_fhmm_decode_exact");
/// assert_eq!(obs::prometheus_name("9to5"), "_9to5");
/// ```
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if valid {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a float in Prometheus text syntax: `NaN`, `+Inf`, `-Inf` for
/// the non-finite values, shortest-round-trip decimal otherwise.
fn float(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "+Inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{x:?}")
    }
}

fn write_summary(out: &mut String, name: &str, s: &Summary) {
    let _ = writeln!(out, "# TYPE {name} summary");
    let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", float(s.p50));
    let _ = writeln!(out, "{name}{{quantile=\"0.95\"}} {}", float(s.p95));
    let _ = writeln!(out, "{name}_sum {}", float(s.total));
    let _ = writeln!(out, "{name}_count {}", s.count);
}

impl MetricsReport {
    /// Renders the report in the Prometheus text exposition format
    /// (version 0.0.4).
    ///
    /// * **Counters** render as `counter` families.
    /// * **Gauges** render as `gauge` families.
    /// * **Timings** render as `summary` families with the Prometheus
    ///   `_seconds` unit suffix (they are elapsed-seconds series), with
    ///   `quantile="0.5"`/`quantile="0.95"` samples plus `_sum`/`_count`.
    /// * **Histograms** render as `summary` families under their mangled
    ///   name unchanged (their unit is metric-specific).
    ///
    /// The `_seconds` suffix also guarantees a span and a counter sharing
    /// a suite name never collide after mangling.
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// reg.counter_add("demo.stage.items", 3);
    /// reg.gauge_set("demo.config.days", 7.0);
    /// let text = reg.snapshot().to_prometheus_text();
    /// assert!(text.contains("# TYPE demo_stage_items counter\ndemo_stage_items 3\n"));
    /// assert!(text.contains("# TYPE demo_config_days gauge\ndemo_config_days 7.0\n"));
    /// ```
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, &v) in &self.counters {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, &v) in &self.gauges {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", float(v));
        }
        for (name, s) in &self.timings {
            let name = format!("{}_seconds", prometheus_name(name));
            write_summary(&mut out, &name, s);
        }
        for (name, s) in &self.histograms {
            write_summary(&mut out, &prometheus_name(name), s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_mangling() {
        assert_eq!(prometheus_name("fleet.run"), "fleet_run");
        assert_eq!(prometheus_name("a.b-c/d e"), "a_b_c_d_e");
        assert_eq!(prometheus_name("already_valid:name"), "already_valid:name");
        assert_eq!(prometheus_name("1abc"), "_1abc");
        assert_eq!(prometheus_name(""), "");
    }

    #[test]
    fn golden_exposition_format() {
        let mut report = MetricsReport::default();
        report.counters.insert("fleetd.admit.samples".into(), 1_200);
        report.counters.insert("fleetd.evictions".into(), 4);
        report.gauges.insert("fleetd.resident_homes".into(), 64.0);
        report
            .gauges
            .insert("fleetd.headroom".into(), f64::INFINITY);
        report.timings.insert(
            "fleet.run".into(),
            Summary {
                count: 2,
                total: 0.5,
                mean: 0.25,
                p50: 0.2,
                p95: 0.3,
                min: 0.2,
                max: 0.3,
            },
        );
        report.histograms.insert(
            "demo.stage.watts".into(),
            Summary {
                count: 3,
                total: 360.0,
                mean: 120.0,
                p50: 100.0,
                p95: 200.0,
                min: 60.0,
                max: 200.0,
            },
        );
        let expected = "\
# TYPE fleetd_admit_samples counter
fleetd_admit_samples 1200
# TYPE fleetd_evictions counter
fleetd_evictions 4
# TYPE fleetd_headroom gauge
fleetd_headroom +Inf
# TYPE fleetd_resident_homes gauge
fleetd_resident_homes 64.0
# TYPE fleet_run_seconds summary
fleet_run_seconds{quantile=\"0.5\"} 0.2
fleet_run_seconds{quantile=\"0.95\"} 0.3
fleet_run_seconds_sum 0.5
fleet_run_seconds_count 2
# TYPE demo_stage_watts summary
demo_stage_watts{quantile=\"0.5\"} 100.0
demo_stage_watts{quantile=\"0.95\"} 200.0
demo_stage_watts_sum 360.0
demo_stage_watts_count 3
";
        assert_eq!(report.to_prometheus_text(), expected);
    }

    #[test]
    fn non_finite_floats_use_go_syntax() {
        let mut report = MetricsReport::default();
        report.gauges.insert("g.nan".into(), f64::NAN);
        report.gauges.insert("g.neg".into(), f64::NEG_INFINITY);
        let text = report.to_prometheus_text();
        assert!(text.contains("g_nan NaN\n"));
        assert!(text.contains("g_neg -Inf\n"));
    }

    #[test]
    fn empty_report_renders_empty() {
        assert_eq!(MetricsReport::default().to_prometheus_text(), "");
    }
}
