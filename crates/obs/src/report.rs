//! The serializable metrics snapshot and its deterministic JSON renderer.
//!
//! The renderer is hand-rolled (the crate has zero dependencies) and
//! deterministic by construction: top-level sections appear in a fixed
//! order, metric names within a section are sorted (they come out of
//! `BTreeMap`s), and floats render via Rust's shortest-round-trip `{:?}`
//! formatting. No wall-clock timestamp ever appears anywhere — durations
//! are *elapsed* seconds from a monotonic clock, and they live only in the
//! `timings` section, which is documented as nondeterministic.

use std::collections::BTreeMap;

/// Order statistics of one timing or histogram series.
///
/// `count`, `total`, `min`, and `max` are exact over every observation;
/// `mean`/`p50`/`p95` are computed from a retained sample buffer capped at
/// [`crate::SAMPLE_CAP`] observations (quantiles degrade gracefully to
/// "over the first 65 536 samples" on larger series).
///
/// # Examples
///
/// ```
/// let s = obs::Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
/// assert_eq!(s.count, 5);
/// assert_eq!(s.p50, 3.0);
/// assert_eq!(s.p95, 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations (seconds, for timing series).
    pub total: f64,
    /// Arithmetic mean of the retained samples.
    pub mean: f64,
    /// Median, nearest-rank, of the retained samples.
    pub p50: f64,
    /// 95th percentile, nearest-rank, of the retained samples.
    pub p95: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty slice of values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = obs::Summary::of(&[2.0, 1.0]);
    /// assert_eq!((s.min, s.max, s.total), (1.0, 2.0, 3.0));
    /// ```
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarize zero values");
        let total: f64 = values.iter().sum();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary::from_series(values.len() as u64, total, min, max, values)
    }

    pub(crate) fn from_series(
        count: u64,
        total: f64,
        min: f64,
        max: f64,
        samples: &[f64],
    ) -> Summary {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let nearest_rank = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        Summary {
            count,
            total,
            mean,
            p50: nearest_rank(0.50),
            p95: nearest_rank(0.95),
            min,
            max,
        }
    }
}

/// A point-in-time snapshot of a [`crate::Registry`], ready to serialize.
///
/// The JSON layout (schema `iot-privacy.metrics.v1`) is documented with an
/// annotated example in `docs/OBSERVABILITY.md`. The `counters` and
/// `gauges` sections are the *deterministic section*: for a deterministic
/// workload they are a pure function of the work done, independent of
/// thread count and wall-clock speed. `timings` and `histograms` carry
/// duration/value distributions and vary run to run.
///
/// # Examples
///
/// ```
/// let reg = obs::Registry::new();
/// reg.enable();
/// reg.counter_add("demo.stage.items", 3);
/// let report = reg.snapshot();
/// let json = report.to_json_pretty();
/// assert!(json.contains("\"iot-privacy.metrics.v1\""));
/// assert!(json.contains("\"demo.stage.items\": 3"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsReport {
    /// Monotonic event counts, keyed by metric name (deterministic).
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins point values, keyed by metric name (deterministic
    /// when set from single-threaded sections, per the contract).
    pub gauges: BTreeMap<String, f64>,
    /// Elapsed-seconds distributions per span name (nondeterministic).
    pub timings: BTreeMap<String, Summary>,
    /// Value distributions per histogram name.
    pub histograms: BTreeMap<String, Summary>,
}

impl MetricsReport {
    /// Whether nothing has been recorded.
    ///
    /// # Examples
    ///
    /// ```
    /// assert!(obs::MetricsReport::default().is_empty());
    /// ```
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.timings.is_empty()
            && self.histograms.is_empty()
    }

    /// Looks up a counter value.
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// reg.counter_add("demo.stage.items", 7);
    /// assert_eq!(reg.snapshot().counter("demo.stage.items"), Some(7));
    /// assert_eq!(reg.snapshot().counter("absent"), None);
    /// ```
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Looks up a gauge value.
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// reg.gauge_set("demo.config.days", 7.0);
    /// assert_eq!(reg.snapshot().gauge("demo.config.days"), Some(7.0));
    /// ```
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Looks up a timing summary by span name.
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// reg.time("demo.stage.work", || ());
    /// assert_eq!(reg.snapshot().timing("demo.stage.work").unwrap().count, 1);
    /// ```
    pub fn timing(&self, name: &str) -> Option<&Summary> {
        self.timings.get(name)
    }

    /// Looks up a histogram summary.
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// reg.observe("demo.stage.watts", 120.0);
    /// assert_eq!(reg.snapshot().histogram("demo.stage.watts").unwrap().max, 120.0);
    /// ```
    pub fn histogram(&self, name: &str) -> Option<&Summary> {
        self.histograms.get(name)
    }

    /// Renders the full report as compact deterministic JSON.
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// reg.counter_add("demo.stage.items", 1);
    /// let json = reg.snapshot().to_json_string();
    /// assert!(json.starts_with("{\"schema\":\"iot-privacy.metrics.v1\""));
    /// ```
    pub fn to_json_string(&self) -> String {
        self.render(false)
    }

    /// Renders the full report as pretty-printed deterministic JSON
    /// (2-space indent) — the format of the `--metrics` sidecar files.
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// reg.gauge_set("demo.config.days", 7.0);
    /// assert!(reg.snapshot().to_json_pretty().contains("\"demo.config.days\": 7.0"));
    /// ```
    pub fn to_json_pretty(&self) -> String {
        self.render(true)
    }

    /// Renders only the deterministic section (`schema`, `counters`,
    /// `gauges`) as compact JSON. For a deterministic workload this string
    /// is byte-identical across runs at any thread count — the property
    /// the fleet determinism regression test asserts.
    ///
    /// # Examples
    ///
    /// ```
    /// let reg = obs::Registry::new();
    /// reg.enable();
    /// reg.counter_add("demo.stage.items", 1);
    /// reg.time("demo.stage.work", || ()); // timings are excluded
    /// let det = reg.snapshot().deterministic_json();
    /// assert!(det.contains("demo.stage.items"));
    /// assert!(!det.contains("demo.stage.work"));
    /// ```
    pub fn deterministic_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"iot-privacy.metrics.v1\",\"counters\":");
        render_counters(&mut out, &self.counters, 0, false);
        out.push_str(",\"gauges\":");
        render_gauges(&mut out, &self.gauges, 0, false);
        out.push('}');
        out
    }

    fn render(&self, pretty: bool) -> String {
        let mut out = String::new();
        let (nl, sp) = if pretty { ("\n", " ") } else { ("", "") };
        out.push('{');
        out.push_str(nl);
        indent(&mut out, pretty, 1);
        out.push_str(&format!("\"schema\":{sp}\"iot-privacy.metrics.v1\",{nl}"));
        indent(&mut out, pretty, 1);
        out.push_str(&format!("\"counters\":{sp}"));
        render_counters(&mut out, &self.counters, 1, pretty);
        out.push_str(&format!(",{nl}"));
        indent(&mut out, pretty, 1);
        out.push_str(&format!("\"gauges\":{sp}"));
        render_gauges(&mut out, &self.gauges, 1, pretty);
        out.push_str(&format!(",{nl}"));
        indent(&mut out, pretty, 1);
        out.push_str(&format!("\"timings\":{sp}"));
        render_summaries(&mut out, &self.timings, 1, pretty);
        out.push_str(&format!(",{nl}"));
        indent(&mut out, pretty, 1);
        out.push_str(&format!("\"histograms\":{sp}"));
        render_summaries(&mut out, &self.histograms, 1, pretty);
        out.push_str(nl);
        out.push('}');
        out
    }
}

fn indent(out: &mut String, pretty: bool, depth: usize) {
    if pretty {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

/// JSON string escaping for metric names (which are plain identifiers in
/// practice, but correctness costs nothing).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Shortest round-trip float rendering; JSON has no NaN/inf, render null.
fn float(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn render_counters(out: &mut String, map: &BTreeMap<String, u64>, depth: usize, pretty: bool) {
    render_object(out, map.iter(), depth, pretty, |out, v| {
        out.push_str(&v.to_string())
    });
}

fn render_gauges(out: &mut String, map: &BTreeMap<String, f64>, depth: usize, pretty: bool) {
    render_object(out, map.iter(), depth, pretty, |out, v| {
        out.push_str(&float(*v))
    });
}

fn render_summaries(out: &mut String, map: &BTreeMap<String, Summary>, depth: usize, pretty: bool) {
    let sp = if pretty { " " } else { "" };
    render_object(out, map.iter(), depth, pretty, |out, s| {
        out.push_str(&format!(
            "{{\"count\":{sp}{},{sp}\"total\":{sp}{},{sp}\"mean\":{sp}{},{sp}\
             \"p50\":{sp}{},{sp}\"p95\":{sp}{},{sp}\"min\":{sp}{},{sp}\"max\":{sp}{}}}",
            s.count,
            float(s.total),
            float(s.mean),
            float(s.p50),
            float(s.p95),
            float(s.min),
            float(s.max),
        ));
    });
}

fn render_object<'a, V: 'a>(
    out: &mut String,
    entries: impl ExactSizeIterator<Item = (&'a String, &'a V)>,
    depth: usize,
    pretty: bool,
    mut render_value: impl FnMut(&mut String, &V),
) {
    if entries.len() == 0 {
        out.push_str("{}");
        return;
    }
    let (nl, sp) = if pretty { ("\n", " ") } else { ("", "") };
    out.push('{');
    out.push_str(nl);
    let last = entries.len() - 1;
    for (i, (k, v)) in entries.enumerate() {
        indent(out, pretty, depth + 1);
        out.push_str(&format!("\"{}\":{sp}", escape(k)));
        render_value(out, v);
        if i != last {
            out.push(',');
        }
        out.push_str(nl);
    }
    indent(out, pretty, depth);
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> MetricsReport {
        let mut counters = BTreeMap::new();
        counters.insert("b.stage.n".to_string(), 2);
        counters.insert("a.stage.n".to_string(), 1);
        let mut gauges = BTreeMap::new();
        gauges.insert("a.config.days".to_string(), 7.5);
        let mut timings = BTreeMap::new();
        timings.insert("a.stage.run".to_string(), Summary::of(&[0.5, 1.5]));
        MetricsReport {
            counters,
            gauges,
            timings,
            histograms: BTreeMap::new(),
        }
    }

    #[test]
    fn compact_json_is_stable_and_sorted() {
        let json = sample_report().to_json_string();
        assert_eq!(
            json,
            "{\"schema\":\"iot-privacy.metrics.v1\",\
             \"counters\":{\"a.stage.n\":1,\"b.stage.n\":2},\
             \"gauges\":{\"a.config.days\":7.5},\
             \"timings\":{\"a.stage.run\":{\"count\":2,\"total\":2.0,\"mean\":1.0,\
             \"p50\":0.5,\"p95\":1.5,\"min\":0.5,\"max\":1.5}},\
             \"histograms\":{}}"
        );
        // Byte-stable across calls.
        assert_eq!(json, sample_report().to_json_string());
    }

    #[test]
    fn pretty_json_round_trips_section_content() {
        let pretty = sample_report().to_json_pretty();
        assert!(pretty.contains("\"a.stage.n\": 1"));
        assert!(pretty.contains("\"count\": 2"));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn deterministic_json_excludes_timings() {
        let det = sample_report().deterministic_json();
        assert_eq!(
            det,
            "{\"schema\":\"iot-privacy.metrics.v1\",\
             \"counters\":{\"a.stage.n\":1,\"b.stage.n\":2},\
             \"gauges\":{\"a.config.days\":7.5}}"
        );
    }

    #[test]
    fn names_are_escaped() {
        let mut counters = BTreeMap::new();
        counters.insert("weird\"name\\with\ncontrol".to_string(), 1);
        let report = MetricsReport {
            counters,
            ..MetricsReport::default()
        };
        assert!(report
            .to_json_string()
            .contains("\"weird\\\"name\\\\with\\ncontrol\":1"));
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
        assert_eq!(float(1.25), "1.25");
    }

    #[test]
    fn summary_of_single_value() {
        let s = Summary::of(&[4.0]);
        assert_eq!((s.count, s.mean, s.p50, s.p95), (1, 4.0, 4.0, 4.0));
    }
}
