//! Zero-dependency observability for the Private Memoirs suite: scoped
//! spans, named counters/gauges/histograms, and deterministic JSON
//! metrics reports.
//!
//! The paper's pipeline is staged — simulate → attack → defend → score
//! (Figs. 1–6) — and every performance or cost/utility question ("where
//! does fleet time go?", "what does CHPr cost per home?") is a question
//! about *per-stage* work. This crate is the measuring instrument: the
//! suite's hot paths carry stage-granular spans and counters, all of
//! which are **disabled by default** and cost one relaxed atomic load
//! until a harness opts in (the experiment binaries do so via their
//! `--metrics <path>` flag).
//!
//! The full contract — metric naming scheme, JSON schema, determinism
//! rules, and the overhead budget — lives in `docs/OBSERVABILITY.md`.
//! The short version:
//!
//! * **Names** follow `crate.stage[.metric]`, e.g. `nilm.fhmm.decode_exact`
//!   (a span) or `homesim.simulate.samples` (a counter).
//! * **Counters and gauges** are the *deterministic section*: for a
//!   deterministic workload they are a pure function of the work done,
//!   independent of thread schedule ([`MetricsReport::deterministic_json`]).
//! * **Timings and histograms** summarize distributions (count, total,
//!   mean, p50, p95, min, max) and are wall-clock-dependent.
//!
//! # Examples
//!
//! Instrument a stage, opt in, and snapshot:
//!
//! ```
//! fn stage(items: &[u64]) -> u64 {
//!     let _span = obs::span("demo.stage");          // timed while in scope
//!     obs::counter_add("demo.stage.items", items.len() as u64);
//!     items.iter().sum()
//! }
//!
//! obs::enable();
//! obs::reset();
//! assert_eq!(stage(&[1, 2, 3]), 6);
//! let report = obs::snapshot();
//! assert_eq!(report.counter("demo.stage.items"), Some(3));
//! assert_eq!(report.timing("demo.stage").unwrap().count, 1);
//! obs::disable();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod expo;
mod registry;
mod report;

pub use expo::prometheus_name;
pub use registry::{Registry, Span, SAMPLE_CAP};
pub use report::{MetricsReport, Summary};

/// The process-global registry used by the free functions below and by
/// all instrumentation in the suite's crates.
///
/// # Examples
///
/// ```
/// obs::global().enable();
/// obs::global().counter_add("demo.global.items", 1);
/// assert!(obs::global().snapshot().counter("demo.global.items").is_some());
/// obs::global().disable();
/// ```
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

/// Enables recording on the global registry.
///
/// # Examples
///
/// ```
/// obs::enable();
/// assert!(obs::is_enabled());
/// obs::disable();
/// ```
pub fn enable() {
    global().enable();
}

/// Disables recording on the global registry (recorded values are kept).
///
/// # Examples
///
/// ```
/// obs::disable();
/// assert!(!obs::is_enabled());
/// ```
pub fn disable() {
    global().disable();
}

/// Whether the global registry is recording.
///
/// # Examples
///
/// ```
/// obs::enable();
/// assert!(obs::is_enabled());
/// obs::disable();
/// assert!(!obs::is_enabled());
/// ```
pub fn is_enabled() -> bool {
    global().is_enabled()
}

/// Adds `by` to the global counter `name`.
///
/// # Examples
///
/// ```
/// obs::enable();
/// obs::counter_add("demo.free.items", 2);
/// assert!(obs::snapshot().counter("demo.free.items").unwrap() >= 2);
/// obs::disable();
/// ```
pub fn counter_add(name: &str, by: u64) {
    global().counter_add(name, by);
}

/// Sets the global gauge `name` (last write wins; single-threaded
/// sections only, per the determinism contract).
///
/// # Examples
///
/// ```
/// obs::enable();
/// obs::gauge_set("demo.free.days", 7.0);
/// assert_eq!(obs::snapshot().gauge("demo.free.days"), Some(7.0));
/// obs::disable();
/// ```
pub fn gauge_set(name: &str, value: f64) {
    global().gauge_set(name, value);
}

/// Records one sample into the global histogram `name`.
///
/// # Examples
///
/// ```
/// obs::enable();
/// obs::observe("demo.free.watts", 42.0);
/// assert!(obs::snapshot().histogram("demo.free.watts").is_some());
/// obs::disable();
/// ```
pub fn observe(name: &str, value: f64) {
    global().observe(name, value);
}

/// Starts a scoped span on the global registry; elapsed time is recorded
/// when the guard drops.
///
/// # Examples
///
/// ```
/// obs::enable();
/// {
///     let _span = obs::span("demo.free.work");
/// }
/// assert!(obs::snapshot().timing("demo.free.work").is_some());
/// obs::disable();
/// ```
pub fn span(name: &str) -> Span<'static> {
    global().span(name)
}

/// Runs `f` inside a global span named `name` and returns its result.
///
/// # Examples
///
/// ```
/// obs::enable();
/// let v = obs::time("demo.free.compute", || 21 * 2);
/// assert_eq!(v, 42);
/// obs::disable();
/// ```
pub fn time<T>(name: &str, f: impl FnOnce() -> T) -> T {
    global().time(name, f)
}

/// Snapshots the global registry.
///
/// # Examples
///
/// ```
/// let report = obs::snapshot();
/// let _ = report.is_empty(); // may or may not be empty — it's global state
/// ```
pub fn snapshot() -> MetricsReport {
    global().snapshot()
}

/// Clears everything recorded in the global registry.
///
/// # Examples
///
/// ```
/// obs::enable();
/// obs::counter_add("demo.free.reset", 1);
/// obs::reset();
/// assert_eq!(obs::snapshot().counter("demo.free.reset"), None);
/// obs::disable();
/// ```
pub fn reset() {
    global().reset();
}
