//! Training per-device HMMs from sub-metered data.
//!
//! The FHMM baseline of Figure 2 "must learn a model using training data"
//! — per-device power traces recorded by sub-meters (REDD-style). Training
//! quantizes each device's trace into a small set of power states with 1-D
//! k-means, then counts empirical state transitions.

use serde::{Deserialize, Serialize};
use timeseries::PowerTrace;

/// A learned per-device hidden Markov model with constant-power states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceHmm {
    /// Device name.
    pub name: String,
    /// Emission mean of each state, watts, sorted ascending (state 0 is
    /// "off" or the lowest mode).
    pub state_watts: Vec<f64>,
    /// Transition log-probabilities `log_trans[from][to]`.
    pub log_trans: Vec<Vec<f64>>,
    /// Initial-state log-probabilities.
    pub log_init: Vec<f64>,
}

impl DeviceHmm {
    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.state_watts.len()
    }

    /// The state whose emission mean is nearest to `watts`.
    pub fn nearest_state(&self, watts: f64) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (s, &m) in self.state_watts.iter().enumerate() {
            let d = (watts - m).abs();
            if d < best_d {
                best_d = d;
                best = s;
            }
        }
        best
    }
}

/// Trains a [`DeviceHmm`] with `n_states` power states from a sub-metered
/// trace of the device.
///
/// # Panics
///
/// Panics if `n_states` is zero or the trace is empty.
pub fn train_device_hmm(name: impl Into<String>, trace: &PowerTrace, n_states: usize) -> DeviceHmm {
    assert!(n_states > 0, "need at least one state");
    assert!(!trace.is_empty(), "cannot train on an empty trace");
    let xs = trace.samples();

    let centroids = kmeans_1d(xs, n_states, 25);

    // Assign states and count transitions with Laplace smoothing.
    let assign = |x: f64| -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (s, &c) in centroids.iter().enumerate() {
            let d = (x - c).abs();
            if d < best_d {
                best_d = d;
                best = s;
            }
        }
        best
    };
    let states: Vec<usize> = xs.iter().map(|&x| assign(x)).collect();
    let k = centroids.len();
    let mut counts = vec![vec![1.0f64; k]; k]; // Laplace prior
    for w in states.windows(2) {
        counts[w[0]][w[1]] += 1.0;
    }
    let log_trans: Vec<Vec<f64>> = counts
        .iter()
        .map(|row| {
            let total: f64 = row.iter().sum();
            row.iter().map(|&c| (c / total).ln()).collect()
        })
        .collect();
    let mut init_counts = vec![1.0f64; k];
    init_counts[states[0]] += 1.0;
    let init_total: f64 = init_counts.iter().sum();
    let log_init = init_counts.iter().map(|&c| (c / init_total).ln()).collect();

    DeviceHmm {
        name: name.into(),
        state_watts: centroids,
        log_trans,
        log_init,
    }
}

/// 1-D k-means with deterministic farthest-point initialization. Returns
/// centroids sorted ascending; empty or duplicate clusters are pruned, so
/// fewer than `k` centroids may be returned for low-diversity data.
fn kmeans_1d(xs: &[f64], k: usize, iterations: usize) -> Vec<f64> {
    // Farthest-point init: start at the minimum, then greedily add the
    // sample farthest from its nearest chosen centroid.
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let mut centroids = vec![min];
    while centroids.len() < k {
        let mut best_x = min;
        let mut best_d = 0.0;
        for &x in xs {
            let d = centroids
                .iter()
                .map(|&c| (x - c).abs())
                .fold(f64::INFINITY, f64::min);
            if d > best_d {
                best_d = d;
                best_x = x;
            }
        }
        if best_d < 1e-6 {
            break; // fewer distinct levels than k
        }
        centroids.push(best_x);
    }

    for _ in 0..iterations {
        let mut sums = vec![0.0f64; centroids.len()];
        let mut ns = vec![0usize; centroids.len()];
        for &x in xs {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, &m) in centroids.iter().enumerate() {
                let d = (x - m).abs();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            sums[best] += x;
            ns[best] += 1;
        }
        let mut changed = false;
        for c in 0..centroids.len() {
            if ns[c] > 0 {
                let m = sums[c] / ns[c] as f64;
                if (m - centroids[c]).abs() > 1e-9 {
                    centroids[c] = m;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Prune clusters that own no samples, then sort and dedup.
    let mut owned = vec![false; centroids.len()];
    for &x in xs {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (c, &m) in centroids.iter().enumerate() {
            let d = (x - m).abs();
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        owned[best] = true;
    }
    let mut centroids: Vec<f64> = centroids
        .into_iter()
        .zip(owned)
        .filter_map(|(c, o)| o.then_some(c))
        .collect();
    centroids.sort_by(|a, b| a.total_cmp(b));
    centroids.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{Resolution, Timestamp};

    fn on_off_trace() -> PowerTrace {
        PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 600, |i| {
            if i % 25 < 10 {
                120.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn learns_two_states() {
        let hmm = train_device_hmm("fridge", &on_off_trace(), 2);
        assert_eq!(hmm.n_states(), 2);
        assert!(
            hmm.state_watts[0].abs() < 1.0,
            "off state {}",
            hmm.state_watts[0]
        );
        assert!(
            (hmm.state_watts[1] - 120.0).abs() < 1.0,
            "on state {}",
            hmm.state_watts[1]
        );
        // Self-transitions dominate a duty-cycled device.
        assert!(hmm.log_trans[0][0] > hmm.log_trans[0][1]);
        assert!(hmm.log_trans[1][1] > hmm.log_trans[1][0]);
    }

    #[test]
    fn transition_rows_normalize() {
        let hmm = train_device_hmm("x", &on_off_trace(), 2);
        for row in &hmm.log_trans {
            let p: f64 = row.iter().map(|l| l.exp()).sum();
            assert!((p - 1.0).abs() < 1e-9, "row sums to {p}");
        }
        let pi: f64 = hmm.log_init.iter().map(|l| l.exp()).sum();
        assert!((pi - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_trace_collapses_states() {
        let flat = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 100, 50.0);
        let hmm = train_device_hmm("flat", &flat, 3);
        assert_eq!(hmm.n_states(), 1);
        assert!((hmm.state_watts[0] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn three_state_device() {
        let trace = PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 900, |i| {
            match i % 30 {
                0..=9 => 0.0,
                10..=19 => 300.0,
                _ => 5_000.0,
            }
        });
        let hmm = train_device_hmm("dryer", &trace, 3);
        assert_eq!(hmm.n_states(), 3);
        assert!((hmm.state_watts[1] - 300.0).abs() < 5.0);
        assert!((hmm.state_watts[2] - 5_000.0).abs() < 5.0);
    }

    #[test]
    fn nearest_state_lookup() {
        let hmm = train_device_hmm("fridge", &on_off_trace(), 2);
        assert_eq!(hmm.nearest_state(5.0), 0);
        assert_eq!(hmm.nearest_state(110.0), 1);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        let empty = PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_MINUTE, 0);
        train_device_hmm("x", &empty, 2);
    }
}
