//! Hart's classic edge-pair NILM (IEEE T&S 1989) — the method that
//! started the field, included as the unsupervised baseline: no a-priori
//! models (unlike PowerPlay) and no training data (unlike the FHMM).
//!
//! Steady-state edges are clustered by magnitude; each rising edge is
//! matched with the next falling edge of similar magnitude, and each
//! cluster becomes an anonymous "appliance" reported as a rectangular
//! power envelope.

use crate::estimate::{DeviceEstimate, Disaggregator};
use timeseries::{EdgeDetector, EdgeDirection, PowerTrace};

/// The Hart edge-pair disaggregator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HartNilm {
    /// Minimum step magnitude considered an appliance transition, watts.
    pub edge_threshold_watts: f64,
    /// Relative tolerance when matching a falling edge to a rising edge.
    pub match_tolerance: f64,
    /// Maximum pairing distance, samples (an appliance left "on" forever
    /// is closed out at this horizon).
    pub max_on_samples: usize,
    /// Relative width of a magnitude cluster.
    pub cluster_tolerance: f64,
}

impl Default for HartNilm {
    fn default() -> Self {
        HartNilm {
            edge_threshold_watts: 60.0,
            match_tolerance: 0.2,
            max_on_samples: 240,
            cluster_tolerance: 0.15,
        }
    }
}

/// One paired on/off interval.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PairedInterval {
    start: usize,
    end: usize,
    watts: f64,
}

impl HartNilm {
    /// Pairs rising edges with matching falling edges.
    fn pair_edges(&self, meter: &PowerTrace) -> Vec<PairedInterval> {
        let edges = EdgeDetector::new(self.edge_threshold_watts).detect(meter);
        let mut pairs = Vec::new();
        let mut open: Vec<(usize, f64)> = Vec::new(); // (index, magnitude)
        for e in &edges {
            match e.direction {
                EdgeDirection::Rising => open.push((e.index, e.delta_watts)),
                EdgeDirection::Falling => {
                    let drop = -e.delta_watts;
                    // Best open rising edge by relative magnitude match.
                    let mut best: Option<(usize, f64)> = None;
                    for (slot, &(start, mag)) in open.iter().enumerate() {
                        if e.index - start > self.max_on_samples {
                            continue;
                        }
                        let rel = (drop - mag).abs() / mag;
                        if rel < self.match_tolerance && best.is_none_or(|(_, r)| rel < r) {
                            best = Some((slot, rel));
                        }
                    }
                    if let Some((slot, _)) = best {
                        let (start, mag) = open.remove(slot);
                        pairs.push(PairedInterval {
                            start,
                            end: e.index,
                            watts: (mag + drop) / 2.0,
                        });
                    }
                }
            }
            // Expire stale open edges.
            open.retain(|&(start, _)| e.index.saturating_sub(start) <= self.max_on_samples);
        }
        pairs
    }

    /// Clusters paired intervals by magnitude into anonymous appliances.
    fn cluster(&self, mut pairs: Vec<PairedInterval>) -> Vec<(f64, Vec<PairedInterval>)> {
        pairs.sort_by(|a, b| a.watts.total_cmp(&b.watts));
        let mut clusters: Vec<(f64, Vec<PairedInterval>)> = Vec::new();
        for p in pairs {
            match clusters.last_mut() {
                Some((centre, members))
                    if (p.watts - *centre).abs() / *centre < self.cluster_tolerance =>
                {
                    // Running-mean centre update.
                    *centre =
                        (*centre * members.len() as f64 + p.watts) / (members.len() + 1) as f64;
                    members.push(p);
                }
                _ => clusters.push((p.watts, vec![p])),
            }
        }
        clusters
    }
}

impl Disaggregator for HartNilm {
    /// Produces one anonymous estimate per magnitude cluster, named
    /// `hart-<watts>w`. Scoring against named ground truth requires the
    /// caller to match clusters to devices (see the tests for the
    /// convention).
    fn disaggregate(&self, meter: &PowerTrace) -> Vec<DeviceEstimate> {
        let pairs = self.pair_edges(meter);
        let clusters = self.cluster(pairs);
        clusters
            .into_iter()
            .map(|(centre, members)| {
                let mut samples = vec![0.0; meter.len()];
                for m in &members {
                    for slot in samples.iter_mut().take(m.end).skip(m.start) {
                        *slot += m.watts;
                    }
                }
                DeviceEstimate {
                    name: format!("hart-{}w", centre.round() as i64),
                    trace: PowerTrace::new(meter.start(), meter.resolution(), samples)
                        .expect("finite cluster powers"),
                }
            })
            .collect()
    }

    fn name(&self) -> &str {
        "hart-1989"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::stats::disaggregation_error;
    use timeseries::{Resolution, Timestamp};

    /// Two rectangular appliances with distinct magnitudes. The phases are
    /// offset so no two transitions share a sample — simultaneous events
    /// are Hart's classic failure mode (PowerPlay's pair-claiming handles
    /// them; this baseline deliberately does not).
    fn two_device_home() -> (PowerTrace, PowerTrace, PowerTrace) {
        let a = PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 600, |i| {
            if i % 60 < 10 {
                1_500.0
            } else {
                0.0
            }
        });
        let b = PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 600, |i| {
            if (15..45).contains(&(i % 90)) {
                400.0
            } else {
                0.0
            }
        });
        let total = a.checked_add(&b).unwrap();
        (total, a, b)
    }

    #[test]
    fn recovers_two_rectangular_appliances() {
        let (meter, a_truth, b_truth) = two_device_home();
        let estimates = HartNilm::default().disaggregate(&meter);
        assert!(estimates.len() >= 2, "clusters: {:?}", estimates.len());
        // Match clusters to devices by magnitude.
        let near = |target: f64| {
            estimates
                .iter()
                .find(|e| {
                    let name_watts: f64 = e
                        .name
                        .trim_start_matches("hart-")
                        .trim_end_matches('w')
                        .parse()
                        .unwrap_or(0.0);
                    (name_watts - target).abs() / target < 0.2
                })
                .unwrap_or_else(|| panic!("no cluster near {target}"))
        };
        let e_a = disaggregation_error(a_truth.samples(), near(1_500.0).trace.samples());
        let e_b = disaggregation_error(b_truth.samples(), near(400.0).trace.samples());
        assert!(e_a < 0.15, "1.5kW device error {e_a}");
        assert!(e_b < 0.15, "400W device error {e_b}");
    }

    #[test]
    fn unpaired_edges_are_dropped() {
        // A rise with no matching fall within the horizon.
        let t = PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 400, |i| {
            if i >= 50 {
                1_000.0
            } else {
                0.0
            }
        });
        let estimates = HartNilm::default().disaggregate(&t);
        let total: f64 = estimates.iter().map(|e| e.trace.energy_kwh()).sum();
        assert_eq!(total, 0.0, "unpaired rise must not produce phantom energy");
    }

    #[test]
    fn flat_trace_produces_nothing() {
        let t = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 300, 80.0);
        assert!(HartNilm::default().disaggregate(&t).is_empty());
    }

    #[test]
    fn clusters_merge_similar_magnitudes() {
        // Slightly jittered repetitions of one appliance → one cluster.
        let t = PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 600, |i| {
            let jitter = ((i / 60) % 3) as f64 * 20.0;
            if i % 60 < 8 {
                1_000.0 + jitter
            } else {
                0.0
            }
        });
        let estimates = HartNilm::default().disaggregate(&t);
        assert_eq!(
            estimates.len(),
            1,
            "got {:?}",
            estimates.iter().map(|e| &e.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn name() {
        assert_eq!(HartNilm::default().name(), "hart-1989");
    }
}
