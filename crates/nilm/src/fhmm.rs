//! The Factorial-HMM disaggregation baseline (Kolter & Johnson, REDD).
//!
//! Each device is an independent Markov chain (learned by [`crate::train`])
//! and the meter observes the *sum* of all chains' emissions plus Gaussian
//! noise. Inference recovers the most likely joint state path:
//!
//! * **exact factorial Viterbi** over the joint product state space when it
//!   is small enough, or
//! * **iterated conditional modes (ICM)**: per-device Viterbi against the
//!   residual left by the other devices' current estimates, swept until
//!   convergence — the standard approximation for large device sets.
//!
//! Hot-path layout: both decoders work on flat score tables — joint
//! emission means, joint log-transitions stored *transposed* (`[to*k+from]`)
//! so the max-over-predecessors inner loop reads contiguous memory — with
//! two swapped scratch rows instead of per-step allocation, and `u32`
//! backpointers at half the memory traffic of `usize`. The joint tables
//! depend only on the models, so they are built once per [`Fhmm`] and
//! shared by every subsequent decode (e.g. per-day slices in the figure
//! binaries).
//!
//! Three performance layers sit on top of that base (see `docs/KERNELS.md`
//! for layout diagrams and the batching contract):
//!
//! * **Multi-home batched kernels** ([`Fhmm::decode_batch`],
//!   [`Fhmm::disaggregate_batch`], [`FhmmBatchFilter`]): B equal-length
//!   meters run through one Viterbi/ICM pass in a transposed
//!   structure-of-arrays layout (`scores[state * B + home]`) whose inner
//!   recurrence is a contiguous, branch-predictable loop over homes the
//!   compiler can vectorize. Per-lane results are byte-identical to the
//!   single-home decode of the same trace.
//! * **Opt-in `f32` scores** ([`DecodePrecision`] on [`FhmmConfig`]): all
//!   Viterbi/ICM score arithmetic in single precision (tables converted
//!   once, cached per model), halving score-row memory traffic and
//!   doubling SIMD width. Off by default; the accuracy cost is pinned by
//!   `accuracy.*` conformance claims.
//! * **Scratch-arena reuse** ([`DecodeArena`]): the delta rows,
//!   backpointer table, and ICM residual buffers live in a caller-owned
//!   (or thread-local, for [`Disaggregator::disaggregate`]) arena so
//!   per-decode allocations are reused across chunks, homes, and sweeps.

use crate::estimate::{DeviceEstimate, Disaggregator};
use crate::train::DeviceHmm;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::OnceLock;
use timeseries::{PowerTrace, Resolution, Timestamp};

/// Floating-point width of the Viterbi/ICM score arithmetic.
///
/// `F32` halves score-row memory traffic and doubles SIMD lane count at
/// the cost of occasional state flips on near-ties; the end-to-end metric
/// deltas are pinned by the `accuracy.*` conformance claims. Model tables
/// are converted once per [`Fhmm`] and cached, and residual/explained
/// arithmetic in ICM stays `f64` — only the decode scores narrow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodePrecision {
    /// Double-precision scores (bit-compatible with the original decoder).
    #[default]
    F64,
    /// Single-precision scores (opt-in fast path).
    F32,
}

/// Tuning parameters of the FHMM disaggregator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FhmmConfig {
    /// Std-dev of the aggregate observation noise, watts.
    pub noise_sd_watts: f64,
    /// Largest joint state count for which exact factorial Viterbi is used.
    pub max_exact_states: usize,
    /// ICM sweeps when the joint space is too large for exact inference.
    pub icm_sweeps: usize,
    /// Score arithmetic width (defaults to `F64`).
    pub precision: DecodePrecision,
}

impl Default for FhmmConfig {
    fn default() -> Self {
        FhmmConfig {
            noise_sd_watts: 40.0,
            max_exact_states: 512,
            icm_sweeps: 4,
            precision: DecodePrecision::F64,
        }
    }
}

/// Reusable decode scratch: delta rows, the backpointer table, the batch
/// observation column, and the ICM residual/explained buffers.
///
/// Kernels size the buffers on entry (never shrink capacity), so one arena
/// serves decodes of any batch size, state count, and trace length — reuse
/// across chunks and homes is what removes the per-chunk allocation
/// overhead behind the streaming regression. [`Disaggregator::disaggregate`]
/// uses a thread-local arena ([`with_thread_arena`]); batch entry points
/// take `&mut DecodeArena` so fleet shards can own one arena per worker.
///
/// When a kernel finds the arena's backpointer capacity already sufficient
/// it bumps the `decode.arena_reuse` obs counter.
#[derive(Debug, Default)]
pub struct DecodeArena {
    delta: Vec<f64>,
    next: Vec<f64>,
    col: Vec<f64>,
    delta32: Vec<f32>,
    next32: Vec<f32>,
    col32: Vec<f32>,
    back: Vec<u32>,
    residual: Vec<f64>,
    explained: Vec<f64>,
}

impl DecodeArena {
    /// An empty arena; buffers grow on first use and are reused after.
    pub fn new() -> DecodeArena {
        DecodeArena::default()
    }
}

thread_local! {
    static THREAD_ARENA: RefCell<DecodeArena> = RefCell::new(DecodeArena::new());
}

/// Runs `f` with this thread's shared [`DecodeArena`].
///
/// [`Disaggregator::disaggregate`] decodes through this arena, so repeated
/// single-home decodes on one thread (rayon fleet workers, per-day figure
/// loops) reuse scratch without any caller plumbing.
pub fn with_thread_arena<R>(f: impl FnOnce(&mut DecodeArena) -> R) -> R {
    THREAD_ARENA.with(|a| f(&mut a.borrow_mut()))
}

/// Bumps the arena-reuse counter when the dominant allocation (the
/// backpointer table) is already resident from an earlier decode.
fn note_arena_use(back: &Vec<u32>, needed: usize) {
    if back.capacity() >= needed && needed > 0 {
        obs::counter_add("decode.arena_reuse", 1);
    }
}

/// Score arithmetic the kernels are generic over: `f64` (default,
/// bit-compatible with the original decoder) or `f32` (opt-in fast path).
/// Each width knows where its cached tables and arena rows live.
trait Score:
    Copy
    + PartialOrd
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Neg<Output = Self>
    + Send
    + Sync
    + 'static
{
    const NEG_INF: Self;
    fn from_f64(v: f64) -> Self;
    fn total_cmp(&self, other: &Self) -> Ordering;
    fn joint_view(fhmm: &Fhmm) -> TablesView<'_, Self>;
    fn chain_view(fhmm: &Fhmm, d: usize) -> TablesView<'_, Self>;
    fn scratch(arena: &mut DecodeArena) -> Scratch<'_, Self>;
}

impl Score for f64 {
    const NEG_INF: Self = f64::NEG_INFINITY;
    fn from_f64(v: f64) -> f64 {
        v
    }
    fn total_cmp(&self, other: &Self) -> Ordering {
        f64::total_cmp(self, other)
    }
    fn joint_view(fhmm: &Fhmm) -> TablesView<'_, f64> {
        fhmm.joint_tables().view()
    }
    fn chain_view(fhmm: &Fhmm, d: usize) -> TablesView<'_, f64> {
        fhmm.chains[d].view()
    }
    fn scratch(arena: &mut DecodeArena) -> Scratch<'_, f64> {
        Scratch {
            delta: &mut arena.delta,
            next: &mut arena.next,
            col: &mut arena.col,
            back: &mut arena.back,
        }
    }
}

impl Score for f32 {
    const NEG_INF: Self = f32::NEG_INFINITY;
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
    fn total_cmp(&self, other: &Self) -> Ordering {
        f32::total_cmp(self, other)
    }
    fn joint_view(fhmm: &Fhmm) -> TablesView<'_, f32> {
        fhmm.joint_tables32().view()
    }
    fn chain_view(fhmm: &Fhmm, d: usize) -> TablesView<'_, f32> {
        fhmm.chains32()[d].view()
    }
    fn scratch(arena: &mut DecodeArena) -> Scratch<'_, f32> {
        Scratch {
            delta: &mut arena.delta32,
            next: &mut arena.next32,
            col: &mut arena.col32,
            back: &mut arena.back,
        }
    }
}

/// The arena rows one decode borrows: two swapped score rows, the batch
/// observation column, and the shared backpointer table.
struct Scratch<'a, T> {
    delta: &'a mut Vec<T>,
    next: &'a mut Vec<T>,
    col: &'a mut Vec<T>,
    back: &'a mut Vec<u32>,
}

/// Borrowed flat Viterbi tables: `k` states with per-state emission means
/// (`totals`), initial log-probs, and the transposed log-transition table
/// `log_a_t[to * k + from]`. Both the joint space and a single device
/// chain present this shape, so every kernel works on either.
#[derive(Clone, Copy)]
struct TablesView<'a, T> {
    k: usize,
    totals: &'a [T],
    log_init: &'a [T],
    log_a_t: &'a [T],
}

/// One device chain in hot-path layout: transposed flat transition table.
#[derive(Debug, Clone)]
struct FlatChain<T> {
    k: usize,
    watts: Vec<T>,
    log_init: Vec<T>,
    /// `log_trans_t[to * k + from]` — transposed so scanning predecessors
    /// of one target state is a contiguous read.
    log_trans_t: Vec<T>,
}

impl FlatChain<f64> {
    fn from_hmm(dev: &DeviceHmm) -> Self {
        let k = dev.n_states();
        let mut log_trans_t = vec![0.0f64; k * k];
        for (from, row) in dev.log_trans.iter().enumerate() {
            for (to, &v) in row.iter().enumerate() {
                log_trans_t[to * k + from] = v;
            }
        }
        FlatChain {
            k,
            watts: dev.state_watts.clone(),
            log_init: dev.log_init.clone(),
            log_trans_t,
        }
    }

    fn demote(&self) -> FlatChain<f32> {
        FlatChain {
            k: self.k,
            watts: demote(&self.watts),
            log_init: demote(&self.log_init),
            log_trans_t: demote(&self.log_trans_t),
        }
    }
}

impl<T> FlatChain<T> {
    fn view(&self) -> TablesView<'_, T> {
        TablesView {
            k: self.k,
            totals: &self.watts,
            log_init: &self.log_init,
            log_a_t: &self.log_trans_t,
        }
    }
}

fn demote(v: &[f64]) -> Vec<f32> {
    v.iter().map(|&x| x as f32).collect()
}

/// Joint-space tables for exact factorial Viterbi; model-dependent only,
/// so built once per [`Fhmm`] and reused across decodes.
#[derive(Debug, Clone)]
struct JointTables<T> {
    k: usize,
    /// Per-joint-state emission mean (sum of device state watts).
    totals: Vec<T>,
    log_init: Vec<T>,
    /// `log_a_t[to * k + from]` — transposed joint log-transition matrix.
    log_a_t: Vec<T>,
}

impl<T> JointTables<T> {
    fn view(&self) -> TablesView<'_, T> {
        TablesView {
            k: self.k,
            totals: &self.totals,
            log_init: &self.log_init,
            log_a_t: &self.log_a_t,
        }
    }
}

/// The factorial HMM over a set of learned device models.
#[derive(Debug, Clone)]
pub struct Fhmm {
    devices: Vec<DeviceHmm>,
    chains: Vec<FlatChain<f64>>,
    chains32: OnceLock<Vec<FlatChain<f32>>>,
    config: FhmmConfig,
    joint: OnceLock<JointTables<f64>>,
    joint32: OnceLock<JointTables<f32>>,
}

impl Fhmm {
    /// Creates an FHMM from learned device models with default tuning.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn new(devices: Vec<DeviceHmm>) -> Self {
        Fhmm::with_config(devices, FhmmConfig::default())
    }

    /// Creates an FHMM with explicit tuning.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty or the noise std-dev is not positive.
    pub fn with_config(devices: Vec<DeviceHmm>, config: FhmmConfig) -> Self {
        assert!(!devices.is_empty(), "FHMM needs at least one device");
        assert!(
            config.noise_sd_watts.is_finite() && config.noise_sd_watts > 0.0,
            "noise std-dev must be positive"
        );
        let chains = devices.iter().map(FlatChain::from_hmm).collect();
        Fhmm {
            devices,
            chains,
            chains32: OnceLock::new(),
            config,
            joint: OnceLock::new(),
            joint32: OnceLock::new(),
        }
    }

    /// The total joint state count.
    pub fn joint_states(&self) -> usize {
        self.devices.iter().map(|d| d.n_states()).product()
    }

    /// The configured score precision.
    pub fn precision(&self) -> DecodePrecision {
        self.config.precision
    }

    fn inv_two_var(&self) -> f64 {
        0.5 / (self.config.noise_sd_watts * self.config.noise_sd_watts)
    }

    /// Decodes per-device state paths for `meter`.
    pub fn decode(&self, meter: &PowerTrace, arena: &mut DecodeArena) -> Vec<Vec<usize>> {
        if meter.is_empty() {
            return vec![Vec::new(); self.devices.len()];
        }
        obs::counter_add("nilm.fhmm.samples", meter.len() as u64);
        match self.config.precision {
            DecodePrecision::F64 => self.decode_t::<f64>(meter, arena),
            DecodePrecision::F32 => self.decode_t::<f32>(meter, arena),
        }
    }

    fn decode_t<T: Score>(&self, meter: &PowerTrace, arena: &mut DecodeArena) -> Vec<Vec<usize>> {
        if self.exact_capable() {
            obs::time("nilm.fhmm.decode_exact", || {
                let view = T::joint_view(self);
                let inv_two_var = T::from_f64(self.inv_two_var());
                let mut scratch = T::scratch(arena);
                let joint = viterbi_single(&view, meter.samples(), inv_two_var, &mut scratch);
                self.unpack_paths(&joint)
            })
        } else {
            obs::time("nilm.fhmm.decode_icm", || {
                let mut paths = self.decode_icm_batch_t::<T>(&[meter], arena);
                paths.pop().expect("one lane in, one lane out")
            })
        }
    }

    /// Builds (or fetches) the joint tables for exact decoding.
    fn joint_tables(&self) -> &JointTables<f64> {
        self.joint.get_or_init(|| {
            let k = self.joint_states();
            let factored: Vec<Vec<usize>> = (0..k).map(|j| self.unpack(j)).collect();
            let totals: Vec<f64> = factored
                .iter()
                .map(|states| {
                    states
                        .iter()
                        .zip(&self.devices)
                        .map(|(&s, d)| d.state_watts[s])
                        .sum()
                })
                .collect();
            let log_init: Vec<f64> = factored
                .iter()
                .map(|states| {
                    states
                        .iter()
                        .zip(&self.devices)
                        .map(|(&s, d)| d.log_init[s])
                        .sum()
                })
                .collect();
            // Joint log-transitions factorize as a sum over devices.
            let mut log_a_t = vec![0.0f64; k * k];
            for from in 0..k {
                for to in 0..k {
                    log_a_t[to * k + from] = factored[from]
                        .iter()
                        .zip(&factored[to])
                        .zip(&self.devices)
                        .map(|((&f, &t), d)| d.log_trans[f][t])
                        .sum();
                }
            }
            JointTables {
                k,
                totals,
                log_init,
                log_a_t,
            }
        })
    }

    /// The `f32` copies of the joint tables (converted once, then cached).
    fn joint_tables32(&self) -> &JointTables<f32> {
        self.joint32.get_or_init(|| {
            let j = self.joint_tables();
            JointTables {
                k: j.k,
                totals: demote(&j.totals),
                log_init: demote(&j.log_init),
                log_a_t: demote(&j.log_a_t),
            }
        })
    }

    /// The `f32` copies of the per-device chains (converted once).
    fn chains32(&self) -> &[FlatChain<f32>] {
        self.chains32
            .get_or_init(|| self.chains.iter().map(FlatChain::demote).collect())
    }

    /// Decodes a batch of meters through the multi-home SoA kernels,
    /// returning per-meter per-device state paths in input order.
    ///
    /// Meters are grouped by trace length (the batching contract requires
    /// equal-length lanes) and each group runs through one batched
    /// exact-Viterbi or ICM pass. Every lane's result is byte-identical to
    /// decoding that meter alone.
    pub fn decode_batch(
        &self,
        meters: &[&PowerTrace],
        arena: &mut DecodeArena,
    ) -> Vec<Vec<Vec<usize>>> {
        if meters.is_empty() {
            return Vec::new();
        }
        obs::gauge_set("decode.batch_size", meters.len() as f64);
        match self.config.precision {
            DecodePrecision::F64 => self.decode_batch_t::<f64>(meters, arena),
            DecodePrecision::F32 => self.decode_batch_t::<f32>(meters, arena),
        }
    }

    fn decode_batch_t<T: Score>(
        &self,
        meters: &[&PowerTrace],
        arena: &mut DecodeArena,
    ) -> Vec<Vec<Vec<usize>>> {
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, m) in meters.iter().enumerate() {
            groups.entry(m.len()).or_default().push(i);
        }
        let mut out: Vec<Option<Vec<Vec<usize>>>> = (0..meters.len()).map(|_| None).collect();
        for (len, idxs) in groups {
            if len == 0 {
                for &i in &idxs {
                    out[i] = Some(vec![Vec::new(); self.devices.len()]);
                }
                continue;
            }
            obs::counter_add("nilm.fhmm.samples", (len * idxs.len()) as u64);
            if self.exact_capable() {
                let decoded = obs::time("nilm.fhmm.decode_exact", || {
                    let view = T::joint_view(self);
                    let xs: Vec<&[f64]> = idxs.iter().map(|&i| meters[i].samples()).collect();
                    let inv_two_var = T::from_f64(self.inv_two_var());
                    let mut scratch = T::scratch(arena);
                    viterbi_batch(&view, &xs, inv_two_var, &mut scratch)
                });
                for (joint, &i) in decoded.iter().zip(&idxs) {
                    out[i] = Some(self.unpack_paths(joint));
                }
            } else {
                let subset: Vec<&PowerTrace> = idxs.iter().map(|&i| meters[i]).collect();
                let decoded = obs::time("nilm.fhmm.decode_icm", || {
                    self.decode_icm_batch_t::<T>(&subset, arena)
                });
                for (paths, &i) in decoded.into_iter().zip(&idxs) {
                    out[i] = Some(paths);
                }
            }
        }
        out.into_iter()
            .map(|p| p.expect("every meter decoded"))
            .collect()
    }

    /// [`Disaggregator::disaggregate`] over a batch of meters through the
    /// multi-home kernels and a caller-owned arena; results are in input
    /// order and byte-identical to disaggregating each meter alone.
    pub fn disaggregate_batch(
        &self,
        meters: &[&PowerTrace],
        arena: &mut DecodeArena,
    ) -> Vec<Vec<DeviceEstimate>> {
        let paths = self.decode_batch(meters, arena);
        meters
            .iter()
            .zip(&paths)
            .map(|(m, p)| self.estimates_from_paths(m.start(), m.resolution(), m.len(), p))
            .collect()
    }

    /// [`Disaggregator::disaggregate`] with a caller-owned arena instead of
    /// the thread-local one.
    pub fn disaggregate_with(
        &self,
        meter: &PowerTrace,
        arena: &mut DecodeArena,
    ) -> Vec<DeviceEstimate> {
        let paths = self.decode(meter, arena);
        self.estimates_from_paths(meter.start(), meter.resolution(), meter.len(), &paths)
    }

    /// Batched iterated conditional modes over equal-length lanes.
    ///
    /// Per lane this replicates the serial single-home sweep exactly:
    /// device sweeps stay strictly Gauss-Seidel in the same
    /// flexible-chains-first order, the residual fill is the same
    /// arithmetic ([`fill_residual`]), and a lane leaves the active set
    /// after its first unchanged sweep — the point at which the serial
    /// loop would `break`. ICM is a per-lane fixed-point iteration, so
    /// dropping converged lanes early cannot change any result.
    fn decode_icm_batch_t<T: Score>(
        &self,
        meters: &[&PowerTrace],
        arena: &mut DecodeArena,
    ) -> Vec<Vec<Vec<usize>>> {
        let lanes = meters.len();
        let n = meters[0].len();
        debug_assert!(meters.iter().all(|m| m.len() == n), "equal-length lanes");

        // Start everything in its lowest state.
        let mut paths: Vec<Vec<Vec<usize>>> = (0..lanes)
            .map(|_| self.devices.iter().map(|_| vec![0usize; n]).collect())
            .collect();
        let mut explained = std::mem::take(&mut arena.explained);
        explained.clear();
        explained.resize(lanes * n, 0.0);
        for (b, home) in paths.iter().enumerate() {
            let ex = &mut explained[b * n..(b + 1) * n];
            for (d, dev) in self.devices.iter().enumerate() {
                for t in 0..n {
                    ex[t] += dev.state_watts[home[d][t]];
                }
            }
        }

        // Sweep flexible chains (more states) first so slack/background
        // chains absorb unmodelled load before specific appliances claim it.
        let mut order: Vec<usize> = (0..self.devices.len()).collect();
        order.sort_by_key(|&d| std::cmp::Reverse(self.devices[d].n_states()));

        let mut residual = std::mem::take(&mut arena.residual);
        residual.clear();
        residual.resize(lanes * n, 0.0);

        let inv_two_var = T::from_f64(self.inv_two_var());
        let mut active: Vec<usize> = (0..lanes).collect();
        for _ in 0..self.config.icm_sweeps {
            if active.is_empty() {
                break;
            }
            let mut changed = vec![false; lanes];
            for &d in &order {
                let dev = &self.devices[d];
                for &b in &active {
                    fill_residual(
                        &mut residual[b * n..(b + 1) * n],
                        meters[b].samples(),
                        &explained[b * n..(b + 1) * n],
                        &dev.state_watts,
                        &paths[b][d],
                    );
                }
                let xs: Vec<&[f64]> = active
                    .iter()
                    .map(|&b| &residual[b * n..(b + 1) * n])
                    .collect();
                let view = T::chain_view(self, d);
                let mut scratch = T::scratch(arena);
                let new_paths = viterbi_batch(&view, &xs, inv_two_var, &mut scratch);
                for (new_path, &b) in new_paths.iter().zip(&active) {
                    if *new_path != paths[b][d] {
                        changed[b] = true;
                        let ex = &mut explained[b * n..(b + 1) * n];
                        for t in 0..n {
                            ex[t] += dev.state_watts[new_path[t]] - dev.state_watts[paths[b][d][t]];
                        }
                        paths[b][d].clone_from(new_path);
                    }
                }
            }
            active.retain(|&b| changed[b]);
        }
        arena.explained = explained;
        arena.residual = residual;
        paths
    }

    /// Unpacks joint state index `j` into per-device states.
    fn unpack(&self, mut j: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.devices.len());
        for d in &self.devices {
            out.push(j % d.n_states());
            j /= d.n_states();
        }
        out
    }

    /// Unpacks a joint-state path into per-device state paths.
    fn unpack_paths(&self, joint_path: &[usize]) -> Vec<Vec<usize>> {
        let n = joint_path.len();
        let mut paths = vec![vec![0usize; n]; self.devices.len()];
        for (t, &j) in joint_path.iter().enumerate() {
            let mut rest = j;
            for (path, dev) in paths.iter_mut().zip(&self.devices) {
                path[t] = rest % dev.n_states();
                rest /= dev.n_states();
            }
        }
        paths
    }

    /// Whether this model decodes with exact factorial Viterbi (as opposed
    /// to the ICM approximation, which needs the whole trace at once).
    pub fn exact_capable(&self) -> bool {
        self.joint_states() <= self.config.max_exact_states
    }

    /// Number of device models in the factorial ensemble.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Starts an incremental exact-Viterbi forward pass over this model, or
    /// `None` when the joint space is too large for exact decoding (ICM is
    /// a whole-trace algorithm; callers must buffer and use
    /// [`Disaggregator::disaggregate`] instead).
    ///
    /// Pushing every sample of a trace and then calling
    /// [`FhmmFilter::paths`] reproduces the batch decode bit for bit: the
    /// filter runs the same flat-table recurrence as the internal exact
    /// decoder, merely spread across `push` calls. The filter honours the
    /// configured [`DecodePrecision`].
    pub fn filter(&self) -> Option<FhmmFilter<'_>> {
        if !self.exact_capable() {
            return None;
        }
        Some(FhmmFilter {
            fhmm: self,
            inv_two_var: self.inv_two_var(),
            rows: FilterRows::new(self.config.precision),
            back: Vec::new(),
            n: 0,
        })
    }

    /// Starts an incremental exact-Viterbi forward pass over `lanes` homes
    /// at once in the SoA layout, or `None` when the joint space is too
    /// large for exact decoding. Each [`FhmmBatchFilter::push_row`] feeds
    /// one synchronous observation per lane; per-lane results are
    /// byte-identical to a single-home [`FhmmFilter`] fed the same trace.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn batch_filter(&self, lanes: usize) -> Option<FhmmBatchFilter<'_>> {
        assert!(lanes > 0, "batch filter needs at least one lane");
        if !self.exact_capable() {
            return None;
        }
        Some(FhmmBatchFilter {
            fhmm: self,
            lanes,
            inv_two_var: self.inv_two_var(),
            rows: FilterRows::new(self.config.precision),
            back: Vec::new(),
            n: 0,
        })
    }

    /// Renders per-device state paths into [`DeviceEstimate`]s exactly as
    /// [`Disaggregator::disaggregate`] does after decoding.
    ///
    /// # Panics
    ///
    /// Panics if `paths` does not hold one path per device, or any path is
    /// shorter than `len`.
    pub fn estimates_from_paths(
        &self,
        start: Timestamp,
        resolution: Resolution,
        len: usize,
        paths: &[Vec<usize>],
    ) -> Vec<DeviceEstimate> {
        assert_eq!(paths.len(), self.devices.len(), "one path per device");
        self.devices
            .iter()
            .zip(paths)
            .map(|(dev, path)| DeviceEstimate {
                name: dev.name.clone(),
                trace: PowerTrace::from_fn(start, resolution, len, |t| dev.state_watts[path[t]]),
            })
            .collect()
    }
}

/// Last-max argmax over a score row — the semantics of
/// `iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))` that the decoder
/// has always used for the final step.
fn final_arg<T: Score>(delta: &[T]) -> usize {
    delta
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(j, _)| j)
        .unwrap_or(0)
}

/// Single-lane flat Viterbi over any [`TablesView`] (joint space or one
/// device chain against a residual), using caller-owned arena scratch.
fn viterbi_single<T: Score>(
    view: &TablesView<'_, T>,
    xs: &[f64],
    inv_two_var: T,
    scratch: &mut Scratch<'_, T>,
) -> Vec<usize> {
    let k = view.k;
    let n = xs.len();
    if n == 0 {
        return Vec::new();
    }
    note_arena_use(scratch.back, n * k);
    let emit = |j: usize, x: f64| -> T {
        let d = T::from_f64(x) - view.totals[j];
        -d * d * inv_two_var
    };

    // Two scratch rows swapped each step; flat u32 backpointers.
    let delta: &mut Vec<T> = scratch.delta;
    let next: &mut Vec<T> = scratch.next;
    let back: &mut Vec<u32> = scratch.back;
    delta.clear();
    delta.extend((0..k).map(|j| view.log_init[j] + emit(j, xs[0])));
    next.clear();
    next.resize(k, T::NEG_INF);
    back.clear();
    back.resize(n * k, 0);

    for t in 1..n {
        let back_row = &mut back[t * k..(t + 1) * k];
        for (j, slot) in back_row.iter_mut().enumerate() {
            let row = &view.log_a_t[j * k..(j + 1) * k];
            let mut best = T::NEG_INF;
            let mut arg = 0u32;
            for (i, (&d, &a)) in delta.iter().zip(row).enumerate() {
                let v = d + a;
                if v > best {
                    best = v;
                    arg = i as u32;
                }
            }
            next[j] = best + emit(j, xs[t]);
            *slot = arg;
        }
        std::mem::swap(delta, next);
    }
    let mut path = vec![0usize; n];
    path[n - 1] = final_arg(delta);
    for t in (0..n - 1).rev() {
        path[t] = back[(t + 1) * k + path[t + 1]] as usize;
    }
    path
}

/// Gathers observation `t` of every lane into the SoA column.
fn gather_col<T: Score>(col: &mut [T], xs_list: &[&[f64]], t: usize) {
    for (c, xs) in col.iter_mut().zip(xs_list) {
        *c = T::from_f64(xs[t]);
    }
}

/// The `t = 0` row of the batched recurrence:
/// `delta[j*B + b] = log_init[j] + emit(j, col[b])`.
fn batch_init_step<T: Score>(view: &TablesView<'_, T>, col: &[T], delta: &mut [T], inv_two_var: T) {
    let lanes = col.len();
    for j in 0..view.k {
        let tj = view.totals[j];
        let init_j = view.log_init[j];
        let delta_j = &mut delta[j * lanes..(j + 1) * lanes];
        for (dj, &c) in delta_j.iter_mut().zip(col) {
            let d = c - tj;
            *dj = init_j + (-d * d * inv_two_var);
        }
    }
}

/// One time step of the batched recurrence in the transposed SoA layout
/// (`scores[state * B + home]`): for each target state `j` the predecessor
/// scan is an outer loop over `i` with a contiguous, branch-predictable
/// inner loop over lanes — the compare-and-select body auto-vectorizes.
/// Per lane this performs exactly the single-lane kernel's operations in
/// the same order (first-max on strict `>`, emission added after the
/// scan), so lane `b` of the batch is byte-identical to a solo decode.
fn batch_step<T: Score>(
    view: &TablesView<'_, T>,
    col: &[T],
    delta: &[T],
    next: &mut [T],
    back_t: &mut [u32],
    inv_two_var: T,
) {
    let lanes = col.len();
    for j in 0..view.k {
        let row = &view.log_a_t[j * view.k..(j + 1) * view.k];
        let next_j = &mut next[j * lanes..(j + 1) * lanes];
        let back_j = &mut back_t[j * lanes..(j + 1) * lanes];
        // Predecessor i = 0 seeds the scan (scores are never NaN, so this
        // equals a NEG_INF fill followed by a strict-`>` first iteration).
        let a0 = row[0];
        for (nj, &di) in next_j.iter_mut().zip(&delta[..lanes]) {
            *nj = di + a0;
        }
        back_j.fill(0);
        for (i, &a) in row.iter().enumerate().skip(1) {
            let delta_i = &delta[i * lanes..(i + 1) * lanes];
            let arg = i as u32;
            for ((nj, bj), &di) in next_j.iter_mut().zip(back_j.iter_mut()).zip(delta_i) {
                let v = di + a;
                // Branch-free first-max keeps the compare-and-select body
                // auto-vectorizable; same strict-`>` result as the single
                // kernel.
                let take = v > *nj;
                *nj = if take { v } else { *nj };
                *bj = if take { arg } else { *bj };
            }
        }
        let tj = view.totals[j];
        for (nj, &c) in next_j.iter_mut().zip(col) {
            let d = c - tj;
            *nj = *nj + (-d * d * inv_two_var);
        }
    }
}

/// Per-lane termination of the batched decode: last-max argmax over each
/// lane's final scores (matching [`final_arg`]) followed by the
/// backpointer walk.
fn batch_backtrack<T: Score>(
    k: usize,
    lanes: usize,
    n: usize,
    delta: &[T],
    back: &[u32],
) -> Vec<Vec<usize>> {
    let mut joint = vec![vec![0usize; n]; lanes];
    for (b, path) in joint.iter_mut().enumerate() {
        let mut best = delta[b];
        let mut arg = 0usize;
        for j in 1..k {
            let v = delta[j * lanes + b];
            if best.total_cmp(&v) != Ordering::Greater {
                best = v;
                arg = j;
            }
        }
        path[n - 1] = arg;
        for t in (0..n - 1).rev() {
            path[t] = back[(t + 1) * k * lanes + path[t + 1] * lanes + b] as usize;
        }
    }
    joint
}

/// Multi-lane flat Viterbi over any [`TablesView`]: `B = xs_list.len()`
/// equal-length lanes decoded in one pass through the SoA recurrence.
/// Returns one state path per lane, each byte-identical to
/// [`viterbi_single`] on that lane alone.
fn viterbi_batch<T: Score>(
    view: &TablesView<'_, T>,
    xs_list: &[&[f64]],
    inv_two_var: T,
    scratch: &mut Scratch<'_, T>,
) -> Vec<Vec<usize>> {
    let lanes = xs_list.len();
    if lanes == 0 {
        return Vec::new();
    }
    let k = view.k;
    let n = xs_list[0].len();
    debug_assert!(xs_list.iter().all(|xs| xs.len() == n), "equal-length lanes");
    if n == 0 {
        return vec![Vec::new(); lanes];
    }
    note_arena_use(scratch.back, n * k * lanes);

    let delta: &mut Vec<T> = scratch.delta;
    let next: &mut Vec<T> = scratch.next;
    let col: &mut Vec<T> = scratch.col;
    let back: &mut Vec<u32> = scratch.back;
    delta.clear();
    delta.resize(k * lanes, T::NEG_INF);
    next.clear();
    next.resize(k * lanes, T::NEG_INF);
    col.clear();
    col.resize(lanes, T::NEG_INF);
    back.clear();
    back.resize(n * k * lanes, 0);

    gather_col(col, xs_list, 0);
    batch_init_step(view, col, delta, inv_two_var);
    for t in 1..n {
        gather_col(col, xs_list, t);
        let back_t = &mut back[t * k * lanes..(t + 1) * k * lanes];
        batch_step(view, col, delta, next, back_t, inv_two_var);
        std::mem::swap(delta, next);
    }
    batch_backtrack(k, lanes, n, delta, back)
}

/// The precision-selected score rows of an incremental filter. The batch
/// observation column rides along (unused by the single-lane filter).
#[derive(Debug, Clone)]
enum FilterRows {
    F64 {
        delta: Vec<f64>,
        next: Vec<f64>,
        col: Vec<f64>,
    },
    F32 {
        delta: Vec<f32>,
        next: Vec<f32>,
        col: Vec<f32>,
    },
}

impl FilterRows {
    fn new(precision: DecodePrecision) -> FilterRows {
        match precision {
            DecodePrecision::F64 => FilterRows::F64 {
                delta: Vec::new(),
                next: Vec::new(),
                col: Vec::new(),
            },
            DecodePrecision::F32 => FilterRows::F32 {
                delta: Vec::new(),
                next: Vec::new(),
                col: Vec::new(),
            },
        }
    }
}

/// Incremental forward pass of the exact factorial Viterbi decoder: the
/// same recurrence as the batch decoder, one observation per
/// [`FhmmFilter::push`]. Constant non-output state (two `k`-wide scratch
/// rows); the backpointer table grows one row per sample, exactly like the
/// batch decoder's. Cloning the filter checkpoints the decode mid-trace.
#[derive(Debug, Clone)]
pub struct FhmmFilter<'a> {
    fhmm: &'a Fhmm,
    inv_two_var: f64,
    rows: FilterRows,
    back: Vec<u32>,
    n: usize,
}

/// One `push` of the single-lane filter recurrence at width `T`.
fn filter_push<T: Score>(
    fhmm: &Fhmm,
    delta: &mut Vec<T>,
    next: &mut Vec<T>,
    back: &mut Vec<u32>,
    n: usize,
    x: f64,
    inv_two_var_f64: f64,
) {
    let view = T::joint_view(fhmm);
    let k = view.k;
    let inv_two_var = T::from_f64(inv_two_var_f64);
    if n == 0 {
        delta.clear();
        delta.extend((0..k).map(|j| {
            let d = T::from_f64(x) - view.totals[j];
            view.log_init[j] + (-d * d * inv_two_var)
        }));
        next.clear();
        next.resize(k, T::NEG_INF);
        // Row 0 of the backpointer table is never read; keep it zeroed
        // to mirror the batch decoder's layout.
        back.resize(k, 0);
    } else {
        let t = n;
        back.resize((t + 1) * k, 0);
        for j in 0..k {
            let row = &view.log_a_t[j * k..(j + 1) * k];
            let mut best = T::NEG_INF;
            let mut arg = 0u32;
            for (i, (&dv, &a)) in delta.iter().zip(row).enumerate() {
                let v = dv + a;
                if v > best {
                    best = v;
                    arg = i as u32;
                }
            }
            let d = T::from_f64(x) - view.totals[j];
            next[j] = best + (-d * d * inv_two_var);
            back[t * k + j] = arg;
        }
        std::mem::swap(delta, next);
    }
}

/// Backtrack of a completed (or mid-trace) single-lane filter.
fn filter_backtrack<T: Score>(delta: &[T], back: &[u32], k: usize, n: usize) -> Vec<usize> {
    let mut joint = vec![0usize; n];
    joint[n - 1] = final_arg(delta);
    for t in (0..n - 1).rev() {
        joint[t] = back[(t + 1) * k + joint[t + 1]] as usize;
    }
    joint
}

impl FhmmFilter<'_> {
    /// Advances the decode by one aggregate observation (watts).
    pub fn push(&mut self, x: f64) {
        match &mut self.rows {
            FilterRows::F64 { delta, next, .. } => filter_push::<f64>(
                self.fhmm,
                delta,
                next,
                &mut self.back,
                self.n,
                x,
                self.inv_two_var,
            ),
            FilterRows::F32 { delta, next, .. } => filter_push::<f32>(
                self.fhmm,
                delta,
                next,
                &mut self.back,
                self.n,
                x,
                self.inv_two_var,
            ),
        }
        self.n += 1;
    }

    /// Number of observations pushed so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no observation has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Backtracks the decode so far into per-device state paths —
    /// byte-identical to what the batch decoder returns for the same
    /// observation prefix. Does not consume the filter; feeding may
    /// continue afterwards.
    pub fn paths(&self) -> Vec<Vec<usize>> {
        let n = self.n;
        if n == 0 {
            return vec![Vec::new(); self.fhmm.devices.len()];
        }
        let k = self.fhmm.joint_tables().k;
        let joint = match &self.rows {
            FilterRows::F64 { delta, .. } => filter_backtrack::<f64>(delta, &self.back, k, n),
            FilterRows::F32 { delta, .. } => filter_backtrack::<f32>(delta, &self.back, k, n),
        };
        self.fhmm.unpack_paths(&joint)
    }
}

/// One `push_row` of the batched filter recurrence at width `T`.
#[allow(clippy::too_many_arguments)]
fn batch_filter_push<T: Score>(
    fhmm: &Fhmm,
    delta: &mut Vec<T>,
    next: &mut Vec<T>,
    col: &mut Vec<T>,
    back: &mut Vec<u32>,
    lanes: usize,
    n: usize,
    xs: &[f64],
    inv_two_var_f64: f64,
) {
    let view = T::joint_view(fhmm);
    let k = view.k;
    let inv_two_var = T::from_f64(inv_two_var_f64);
    col.clear();
    col.extend(xs.iter().map(|&x| T::from_f64(x)));
    if n == 0 {
        delta.clear();
        delta.resize(k * lanes, T::NEG_INF);
        next.clear();
        next.resize(k * lanes, T::NEG_INF);
        back.resize(k * lanes, 0);
        batch_init_step(&view, col, delta, inv_two_var);
    } else {
        let t = n;
        back.resize((t + 1) * k * lanes, 0);
        let back_t = &mut back[t * k * lanes..(t + 1) * k * lanes];
        batch_step(&view, col, delta, next, back_t, inv_two_var);
        std::mem::swap(delta, next);
    }
}

/// Incremental forward pass of the *batched* exact Viterbi decoder: `B`
/// homes advance in lockstep, one synchronous observation row per
/// [`FhmmBatchFilter::push_row`], in the same SoA layout as
/// [`Fhmm::decode_batch`]. Cloning the filter checkpoints all lanes at
/// once; [`FhmmBatchFilter::paths`] backtracks every lane, byte-identical
/// to a single-home [`FhmmFilter`] fed the same per-lane trace.
#[derive(Debug, Clone)]
pub struct FhmmBatchFilter<'a> {
    fhmm: &'a Fhmm,
    lanes: usize,
    inv_two_var: f64,
    rows: FilterRows,
    back: Vec<u32>,
    n: usize,
}

impl FhmmBatchFilter<'_> {
    /// Advances every lane by one aggregate observation (watts).
    ///
    /// # Panics
    ///
    /// Panics unless `xs` holds exactly one reading per lane.
    pub fn push_row(&mut self, xs: &[f64]) {
        assert_eq!(xs.len(), self.lanes, "one reading per lane");
        match &mut self.rows {
            FilterRows::F64 { delta, next, col } => batch_filter_push::<f64>(
                self.fhmm,
                delta,
                next,
                col,
                &mut self.back,
                self.lanes,
                self.n,
                xs,
                self.inv_two_var,
            ),
            FilterRows::F32 { delta, next, col } => batch_filter_push::<f32>(
                self.fhmm,
                delta,
                next,
                col,
                &mut self.back,
                self.lanes,
                self.n,
                xs,
                self.inv_two_var,
            ),
        }
        self.n += 1;
    }

    /// Number of lanes advancing in lockstep.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of observation rows pushed so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no observation row has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Backtracks every lane's decode so far into per-device state paths
    /// (outer index: lane). Does not consume the filter.
    pub fn paths(&self) -> Vec<Vec<Vec<usize>>> {
        let n = self.n;
        if n == 0 {
            return vec![vec![Vec::new(); self.fhmm.devices.len()]; self.lanes];
        }
        let k = self.fhmm.joint_tables().k;
        let joints = match &self.rows {
            FilterRows::F64 { delta, .. } => {
                batch_backtrack::<f64>(k, self.lanes, n, delta, &self.back)
            }
            FilterRows::F32 { delta, .. } => {
                batch_backtrack::<f32>(k, self.lanes, n, delta, &self.back)
            }
        };
        joints.iter().map(|j| self.fhmm.unpack_paths(j)).collect()
    }
}

/// Minimum trace length before the residual fill fans out to threads;
/// below this the serial loop wins on overhead.
const PAR_RESIDUAL_MIN: usize = 8_192;
/// Chunk length for the parallel residual fill. Fixed (not thread-count
/// derived) so the work decomposition is identical on every machine.
const PAR_RESIDUAL_CHUNK: usize = 4_096;

/// Computes `residual[t] = xs[t] - (explained[t] - watts[path[t]])` — the
/// meter signal with every *other* device's current explanation removed.
fn fill_residual(
    residual: &mut [f64],
    xs: &[f64],
    explained: &[f64],
    watts: &[f64],
    path: &[usize],
) {
    let n = residual.len();
    if n >= PAR_RESIDUAL_MIN && rayon::current_num_threads() > 1 {
        let chunks: Vec<Vec<f64>> =
            rayon::parallel_map((0..n).step_by(PAR_RESIDUAL_CHUNK).collect(), |start| {
                let end = (start + PAR_RESIDUAL_CHUNK).min(n);
                (start..end)
                    .map(|t| xs[t] - (explained[t] - watts[path[t]]))
                    .collect()
            });
        let mut at = 0;
        for chunk in chunks {
            residual[at..at + chunk.len()].copy_from_slice(&chunk);
            at += chunk.len();
        }
    } else {
        for t in 0..n {
            residual[t] = xs[t] - (explained[t] - watts[path[t]]);
        }
    }
}

impl Disaggregator for Fhmm {
    fn disaggregate(&self, meter: &PowerTrace) -> Vec<DeviceEstimate> {
        with_thread_arena(|arena| self.disaggregate_with(meter, arena))
    }

    fn name(&self) -> &str {
        "fhmm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::evaluate_disaggregation;
    use crate::train::train_device_hmm;
    use timeseries::{Resolution, Timestamp};

    fn square_wave(period: usize, on_len: usize, watts: f64, len: usize) -> PowerTrace {
        PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, len, |i| {
            if i % period < on_len {
                watts
            } else {
                0.0
            }
        })
    }

    /// A noisy two-device meter, deterministic per seed.
    fn noisy_meter(seed: u64, len: usize) -> (PowerTrace, PowerTrace, PowerTrace) {
        use timeseries::rng::{normal, seeded_rng};
        let a_truth = square_wave(40, 15, 150.0, len);
        let b_truth = square_wave(90, 30, 1_000.0, len);
        let mut rng = seeded_rng(seed);
        let meter = a_truth
            .checked_add(&b_truth)
            .unwrap()
            .map(|w| (w + normal(&mut rng, 0.0, 25.0)).max(0.0));
        (a_truth, b_truth, meter)
    }

    fn two_device_fhmm(config: FhmmConfig) -> Fhmm {
        let (a_truth, b_truth, _) = noisy_meter(0, 600);
        Fhmm::with_config(
            vec![
                train_device_hmm("a", &a_truth, 2),
                train_device_hmm("b", &b_truth, 2),
            ],
            config,
        )
    }

    #[test]
    fn exact_two_device_separation() {
        // Two devices with different magnitudes and periods.
        let a_truth = square_wave(40, 15, 150.0, 600);
        let b_truth = square_wave(90, 30, 1_000.0, 600);
        let meter = a_truth.checked_add(&b_truth).unwrap();

        let a = train_device_hmm("a", &a_truth, 2);
        let b = train_device_hmm("b", &b_truth, 2);
        let fhmm = Fhmm::new(vec![a, b]);
        assert_eq!(fhmm.joint_states(), 4);

        let estimates = fhmm.disaggregate(&meter);
        let truth = vec![("a".to_string(), a_truth), ("b".to_string(), b_truth)];
        let scores = evaluate_disaggregation(&truth, &estimates).unwrap();
        for s in &scores {
            assert!(s.error_factor < 0.05, "{}: {}", s.device, s.error_factor);
        }
    }

    #[test]
    fn icm_matches_exact_on_small_problem() {
        let a_truth = square_wave(50, 20, 200.0, 400);
        let b_truth = square_wave(70, 25, 1_200.0, 400);
        let meter = a_truth.checked_add(&b_truth).unwrap();
        let models = vec![
            train_device_hmm("a", &a_truth, 2),
            train_device_hmm("b", &b_truth, 2),
        ];
        let exact = Fhmm::with_config(
            models.clone(),
            FhmmConfig {
                max_exact_states: 256,
                ..FhmmConfig::default()
            },
        );
        let icm = Fhmm::with_config(
            models,
            FhmmConfig {
                max_exact_states: 1,
                icm_sweeps: 6,
                ..FhmmConfig::default()
            },
        );
        let e1 = exact.disaggregate(&meter);
        let e2 = icm.disaggregate(&meter);
        // ICM should find (nearly) the same explanation here.
        for (a, b) in e1.iter().zip(&e2) {
            let diff: f64 = a
                .trace
                .samples()
                .iter()
                .zip(b.trace.samples())
                .map(|(x, y)| (x - y).abs())
                .sum();
            let total: f64 = a.trace.samples().iter().sum();
            assert!(diff / total.max(1.0) < 0.1, "{}: diff {diff}", a.name);
        }
    }

    #[test]
    fn confuses_similar_small_loads_under_noise() {
        // Two near-identical small loads + noise: FHMM has trouble — this
        // is the PowerPlay advantage the paper's Figure 2 shows.
        use timeseries::rng::{normal, seeded_rng};
        let a_truth = square_wave(50, 20, 100.0, 800);
        let b_truth = square_wave(64, 24, 110.0, 800);
        let mut rng = seeded_rng(1);
        let meter = a_truth
            .checked_add(&b_truth)
            .unwrap()
            .map(|w| (w + normal(&mut rng, 0.0, 40.0)).max(0.0));
        let fhmm = Fhmm::new(vec![
            train_device_hmm("a", &a_truth, 2),
            train_device_hmm("b", &b_truth, 2),
        ]);
        let estimates = fhmm.disaggregate(&meter);
        let truth = vec![("a".to_string(), a_truth), ("b".to_string(), b_truth)];
        let scores = evaluate_disaggregation(&truth, &estimates).unwrap();
        let worst = scores.iter().map(|s| s.error_factor).fold(0.0, f64::max);
        assert!(worst > 0.15, "expected confusion, worst error {worst}");
    }

    #[test]
    fn empty_meter() {
        let t = square_wave(10, 5, 100.0, 50);
        let fhmm = Fhmm::new(vec![train_device_hmm("a", &t, 2)]);
        let meter = PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_MINUTE, 0);
        let estimates = fhmm.disaggregate(&meter);
        assert_eq!(estimates.len(), 1);
        assert!(estimates[0].trace.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_device_set_rejected() {
        Fhmm::new(vec![]);
    }

    #[test]
    fn flat_chain_matches_nested_table() {
        let t = square_wave(30, 10, 500.0, 300);
        let dev = train_device_hmm("d", &t, 3);
        let chain = FlatChain::from_hmm(&dev);
        for from in 0..dev.n_states() {
            for to in 0..dev.n_states() {
                assert_eq!(
                    chain.log_trans_t[to * chain.k + from],
                    dev.log_trans[from][to]
                );
            }
        }
    }

    #[test]
    fn parallel_residual_fill_matches_serial() {
        let n = PAR_RESIDUAL_MIN + 1_234;
        let xs: Vec<f64> = (0..n).map(|t| (t % 977) as f64).collect();
        let explained: Vec<f64> = (0..n).map(|t| (t % 311) as f64 * 0.5).collect();
        let watts = vec![0.0, 120.0, 950.0];
        let path: Vec<usize> = (0..n).map(|t| t % watts.len()).collect();

        let mut parallel = vec![0.0; n];
        fill_residual(&mut parallel, &xs, &explained, &watts, &path);
        let serial: Vec<f64> = (0..n)
            .map(|t| xs[t] - (explained[t] - watts[path[t]]))
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn precision_defaults_to_f64() {
        assert_eq!(FhmmConfig::default().precision, DecodePrecision::F64);
        assert_eq!(DecodePrecision::default(), DecodePrecision::F64);
    }

    #[test]
    fn batched_exact_matches_single_for_any_b() {
        let fhmm = two_device_fhmm(FhmmConfig::default());
        assert!(fhmm.exact_capable());
        for lanes in [1usize, 3, 8] {
            let meters: Vec<PowerTrace> =
                (0..lanes).map(|s| noisy_meter(s as u64, 300).2).collect();
            let refs: Vec<&PowerTrace> = meters.iter().collect();
            let mut arena = DecodeArena::new();
            let batched = fhmm.decode_batch(&refs, &mut arena);
            for (m, got) in meters.iter().zip(&batched) {
                let solo = fhmm.decode(m, &mut DecodeArena::new());
                assert_eq!(*got, solo, "lanes {lanes}");
            }
        }
    }

    #[test]
    fn batched_icm_matches_serial() {
        let fhmm = two_device_fhmm(FhmmConfig {
            max_exact_states: 1,
            ..FhmmConfig::default()
        });
        assert!(!fhmm.exact_capable());
        let meters: Vec<PowerTrace> = (0..4).map(|s| noisy_meter(s as u64, 250).2).collect();
        let refs: Vec<&PowerTrace> = meters.iter().collect();
        let mut arena = DecodeArena::new();
        let batched = fhmm.decode_batch(&refs, &mut arena);
        for (m, got) in meters.iter().zip(&batched) {
            let solo = fhmm.decode(m, &mut DecodeArena::new());
            assert_eq!(*got, solo);
        }
    }

    #[test]
    fn ragged_batch_groups_by_length() {
        let fhmm = two_device_fhmm(FhmmConfig::default());
        let lens = [300usize, 120, 300, 0, 120];
        let meters: Vec<PowerTrace> = lens
            .iter()
            .enumerate()
            .map(|(s, &len)| noisy_meter(s as u64, len.max(1)).2.slice(0..len))
            .collect();
        let refs: Vec<&PowerTrace> = meters.iter().collect();
        let mut arena = DecodeArena::new();
        let batched = fhmm.decode_batch(&refs, &mut arena);
        assert_eq!(batched.len(), meters.len());
        for (m, got) in meters.iter().zip(&batched) {
            let solo = fhmm.decode(m, &mut DecodeArena::new());
            assert_eq!(*got, solo);
        }
    }

    #[test]
    fn batch_filter_matches_batch_decode() {
        let fhmm = two_device_fhmm(FhmmConfig::default());
        let meters: Vec<PowerTrace> = (0..3).map(|s| noisy_meter(s as u64, 180).2).collect();
        let refs: Vec<&PowerTrace> = meters.iter().collect();
        let mut arena = DecodeArena::new();
        let batched = fhmm.decode_batch(&refs, &mut arena);

        let mut filter = fhmm.batch_filter(3).unwrap();
        let mut checkpoint = None;
        for t in 0..180 {
            let row: Vec<f64> = meters.iter().map(|m| m.samples()[t]).collect();
            filter.push_row(&row);
            if t == 90 {
                checkpoint = Some(filter.clone());
            }
        }
        assert_eq!(filter.paths(), batched);

        // Restoring the checkpoint and replaying the tail reproduces it.
        let mut restored = checkpoint.unwrap();
        for t in 91..180 {
            let row: Vec<f64> = meters.iter().map(|m| m.samples()[t]).collect();
            restored.push_row(&row);
        }
        assert_eq!(restored.paths(), batched);
    }

    #[test]
    fn f32_path_decodes_close_to_f64() {
        let f64_model = two_device_fhmm(FhmmConfig::default());
        let f32_model = two_device_fhmm(FhmmConfig {
            precision: DecodePrecision::F32,
            ..FhmmConfig::default()
        });
        let mut total = 0usize;
        let mut disagree = 0usize;
        for seed in 0..4u64 {
            let meter = noisy_meter(seed, 400).2;
            let a = f64_model.decode(&meter, &mut DecodeArena::new());
            let b = f32_model.decode(&meter, &mut DecodeArena::new());
            for (pa, pb) in a.iter().zip(&b) {
                total += pa.len();
                disagree += pa.iter().zip(pb).filter(|(x, y)| x != y).count();
            }
        }
        let rate = disagree as f64 / total as f64;
        assert!(rate < 0.02, "f32 disagreement rate {rate}");
    }

    #[test]
    fn f32_batch_matches_f32_single() {
        let fhmm = two_device_fhmm(FhmmConfig {
            precision: DecodePrecision::F32,
            ..FhmmConfig::default()
        });
        let meters: Vec<PowerTrace> = (0..5).map(|s| noisy_meter(s as u64, 200).2).collect();
        let refs: Vec<&PowerTrace> = meters.iter().collect();
        let batched = fhmm.decode_batch(&refs, &mut DecodeArena::new());
        for (m, got) in meters.iter().zip(&batched) {
            assert_eq!(*got, fhmm.decode(m, &mut DecodeArena::new()));
        }
    }

    #[test]
    fn filter_precision_follows_config() {
        // Chunked filter pushes must reproduce the batch decode under F32
        // too (the stream layer relies on this equivalence).
        let fhmm = two_device_fhmm(FhmmConfig {
            precision: DecodePrecision::F32,
            ..FhmmConfig::default()
        });
        let meter = noisy_meter(7, 150).2;
        let batch = fhmm.decode(&meter, &mut DecodeArena::new());
        let mut filter = fhmm.filter().unwrap();
        for &x in meter.samples() {
            filter.push(x);
        }
        assert_eq!(filter.paths(), batch);
    }

    #[test]
    fn arena_reuse_is_counted() {
        let fhmm = two_device_fhmm(FhmmConfig::default());
        let meter = noisy_meter(3, 200).2;
        let mut arena = DecodeArena::new();
        fhmm.disaggregate_with(&meter, &mut arena);
        obs::enable();
        obs::reset();
        fhmm.disaggregate_with(&meter, &mut arena);
        let report = obs::snapshot();
        obs::disable();
        assert!(report.counter("decode.arena_reuse").unwrap_or(0) >= 1);
    }
}
