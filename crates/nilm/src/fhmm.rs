//! The Factorial-HMM disaggregation baseline (Kolter & Johnson, REDD).
//!
//! Each device is an independent Markov chain (learned by [`crate::train`])
//! and the meter observes the *sum* of all chains' emissions plus Gaussian
//! noise. Inference recovers the most likely joint state path:
//!
//! * **exact factorial Viterbi** over the joint product state space when it
//!   is small enough, or
//! * **iterated conditional modes (ICM)**: per-device Viterbi against the
//!   residual left by the other devices' current estimates, swept until
//!   convergence — the standard approximation for large device sets.
//!
//! Hot-path layout: both decoders work on flat `Vec<f64>` tables — joint
//! emission means, joint log-transitions stored *transposed* (`[to*k+from]`)
//! so the max-over-predecessors inner loop reads contiguous memory — with
//! two swapped scratch rows instead of per-step allocation, and `u32`
//! backpointers at half the memory traffic of `usize`. The joint tables
//! depend only on the models, so they are built once per [`Fhmm`] and
//! shared by every subsequent decode (e.g. per-day slices in the figure
//! binaries).

use crate::estimate::{DeviceEstimate, Disaggregator};
use crate::train::DeviceHmm;
use std::sync::OnceLock;
use timeseries::{PowerTrace, Resolution, Timestamp};

/// Tuning parameters of the FHMM disaggregator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FhmmConfig {
    /// Std-dev of the aggregate observation noise, watts.
    pub noise_sd_watts: f64,
    /// Largest joint state count for which exact factorial Viterbi is used.
    pub max_exact_states: usize,
    /// ICM sweeps when the joint space is too large for exact inference.
    pub icm_sweeps: usize,
}

impl Default for FhmmConfig {
    fn default() -> Self {
        FhmmConfig {
            noise_sd_watts: 40.0,
            max_exact_states: 512,
            icm_sweeps: 4,
        }
    }
}

/// One device chain in hot-path layout: transposed flat transition table.
#[derive(Debug, Clone)]
struct FlatChain {
    k: usize,
    watts: Vec<f64>,
    log_init: Vec<f64>,
    /// `log_trans_t[to * k + from]` — transposed so scanning predecessors
    /// of one target state is a contiguous read.
    log_trans_t: Vec<f64>,
}

impl FlatChain {
    fn from_hmm(dev: &DeviceHmm) -> Self {
        let k = dev.n_states();
        let mut log_trans_t = vec![0.0f64; k * k];
        for (from, row) in dev.log_trans.iter().enumerate() {
            for (to, &v) in row.iter().enumerate() {
                log_trans_t[to * k + from] = v;
            }
        }
        FlatChain {
            k,
            watts: dev.state_watts.clone(),
            log_init: dev.log_init.clone(),
            log_trans_t,
        }
    }
}

/// Joint-space tables for exact factorial Viterbi; model-dependent only,
/// so built once per [`Fhmm`] and reused across decodes.
#[derive(Debug, Clone)]
struct JointTables {
    k: usize,
    /// Per-joint-state emission mean (sum of device state watts).
    totals: Vec<f64>,
    log_init: Vec<f64>,
    /// `log_a_t[to * k + from]` — transposed joint log-transition matrix.
    log_a_t: Vec<f64>,
}

/// The factorial HMM over a set of learned device models.
#[derive(Debug, Clone)]
pub struct Fhmm {
    devices: Vec<DeviceHmm>,
    chains: Vec<FlatChain>,
    config: FhmmConfig,
    joint: OnceLock<JointTables>,
}

impl Fhmm {
    /// Creates an FHMM from learned device models with default tuning.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn new(devices: Vec<DeviceHmm>) -> Self {
        Fhmm::with_config(devices, FhmmConfig::default())
    }

    /// Creates an FHMM with explicit tuning.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty or the noise std-dev is not positive.
    pub fn with_config(devices: Vec<DeviceHmm>, config: FhmmConfig) -> Self {
        assert!(!devices.is_empty(), "FHMM needs at least one device");
        assert!(
            config.noise_sd_watts.is_finite() && config.noise_sd_watts > 0.0,
            "noise std-dev must be positive"
        );
        let chains = devices.iter().map(FlatChain::from_hmm).collect();
        Fhmm {
            devices,
            chains,
            config,
            joint: OnceLock::new(),
        }
    }

    /// The total joint state count.
    pub fn joint_states(&self) -> usize {
        self.devices.iter().map(|d| d.n_states()).product()
    }

    /// Decodes per-device state paths for `meter`.
    fn decode(&self, meter: &PowerTrace) -> Vec<Vec<usize>> {
        if meter.is_empty() {
            return vec![Vec::new(); self.devices.len()];
        }
        obs::counter_add("nilm.fhmm.samples", meter.len() as u64);
        if self.joint_states() <= self.config.max_exact_states {
            obs::time("nilm.fhmm.decode_exact", || self.decode_exact(meter))
        } else {
            obs::time("nilm.fhmm.decode_icm", || self.decode_icm(meter))
        }
    }

    /// Builds (or fetches) the joint tables for exact decoding.
    fn joint_tables(&self) -> &JointTables {
        self.joint.get_or_init(|| {
            let k = self.joint_states();
            let factored: Vec<Vec<usize>> = (0..k).map(|j| self.unpack(j)).collect();
            let totals: Vec<f64> = factored
                .iter()
                .map(|states| {
                    states
                        .iter()
                        .zip(&self.devices)
                        .map(|(&s, d)| d.state_watts[s])
                        .sum()
                })
                .collect();
            let log_init: Vec<f64> = factored
                .iter()
                .map(|states| {
                    states
                        .iter()
                        .zip(&self.devices)
                        .map(|(&s, d)| d.log_init[s])
                        .sum()
                })
                .collect();
            // Joint log-transitions factorize as a sum over devices.
            let mut log_a_t = vec![0.0f64; k * k];
            for from in 0..k {
                for to in 0..k {
                    log_a_t[to * k + from] = factored[from]
                        .iter()
                        .zip(&factored[to])
                        .zip(&self.devices)
                        .map(|((&f, &t), d)| d.log_trans[f][t])
                        .sum();
                }
            }
            JointTables {
                k,
                totals,
                log_init,
                log_a_t,
            }
        })
    }

    /// Exact factorial Viterbi over the joint product space.
    fn decode_exact(&self, meter: &PowerTrace) -> Vec<Vec<usize>> {
        let tables = self.joint_tables();
        let k = tables.k;
        let n = meter.len();
        let xs = meter.samples();
        let inv_two_var = 0.5 / (self.config.noise_sd_watts * self.config.noise_sd_watts);

        let emit = |j: usize, x: f64| -> f64 {
            let d = x - tables.totals[j];
            -d * d * inv_two_var
        };

        // Two scratch rows swapped each step; flat u32 backpointers.
        let mut delta: Vec<f64> = (0..k)
            .map(|j| tables.log_init[j] + emit(j, xs[0]))
            .collect();
        let mut next = vec![f64::NEG_INFINITY; k];
        let mut back = vec![0u32; n * k];
        for t in 1..n {
            let back_row = &mut back[t * k..(t + 1) * k];
            for (j, slot) in back_row.iter_mut().enumerate() {
                let row = &tables.log_a_t[j * k..(j + 1) * k];
                let mut best = f64::NEG_INFINITY;
                let mut arg = 0u32;
                for (i, (&d, &a)) in delta.iter().zip(row).enumerate() {
                    let v = d + a;
                    if v > best {
                        best = v;
                        arg = i as u32;
                    }
                }
                next[j] = best + emit(j, xs[t]);
                *slot = arg;
            }
            std::mem::swap(&mut delta, &mut next);
        }
        let mut joint_path = vec![0usize; n];
        joint_path[n - 1] = delta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(j, _)| j)
            .unwrap_or(0);
        for t in (0..n - 1).rev() {
            joint_path[t] = back[(t + 1) * k + joint_path[t + 1]] as usize;
        }

        // Unpack into per-device paths.
        let mut paths = vec![vec![0usize; n]; self.devices.len()];
        for (t, &j) in joint_path.iter().enumerate() {
            let mut rest = j;
            for (path, dev) in paths.iter_mut().zip(&self.devices) {
                path[t] = rest % dev.n_states();
                rest /= dev.n_states();
            }
        }
        paths
    }

    /// Iterated conditional modes: per-device Viterbi against the residual.
    ///
    /// Device sweeps stay strictly Gauss-Seidel (each device sees every
    /// earlier update within the sweep) so results are independent of
    /// thread count; only the residual construction is parallelized, in
    /// fixed chunks that make the arithmetic identical to the serial fill.
    fn decode_icm(&self, meter: &PowerTrace) -> Vec<Vec<usize>> {
        let n = meter.len();
        let xs = meter.samples();
        // Start everything in its lowest state.
        let mut paths: Vec<Vec<usize>> = self.devices.iter().map(|_| vec![0usize; n]).collect();
        let mut explained: Vec<f64> = vec![0.0; n];
        for (d, dev) in self.devices.iter().enumerate() {
            for t in 0..n {
                explained[t] += dev.state_watts[paths[d][t]];
            }
        }

        // Sweep flexible chains (more states) first so slack/background
        // chains absorb unmodelled load before specific appliances claim it.
        let mut order: Vec<usize> = (0..self.devices.len()).collect();
        order.sort_by_key(|&d| std::cmp::Reverse(self.devices[d].n_states()));
        let mut residual = vec![0.0f64; n];
        let mut scratch = ViterbiScratch::default();
        for _ in 0..self.config.icm_sweeps {
            let mut changed = false;
            for &d in &order {
                let dev = &self.devices[d];
                let chain = &self.chains[d];
                fill_residual(&mut residual, xs, &explained, &dev.state_watts, &paths[d]);
                let new_path =
                    viterbi_single_flat(chain, &residual, self.config.noise_sd_watts, &mut scratch);
                if new_path != paths[d] {
                    changed = true;
                    for t in 0..n {
                        explained[t] += dev.state_watts[new_path[t]] - dev.state_watts[paths[d][t]];
                    }
                    paths[d] = new_path;
                }
            }
            if !changed {
                break;
            }
        }
        paths
    }

    /// Unpacks joint state index `j` into per-device states.
    fn unpack(&self, mut j: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.devices.len());
        for d in &self.devices {
            out.push(j % d.n_states());
            j /= d.n_states();
        }
        out
    }

    /// Whether this model decodes with exact factorial Viterbi (as opposed
    /// to the ICM approximation, which needs the whole trace at once).
    pub fn exact_capable(&self) -> bool {
        self.joint_states() <= self.config.max_exact_states
    }

    /// Number of device models in the factorial ensemble.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Starts an incremental exact-Viterbi forward pass over this model, or
    /// `None` when the joint space is too large for exact decoding (ICM is
    /// a whole-trace algorithm; callers must buffer and use
    /// [`Disaggregator::disaggregate`] instead).
    ///
    /// Pushing every sample of a trace and then calling
    /// [`FhmmFilter::paths`] reproduces the batch decode bit for bit: the
    /// filter runs the same flat-table recurrence as the internal exact
    /// decoder, merely spread across `push` calls.
    pub fn filter(&self) -> Option<FhmmFilter<'_>> {
        if !self.exact_capable() {
            return None;
        }
        let tables = self.joint_tables();
        Some(FhmmFilter {
            fhmm: self,
            inv_two_var: 0.5 / (self.config.noise_sd_watts * self.config.noise_sd_watts),
            delta: Vec::new(),
            next: vec![f64::NEG_INFINITY; tables.k],
            back: Vec::new(),
            n: 0,
        })
    }

    /// Renders per-device state paths into [`DeviceEstimate`]s exactly as
    /// [`Disaggregator::disaggregate`] does after decoding.
    ///
    /// # Panics
    ///
    /// Panics if `paths` does not hold one path per device, or any path is
    /// shorter than `len`.
    pub fn estimates_from_paths(
        &self,
        start: Timestamp,
        resolution: Resolution,
        len: usize,
        paths: &[Vec<usize>],
    ) -> Vec<DeviceEstimate> {
        assert_eq!(paths.len(), self.devices.len(), "one path per device");
        self.devices
            .iter()
            .zip(paths)
            .map(|(dev, path)| DeviceEstimate {
                name: dev.name.clone(),
                trace: PowerTrace::from_fn(start, resolution, len, |t| dev.state_watts[path[t]]),
            })
            .collect()
    }
}

/// Incremental forward pass of the exact factorial Viterbi decoder: the
/// same recurrence as the batch decoder, one observation per
/// [`FhmmFilter::push`]. Constant non-output state (two `k`-wide scratch
/// rows); the backpointer table grows one row per sample, exactly like the
/// batch decoder's. Cloning the filter checkpoints the decode mid-trace.
#[derive(Debug, Clone)]
pub struct FhmmFilter<'a> {
    fhmm: &'a Fhmm,
    inv_two_var: f64,
    delta: Vec<f64>,
    next: Vec<f64>,
    back: Vec<u32>,
    n: usize,
}

impl FhmmFilter<'_> {
    /// Advances the decode by one aggregate observation (watts).
    pub fn push(&mut self, x: f64) {
        let tables = self.fhmm.joint_tables();
        let k = tables.k;
        if self.n == 0 {
            self.delta.clear();
            self.delta.extend((0..k).map(|j| {
                let d = x - tables.totals[j];
                tables.log_init[j] + (-d * d * self.inv_two_var)
            }));
            // Row 0 of the backpointer table is never read; keep it zeroed
            // to mirror the batch decoder's layout.
            self.back.resize(k, 0);
        } else {
            let t = self.n;
            self.back.resize((t + 1) * k, 0);
            for j in 0..k {
                let row = &tables.log_a_t[j * k..(j + 1) * k];
                let mut best = f64::NEG_INFINITY;
                let mut arg = 0u32;
                for (i, (&d, &a)) in self.delta.iter().zip(row).enumerate() {
                    let v = d + a;
                    if v > best {
                        best = v;
                        arg = i as u32;
                    }
                }
                let d = x - tables.totals[j];
                self.next[j] = best + (-d * d * self.inv_two_var);
                self.back[t * k + j] = arg;
            }
            std::mem::swap(&mut self.delta, &mut self.next);
        }
        self.n += 1;
    }

    /// Number of observations pushed so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no observation has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Backtracks the decode so far into per-device state paths —
    /// byte-identical to what the batch decoder returns for the same
    /// observation prefix. Does not consume the filter; feeding may
    /// continue afterwards.
    pub fn paths(&self) -> Vec<Vec<usize>> {
        let n = self.n;
        if n == 0 {
            return vec![Vec::new(); self.fhmm.devices.len()];
        }
        let k = self.fhmm.joint_tables().k;
        let mut joint_path = vec![0usize; n];
        joint_path[n - 1] = self
            .delta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(j, _)| j)
            .unwrap_or(0);
        for t in (0..n - 1).rev() {
            joint_path[t] = self.back[(t + 1) * k + joint_path[t + 1]] as usize;
        }
        let mut paths = vec![vec![0usize; n]; self.fhmm.devices.len()];
        for (t, &j) in joint_path.iter().enumerate() {
            let mut rest = j;
            for (path, dev) in paths.iter_mut().zip(&self.fhmm.devices) {
                path[t] = rest % dev.n_states();
                rest /= dev.n_states();
            }
        }
        paths
    }
}

/// Minimum trace length before the residual fill fans out to threads;
/// below this the serial loop wins on overhead.
const PAR_RESIDUAL_MIN: usize = 8_192;
/// Chunk length for the parallel residual fill. Fixed (not thread-count
/// derived) so the work decomposition is identical on every machine.
const PAR_RESIDUAL_CHUNK: usize = 4_096;

/// Computes `residual[t] = xs[t] - (explained[t] - watts[path[t]])` — the
/// meter signal with every *other* device's current explanation removed.
fn fill_residual(
    residual: &mut [f64],
    xs: &[f64],
    explained: &[f64],
    watts: &[f64],
    path: &[usize],
) {
    let n = residual.len();
    if n >= PAR_RESIDUAL_MIN && rayon::current_num_threads() > 1 {
        let chunks: Vec<Vec<f64>> =
            rayon::parallel_map((0..n).step_by(PAR_RESIDUAL_CHUNK).collect(), |start| {
                let end = (start + PAR_RESIDUAL_CHUNK).min(n);
                (start..end)
                    .map(|t| xs[t] - (explained[t] - watts[path[t]]))
                    .collect()
            });
        let mut at = 0;
        for chunk in chunks {
            residual[at..at + chunk.len()].copy_from_slice(&chunk);
            at += chunk.len();
        }
    } else {
        for t in 0..n {
            residual[t] = xs[t] - (explained[t] - watts[path[t]]);
        }
    }
}

/// Reusable buffers for [`viterbi_single_flat`], avoiding the dominant
/// per-call allocation (the `n * k` backpointer table).
#[derive(Debug, Default)]
struct ViterbiScratch {
    delta: Vec<f64>,
    next: Vec<f64>,
    back: Vec<u32>,
}

/// Viterbi for a single device chain against a residual signal, using the
/// chain's transposed flat transition table and caller-owned scratch.
fn viterbi_single_flat(
    chain: &FlatChain,
    residual: &[f64],
    noise_sd: f64,
    scratch: &mut ViterbiScratch,
) -> Vec<usize> {
    let k = chain.k;
    let n = residual.len();
    if n == 0 {
        return Vec::new();
    }
    let inv_two_var = 0.5 / (noise_sd * noise_sd);
    let emit = |s: usize, x: f64| -> f64 {
        let d = x - chain.watts[s];
        -d * d * inv_two_var
    };

    scratch.delta.clear();
    scratch
        .delta
        .extend((0..k).map(|s| chain.log_init[s] + emit(s, residual[0])));
    scratch.next.clear();
    scratch.next.resize(k, f64::NEG_INFINITY);
    scratch.back.clear();
    scratch.back.resize(n * k, 0);
    let delta = &mut scratch.delta;
    let next = &mut scratch.next;
    let back = &mut scratch.back;

    for t in 1..n {
        let back_row = &mut back[t * k..(t + 1) * k];
        for (s, slot) in back_row.iter_mut().enumerate() {
            let row = &chain.log_trans_t[s * k..(s + 1) * k];
            let mut best = f64::NEG_INFINITY;
            let mut arg = 0u32;
            for (p, (&d, &a)) in delta.iter().zip(row).enumerate() {
                let v = d + a;
                if v > best {
                    best = v;
                    arg = p as u32;
                }
            }
            next[s] = best + emit(s, residual[t]);
            *slot = arg;
        }
        std::mem::swap(delta, next);
    }
    let mut path = vec![0usize; n];
    path[n - 1] = delta
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(s, _)| s)
        .unwrap_or(0);
    for t in (0..n - 1).rev() {
        path[t] = back[(t + 1) * k + path[t + 1]] as usize;
    }
    path
}

impl Disaggregator for Fhmm {
    fn disaggregate(&self, meter: &PowerTrace) -> Vec<DeviceEstimate> {
        let paths = self.decode(meter);
        self.estimates_from_paths(meter.start(), meter.resolution(), meter.len(), &paths)
    }

    fn name(&self) -> &str {
        "fhmm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::evaluate_disaggregation;
    use crate::train::train_device_hmm;
    use timeseries::{Resolution, Timestamp};

    fn square_wave(period: usize, on_len: usize, watts: f64, len: usize) -> PowerTrace {
        PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, len, |i| {
            if i % period < on_len {
                watts
            } else {
                0.0
            }
        })
    }

    #[test]
    fn exact_two_device_separation() {
        // Two devices with different magnitudes and periods.
        let a_truth = square_wave(40, 15, 150.0, 600);
        let b_truth = square_wave(90, 30, 1_000.0, 600);
        let meter = a_truth.checked_add(&b_truth).unwrap();

        let a = train_device_hmm("a", &a_truth, 2);
        let b = train_device_hmm("b", &b_truth, 2);
        let fhmm = Fhmm::new(vec![a, b]);
        assert_eq!(fhmm.joint_states(), 4);

        let estimates = fhmm.disaggregate(&meter);
        let truth = vec![("a".to_string(), a_truth), ("b".to_string(), b_truth)];
        let scores = evaluate_disaggregation(&truth, &estimates).unwrap();
        for s in &scores {
            assert!(s.error_factor < 0.05, "{}: {}", s.device, s.error_factor);
        }
    }

    #[test]
    fn icm_matches_exact_on_small_problem() {
        let a_truth = square_wave(50, 20, 200.0, 400);
        let b_truth = square_wave(70, 25, 1_200.0, 400);
        let meter = a_truth.checked_add(&b_truth).unwrap();
        let models = vec![
            train_device_hmm("a", &a_truth, 2),
            train_device_hmm("b", &b_truth, 2),
        ];
        let exact = Fhmm::with_config(
            models.clone(),
            FhmmConfig {
                max_exact_states: 256,
                ..FhmmConfig::default()
            },
        );
        let icm = Fhmm::with_config(
            models,
            FhmmConfig {
                max_exact_states: 1,
                icm_sweeps: 6,
                ..FhmmConfig::default()
            },
        );
        let e1 = exact.disaggregate(&meter);
        let e2 = icm.disaggregate(&meter);
        // ICM should find (nearly) the same explanation here.
        for (a, b) in e1.iter().zip(&e2) {
            let diff: f64 = a
                .trace
                .samples()
                .iter()
                .zip(b.trace.samples())
                .map(|(x, y)| (x - y).abs())
                .sum();
            let total: f64 = a.trace.samples().iter().sum();
            assert!(diff / total.max(1.0) < 0.1, "{}: diff {diff}", a.name);
        }
    }

    #[test]
    fn confuses_similar_small_loads_under_noise() {
        // Two near-identical small loads + noise: FHMM has trouble — this
        // is the PowerPlay advantage the paper's Figure 2 shows.
        use timeseries::rng::{normal, seeded_rng};
        let a_truth = square_wave(50, 20, 100.0, 800);
        let b_truth = square_wave(64, 24, 110.0, 800);
        let mut rng = seeded_rng(1);
        let meter = a_truth
            .checked_add(&b_truth)
            .unwrap()
            .map(|w| (w + normal(&mut rng, 0.0, 40.0)).max(0.0));
        let fhmm = Fhmm::new(vec![
            train_device_hmm("a", &a_truth, 2),
            train_device_hmm("b", &b_truth, 2),
        ]);
        let estimates = fhmm.disaggregate(&meter);
        let truth = vec![("a".to_string(), a_truth), ("b".to_string(), b_truth)];
        let scores = evaluate_disaggregation(&truth, &estimates).unwrap();
        let worst = scores.iter().map(|s| s.error_factor).fold(0.0, f64::max);
        assert!(worst > 0.15, "expected confusion, worst error {worst}");
    }

    #[test]
    fn empty_meter() {
        let t = square_wave(10, 5, 100.0, 50);
        let fhmm = Fhmm::new(vec![train_device_hmm("a", &t, 2)]);
        let meter = PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_MINUTE, 0);
        let estimates = fhmm.disaggregate(&meter);
        assert_eq!(estimates.len(), 1);
        assert!(estimates[0].trace.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_device_set_rejected() {
        Fhmm::new(vec![]);
    }

    #[test]
    fn flat_chain_matches_nested_table() {
        let t = square_wave(30, 10, 500.0, 300);
        let dev = train_device_hmm("d", &t, 3);
        let chain = FlatChain::from_hmm(&dev);
        for from in 0..dev.n_states() {
            for to in 0..dev.n_states() {
                assert_eq!(
                    chain.log_trans_t[to * chain.k + from],
                    dev.log_trans[from][to]
                );
            }
        }
    }

    #[test]
    fn parallel_residual_fill_matches_serial() {
        let n = PAR_RESIDUAL_MIN + 1_234;
        let xs: Vec<f64> = (0..n).map(|t| (t % 977) as f64).collect();
        let explained: Vec<f64> = (0..n).map(|t| (t % 311) as f64 * 0.5).collect();
        let watts = vec![0.0, 120.0, 950.0];
        let path: Vec<usize> = (0..n).map(|t| t % watts.len()).collect();

        let mut parallel = vec![0.0; n];
        fill_residual(&mut parallel, &xs, &explained, &watts, &path);
        let serial: Vec<f64> = (0..n)
            .map(|t| xs[t] - (explained[t] - watts[path[t]]))
            .collect();
        assert_eq!(parallel, serial);
    }
}
