//! Disaggregation output types and scoring.

use serde::{Deserialize, Serialize};
use timeseries::stats::disaggregation_error;
use timeseries::{PipelineError, PowerTrace, TraceError};

/// One device's estimated power trace, as produced by a disaggregator.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceEstimate {
    /// Device name (matches the catalogue / training data).
    pub name: String,
    /// The estimated per-device power trace, aligned with the input meter
    /// trace.
    pub trace: PowerTrace,
}

/// A NILM attack: explains an aggregate meter trace as per-device traces.
pub trait Disaggregator {
    /// Disaggregates `meter` into one estimate per known device.
    ///
    /// Every returned trace must be aligned with `meter`.
    fn disaggregate(&self, meter: &PowerTrace) -> Vec<DeviceEstimate>;

    /// The checked entry point for possibly-degraded feeds: validates the
    /// input and the per-device alignment contract on the way out.
    ///
    /// # Errors
    ///
    /// [`PipelineError::EmptyInput`] on a zero-length trace,
    /// [`PipelineError::Trace`] when the trace fails validation, and
    /// [`PipelineError::Degenerate`] if any estimate breaks alignment.
    fn try_disaggregate(&self, meter: &PowerTrace) -> Result<Vec<DeviceEstimate>, PipelineError> {
        if meter.is_empty() {
            return Err(PipelineError::EmptyInput {
                stage: "nilm.disaggregate",
            });
        }
        meter.validate()?;
        let estimates = self.disaggregate(meter);
        for e in &estimates {
            if meter.check_aligned(&e.trace).is_err() {
                return Err(PipelineError::Degenerate {
                    stage: "nilm.disaggregate",
                    reason: format!(
                        "{} returned a misaligned estimate for device {}",
                        self.name(),
                        e.name
                    ),
                });
            }
        }
        Ok(estimates)
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &str;
}

/// Per-device disaggregation score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceScore {
    /// Device name.
    pub device: String,
    /// The paper's normalized error factor (0 perfect; 1 equals the
    /// all-zero estimate; may exceed 1).
    pub error_factor: f64,
    /// The device's true energy over the horizon, kWh.
    pub true_kwh: f64,
    /// The estimated energy, kWh.
    pub estimated_kwh: f64,
}

/// Scores estimates against ground truth, pairing by device name. Devices
/// present in `truth` but absent from `estimates` are scored against an
/// all-zero estimate (error factor 1 by definition, when the device used
/// energy).
///
/// # Errors
///
/// Returns an alignment error if any estimate's geometry differs from its
/// ground-truth counterpart.
pub fn evaluate_disaggregation(
    truth: &[(String, PowerTrace)],
    estimates: &[DeviceEstimate],
) -> Result<Vec<DeviceScore>, TraceError> {
    let mut scores = Vec::with_capacity(truth.len());
    for (name, actual) in truth {
        let est = estimates.iter().find(|e| &e.name == name);
        let error_factor = match est {
            Some(e) => {
                actual.check_aligned(&e.trace)?;
                disaggregation_error(actual.samples(), e.trace.samples())
            }
            None => disaggregation_error(actual.samples(), &vec![0.0; actual.len()]),
        };
        scores.push(DeviceScore {
            device: name.clone(),
            error_factor,
            true_kwh: actual.energy_kwh(),
            estimated_kwh: est.map_or(0.0, |e| e.trace.energy_kwh()),
        });
    }
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{Resolution, Timestamp};

    fn trace(samples: Vec<f64>) -> PowerTrace {
        PowerTrace::new(Timestamp::ZERO, Resolution::ONE_MINUTE, samples).unwrap()
    }

    /// A disaggregator that echoes the meter back as one device.
    struct Echo;

    impl Disaggregator for Echo {
        fn disaggregate(&self, meter: &PowerTrace) -> Vec<DeviceEstimate> {
            vec![DeviceEstimate {
                name: "everything".into(),
                trace: meter.clone(),
            }]
        }
        fn name(&self) -> &str {
            "echo"
        }
    }

    #[test]
    fn try_disaggregate_rejects_empty_and_passes_valid() {
        let empty = trace(vec![]);
        assert_eq!(
            Echo.try_disaggregate(&empty),
            Err(PipelineError::EmptyInput {
                stage: "nilm.disaggregate"
            })
        );
        let meter = trace(vec![100.0, 200.0]);
        assert_eq!(Echo.try_disaggregate(&meter).unwrap().len(), 1);
    }

    /// A disaggregator that breaks the alignment contract.
    struct Short;

    impl Disaggregator for Short {
        fn disaggregate(&self, _meter: &PowerTrace) -> Vec<DeviceEstimate> {
            vec![DeviceEstimate {
                name: "stub".into(),
                trace: trace(vec![1.0]),
            }]
        }
        fn name(&self) -> &str {
            "short"
        }
    }

    #[test]
    fn try_disaggregate_catches_misaligned_estimates() {
        let meter = trace(vec![100.0, 200.0, 300.0]);
        match Short.try_disaggregate(&meter) {
            Err(PipelineError::Degenerate { stage, reason }) => {
                assert_eq!(stage, "nilm.disaggregate");
                assert!(reason.contains("stub"));
            }
            other => panic!("expected Degenerate, got {other:?}"),
        }
    }

    #[test]
    fn perfect_estimate_scores_zero() {
        let truth = vec![("toaster".to_string(), trace(vec![0.0, 1_500.0, 0.0]))];
        let est = vec![DeviceEstimate {
            name: "toaster".into(),
            trace: trace(vec![0.0, 1_500.0, 0.0]),
        }];
        let scores = evaluate_disaggregation(&truth, &est).unwrap();
        assert_eq!(scores.len(), 1);
        assert_eq!(scores[0].error_factor, 0.0);
        assert!((scores[0].true_kwh - scores[0].estimated_kwh).abs() < 1e-12);
    }

    #[test]
    fn missing_device_scores_one() {
        let truth = vec![("fridge".to_string(), trace(vec![100.0, 100.0]))];
        let scores = evaluate_disaggregation(&truth, &[]).unwrap();
        assert!((scores[0].error_factor - 1.0).abs() < 1e-12);
        assert_eq!(scores[0].estimated_kwh, 0.0);
    }

    #[test]
    fn misaligned_estimate_rejected() {
        let truth = vec![("x".to_string(), trace(vec![1.0, 2.0]))];
        let est = vec![DeviceEstimate {
            name: "x".into(),
            trace: trace(vec![1.0]),
        }];
        assert!(evaluate_disaggregation(&truth, &est).is_err());
    }

    #[test]
    fn half_error() {
        // Estimate misses half the energy: error factor 0.5.
        let truth = vec![("x".to_string(), trace(vec![1_000.0, 1_000.0]))];
        let est = vec![DeviceEstimate {
            name: "x".into(),
            trace: trace(vec![1_000.0, 0.0]),
        }];
        let scores = evaluate_disaggregation(&truth, &est).unwrap();
        assert!((scores[0].error_factor - 0.5).abs() < 1e-12);
    }
}
