//! PowerPlay: model-driven load tracking via virtual power meters
//! (Barker et al., BuildSys'14).

use crate::estimate::{DeviceEstimate, Disaggregator};
use loads::{
    render_activations, render_always_on, Activation, Catalogue, LoadModel, LoadSignature,
};
use std::sync::Arc;
use timeseries::{EdgeDetector, PowerTrace};

/// Tuning parameters of the PowerPlay tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerPlayConfig {
    /// Minimum aggregate step (watts) considered an event.
    pub edge_threshold_watts: f64,
    /// Relative tolerance when matching a residual step to a device's
    /// expected step.
    pub match_tolerance: f64,
    /// Samples averaged on each side of a candidate edge; >1 suppresses
    /// meter-noise steps at the cost of temporal sharpness.
    pub settle_samples: usize,
    /// Minimum match score in `(0, 1]` required to claim an edge; raising
    /// it rejects marginal (usually noise-born) matches.
    pub min_match_score: f64,
}

impl Default for PowerPlayConfig {
    fn default() -> Self {
        PowerPlayConfig {
            edge_threshold_watts: 60.0,
            match_tolerance: 0.18,
            settle_samples: 1,
            min_match_score: 0.35,
        }
    }
}

/// One device the tracker knows a priori.
#[derive(Debug, Clone)]
struct TrackedDevice {
    name: String,
    /// The model replayed by this device's virtual power meter while the
    /// device is claimed on. For cyclical loads this is the *inner element*
    /// — each compressor on-phase is claimed separately, which re-anchors
    /// the cycle at every observed edge instead of replaying blind.
    playback: Arc<dyn LoadModel>,
    signature: LoadSignature,
    /// Claimed on at trace start and never turned off (continuous loads
    /// such as ventilation, which produce no edges to claim).
    assumed_always_on: bool,
}

/// The PowerPlay tracker: holds the a-priori device models and explains an
/// aggregate trace by claiming its step edges for devices, then letting
/// each claimed device's *virtual power meter* replay its model.
///
/// Claimed playback (rather than copying measured power) is what makes
/// PowerPlay "more robust to noisy smart meter data" than learned
/// approaches — the virtual meter output never contains meter noise.
///
/// Claims are anchored at sub-sample precision: the fraction of the first
/// meter sample covered by the observed step recovers where inside the
/// sample the device actually switched, so multi-phase playback (a dryer's
/// cycling element) stays aligned with reality.
#[derive(Debug, Clone)]
pub struct PowerPlay {
    devices: Vec<TrackedDevice>,
    config: PowerPlayConfig,
}

/// Internal: a device currently claimed on.
#[derive(Debug, Clone, Copy)]
struct OnState {
    /// Switch-on time in (fractional) seconds since trace start.
    start_secs: f64,
}

impl PowerPlay {
    /// Builds a tracker for every appliance in `catalogue` with default
    /// tuning.
    pub fn from_catalogue(catalogue: &Catalogue) -> Self {
        PowerPlay::with_config(catalogue, PowerPlayConfig::default())
    }

    /// Builds a tracker with explicit tuning.
    pub fn with_config(catalogue: &Catalogue, config: PowerPlayConfig) -> Self {
        let devices = catalogue
            .iter()
            .map(|a| {
                let playback: Arc<dyn LoadModel> = match a.signature().cyclical_element() {
                    Some(element) => Arc::new(element),
                    None => a.model().clone(),
                };
                TrackedDevice {
                    name: a.name().to_string(),
                    playback,
                    signature: a.signature().clone(),
                    assumed_always_on: a.signature().cycle_period_secs.is_none()
                        && a.signature().duration_bounds_secs.1 > 86_400 * 365,
                }
            })
            .collect();
        PowerPlay { devices, config }
    }

    /// Number of tracked devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The model-predicted average power of an on-device over meter sample
    /// `t`, given its fractional switch-on time.
    fn predicted_power(dev: &TrackedDevice, state: OnState, t: usize, res: f64) -> f64 {
        let from = t as f64 * res - state.start_secs;
        dev.playback.average_power(from.max(-res), from + res)
    }

    /// The range of plausible observed on-steps for a device. The
    /// observable step depends on where inside a meter sample the device
    /// started: a boundary-aligned start shows the full first-sample
    /// average (steady + averaged in-rush) while a mid-sample start shows
    /// close to the steady level.
    fn expected_on_range(dev: &TrackedDevice, res: f64) -> (f64, f64) {
        let steady = dev.signature.on_delta_watts;
        let with_spike = dev.playback.average_power(0.0, res);
        if steady <= with_spike {
            (steady, with_spike)
        } else {
            (with_spike, steady)
        }
    }

    /// Scores an observed step against a plausible range: 1 inside the
    /// range, falling off linearly with relative distance outside it.
    fn range_score(&self, delta: f64, lo: f64, hi: f64) -> f64 {
        if lo <= 0.0 {
            return 0.0;
        }
        if (lo..=hi).contains(&delta) {
            return 1.0;
        }
        let (dist, reference) = if delta < lo {
            (lo - delta, lo)
        } else {
            (delta - hi, hi)
        };
        let rel = dist / reference;
        if rel >= self.config.match_tolerance {
            0.0
        } else {
            1.0 - rel / self.config.match_tolerance
        }
    }
}

impl Disaggregator for PowerPlay {
    fn disaggregate(&self, meter: &PowerTrace) -> Vec<DeviceEstimate> {
        let _span = obs::span("nilm.powerplay.disaggregate");
        let res = meter.resolution().as_secs() as f64;
        let samples = meter.samples();
        let edges = EdgeDetector::new(self.config.edge_threshold_watts)
            .with_settle(self.config.settle_samples)
            .detect(meter);
        obs::counter_add("nilm.powerplay.samples", meter.len() as u64);
        obs::counter_add("nilm.powerplay.edges", edges.len() as u64);

        // Claimed activation intervals per device, in fractional seconds
        // since trace start: (start_secs, Option<end_secs>).
        let mut claims: Vec<Vec<(f64, Option<f64>)>> = vec![Vec::new(); self.devices.len()];
        let mut on: Vec<Option<OnState>> = vec![None; self.devices.len()];

        for edge in &edges {
            let i = edge.index;
            // Force-close claims that have exceeded their plausible maximum
            // duration (their off edge was missed), so the device becomes
            // claimable again and stops mispredicting.
            for (d, dev) in self.devices.iter().enumerate() {
                if dev.assumed_always_on {
                    continue;
                }
                if let Some(state) = on[d] {
                    let max_secs = dev.signature.duration_bounds_secs.1 as f64;
                    if i as f64 * res - state.start_secs > max_secs {
                        on[d] = None;
                        claims[d].push((state.start_secs, Some(state.start_secs + max_secs)));
                    }
                }
            }
            // Expected aggregate change at i from devices already claimed on
            // (cycle transitions, composite phase changes, program end).
            let mut predicted = 0.0;
            for (d, dev) in self.devices.iter().enumerate() {
                if dev.assumed_always_on {
                    continue; // constant playback contributes no steps
                }
                if let Some(state) = on[d] {
                    let before = Self::predicted_power(dev, state, i.saturating_sub(1), res);
                    let after = Self::predicted_power(dev, state, edge.post_index, res);
                    predicted += after - before;
                }
            }
            let residual = edge.delta_watts - predicted;
            let first_step = samples[i] - samples[i - 1];

            if residual >= self.config.edge_threshold_watts {
                // Rising: claim the best-matching off device, falling back
                // to the best *pair* of off devices for simultaneous starts
                // (two compressors kicking in within the same sample).
                let off: Vec<usize> = (0..self.devices.len())
                    .filter(|&d| on[d].is_none() && !self.devices[d].assumed_always_on)
                    .collect();
                let mut best: Option<(Vec<usize>, f64)> = None;
                for &d in &off {
                    let (lo, hi) = Self::expected_on_range(&self.devices[d], res);
                    let score = self.range_score(residual, lo, hi);
                    if score >= self.config.min_match_score
                        && best.as_ref().is_none_or(|(_, s)| score > *s)
                    {
                        best = Some((vec![d], score));
                    }
                }
                if best.is_none() {
                    for (a_pos, &d1) in off.iter().enumerate() {
                        for &d2 in &off[a_pos + 1..] {
                            let (lo1, hi1) = Self::expected_on_range(&self.devices[d1], res);
                            let (lo2, hi2) = Self::expected_on_range(&self.devices[d2], res);
                            let score = self.range_score(residual, lo1 + lo2, hi1 + hi2);
                            if score >= self.config.min_match_score
                                && best.as_ref().is_none_or(|(_, s)| score > *s)
                            {
                                best = Some((vec![d1, d2], score));
                            }
                        }
                    }
                }
                if let Some((claimed, _)) = best {
                    // Verify the step is sustained one sample past the
                    // transition — single-sample meter-noise blips rise and
                    // immediately collapse, real devices keep drawing.
                    let expected_level: f64 = claimed
                        .iter()
                        .map(|&d| self.devices[d].signature.on_delta_watts)
                        .sum();
                    let sustained = match samples.get(edge.post_index + 1) {
                        Some(&next) => next - samples[i - 1] >= 0.4 * expected_level,
                        None => true, // transition at trace end: accept
                    };
                    if sustained {
                        // Sub-sample anchor: the first sample's partial rise
                        // tells us how far into the sample the device started.
                        let frac = if edge.delta_watts > 0.0 {
                            (1.0 - first_step / edge.delta_watts).clamp(0.0, 0.99)
                        } else {
                            0.0
                        };
                        for &d in &claimed {
                            on[d] = Some(OnState {
                                start_secs: (i as f64 + frac) * res,
                            });
                        }
                    }
                }
            } else if residual <= -self.config.edge_threshold_watts {
                // Falling: release the best-matching on device whose model
                // says it is currently drawing about that much.
                let drop = -residual;
                // Devices eligible for release: claimed on, past their
                // minimum plausible run length (a dryer cannot stop during
                // an early element-off window), and currently drawing.
                let eligible: Vec<(usize, f64)> = self
                    .devices
                    .iter()
                    .enumerate()
                    .filter_map(|(d, dev)| {
                        let state = on[d]?;
                        if dev.assumed_always_on {
                            return None;
                        }
                        let elapsed = i as f64 * res - state.start_secs;
                        if elapsed < dev.signature.duration_bounds_secs.0 as f64 {
                            return None;
                        }
                        let current = Self::predicted_power(dev, state, i.saturating_sub(1), res);
                        (current > 0.0).then_some((d, current))
                    })
                    .collect();
                let mut best: Option<(Vec<usize>, f64, f64)> = None;
                for &(d, current) in &eligible {
                    let score = self.range_score(drop, current, current);
                    if score >= self.config.min_match_score
                        && best.as_ref().is_none_or(|(_, s, _)| score > *s)
                    {
                        best = Some((vec![d], score, current));
                    }
                }
                if best.is_none() {
                    for (a_pos, &(d1, c1)) in eligible.iter().enumerate() {
                        for &(d2, c2) in &eligible[a_pos + 1..] {
                            let score = self.range_score(drop, c1 + c2, c1 + c2);
                            if score >= self.config.min_match_score
                                && best.as_ref().is_none_or(|(_, s, _)| score > *s)
                            {
                                best = Some((vec![d1, d2], score, c1 + c2));
                            }
                        }
                    }
                }
                if let Some((released, _, current)) = best {
                    // Verify the drop is sustained one sample past the
                    // transition before releasing the device(s).
                    let sustained = match samples.get(edge.post_index + 1) {
                        Some(&next) => samples[i - 1] - next >= 0.4 * current,
                        None => true,
                    };
                    if sustained {
                        for &d in &released {
                            let state = on[d].take().expect("selected from on devices");
                            // Sub-sample end anchor from the partial fall.
                            let frac = if current > 0.0 {
                                (1.0 + first_step / current).clamp(0.0, 1.0)
                            } else {
                                0.0
                            };
                            claims[d].push((state.start_secs, Some((i as f64 + frac) * res)));
                        }
                    }
                }
            }
        }

        // Close out still-on devices at the trace end.
        let trace_end = meter.len() as f64 * res;
        for (d, state) in on.iter().enumerate() {
            if let Some(state) = state {
                claims[d].push((state.start_secs, None));
            }
        }

        // Build per-device claimed activations.
        let mut device_acts: Vec<Vec<Activation>> = Vec::with_capacity(self.devices.len());
        for (d, dev) in self.devices.iter().enumerate() {
            if dev.assumed_always_on {
                device_acts.push(Vec::new());
                continue;
            }
            let max_secs = dev.signature.duration_bounds_secs.1;
            device_acts.push(
                claims[d]
                    .iter()
                    .filter_map(|&(start_secs, end_secs)| {
                        let end_secs = end_secs.unwrap_or(trace_end);
                        if end_secs <= start_secs {
                            return None;
                        }
                        let dur = ((end_secs - start_secs).round() as u64).clamp(1, max_secs);
                        let start = meter.start() + start_secs.round().max(0.0) as u64;
                        Some(Activation::new(start, dur))
                    })
                    .collect(),
            );
        }

        // Render each device's virtual meter.
        let render = |d: usize, acts: &[Activation]| -> PowerTrace {
            let dev = &self.devices[d];
            if dev.assumed_always_on {
                render_always_on(
                    dev.playback.as_ref(),
                    meter.start(),
                    meter.resolution(),
                    meter.len(),
                )
            } else {
                render_activations(
                    dev.playback.as_ref(),
                    acts,
                    meter.start(),
                    meter.resolution(),
                    meter.len(),
                )
            }
        };
        let mut traces: Vec<PowerTrace> = (0..self.devices.len())
            .map(|d| render(d, &device_acts[d]))
            .collect();

        // Global validation pass: drop claims the meter does not support.
        // With every claim rendered, the meter minus everything *else*
        // should still show this device's power during each of its claimed
        // intervals; meter-noise-born claims fail this test because nothing
        // real underlies them.
        let mut explained = vec![0.0f64; meter.len()];
        for tr in &traces {
            for (e, w) in explained.iter_mut().zip(tr.samples()) {
                *e += w;
            }
        }
        for d in 0..self.devices.len() {
            if self.devices[d].assumed_always_on || device_acts[d].is_empty() {
                continue;
            }
            let own = traces[d].samples().to_vec();
            let kept: Vec<Activation> = device_acts[d]
                .iter()
                .copied()
                .filter(|act| {
                    let lo = meter.index_of(act.start).unwrap_or(0);
                    let hi = meter
                        .index_of(act.end())
                        .unwrap_or(meter.len())
                        .min(meter.len());
                    if hi <= lo {
                        return true;
                    }
                    let mut residual = 0.0;
                    let mut claimed_power = 0.0;
                    for t in lo..hi {
                        residual += samples[t] - (explained[t] - own[t]);
                        claimed_power += own[t];
                    }
                    if residual < 0.5 * claimed_power {
                        return false;
                    }
                    // If the unexplained level *persists* past the claim's
                    // end — no drop of about the device's draw at the
                    // boundary — the claim was a look-alike for some
                    // unmodelled load (e.g. a dishwasher heater claimed as
                    // a toaster until the toaster's maximum run length
                    // expired). Compare residual levels just before and
                    // just after the end so unmodelled *background* (which
                    // raises both) cancels out.
                    if hi + 3 <= meter.len() && hi >= lo + 2 {
                        // The drop to expect at the boundary is whatever the
                        // *model* was drawing at the claim's end (a dryer
                        // ends on its 300 W motor, not its 5.3 kW peak).
                        let expected_drop = (own[hi - 2] + own[hi - 1]) / 2.0;
                        let during: f64 = (hi - 2..hi)
                            .map(|t| samples[t] - (explained[t] - own[t]))
                            .sum::<f64>()
                            / 2.0;
                        let after: f64 =
                            (hi..hi + 3).map(|t| samples[t] - explained[t]).sum::<f64>() / 3.0;
                        if during - after < 0.5 * expected_drop {
                            return false;
                        }
                    }
                    true
                })
                .collect();
            if kept.len() != device_acts[d].len() {
                let new_trace = render(d, &kept);
                for t in 0..meter.len() {
                    explained[t] += new_trace.watts(t) - own[t];
                }
                traces[d] = new_trace;
                device_acts[d] = kept;
            }
        }

        // Repair pass: when two devices transition within the same meter
        // sample (cycle collisions), the edge matcher can miss a whole
        // on-phase. Sustained unexplained residual betrays those misses;
        // claim the best-fitting idle device for each residual run.
        for _ in 0..2 {
            let mut repaired = false;
            let residual: Vec<f64> = (0..meter.len())
                .map(|t| samples[t] - explained[t])
                .collect();
            let mut t = 0;
            while t < meter.len() {
                if residual[t] < self.config.edge_threshold_watts {
                    t += 1;
                    continue;
                }
                let lo = t;
                while t < meter.len() && residual[t] >= self.config.edge_threshold_watts {
                    t += 1;
                }
                let hi = t;
                if hi - lo < 3 {
                    continue;
                }
                let run_secs = (hi - lo) as f64 * res;
                let run_mean = residual[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
                let mut best: Option<(usize, f64)> = None;
                for (d, dev) in self.devices.iter().enumerate() {
                    if dev.assumed_always_on {
                        continue;
                    }
                    let (min_s, max_s) = dev.signature.duration_bounds_secs;
                    if run_secs < min_s as f64 * 0.5 || run_secs > max_s as f64 * 1.5 {
                        continue;
                    }
                    // Device must be idle throughout the run.
                    let run_start = meter.timestamp(lo);
                    let run_end = meter.timestamp(hi.min(meter.len() - 1));
                    let busy = device_acts[d]
                        .iter()
                        .any(|a| a.start < run_end + res as u64 && run_start < a.end());
                    if busy {
                        continue;
                    }
                    let steady = dev.signature.on_delta_watts;
                    if steady <= 0.0 {
                        continue;
                    }
                    let rel = (run_mean - steady).abs() / steady;
                    if rel < self.config.match_tolerance {
                        let score = 1.0 - rel / self.config.match_tolerance;
                        if best.is_none_or(|(_, s)| score > s) {
                            best = Some((d, score));
                        }
                    }
                }
                if let Some((d, _)) = best {
                    let act = Activation::new(meter.timestamp(lo), run_secs as u64);
                    device_acts[d].push(act);
                    device_acts[d].sort_by_key(|a| a.start);
                    let new_trace = render(d, &device_acts[d]);
                    for (tt, e) in explained.iter_mut().enumerate() {
                        *e += new_trace.watts(tt) - traces[d].watts(tt);
                    }
                    traces[d] = new_trace;
                    repaired = true;
                }
            }
            if !repaired {
                break;
            }
        }

        self.devices
            .iter()
            .zip(traces)
            .map(|(dev, trace)| DeviceEstimate {
                name: dev.name.clone(),
                trace,
            })
            .collect()
    }

    fn name(&self) -> &str {
        "powerplay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::evaluate_disaggregation;
    use loads::Appliance;
    use timeseries::{Resolution, Timestamp};

    fn single_device_home(appliance: &Appliance, acts: &[Activation], len: usize) -> PowerTrace {
        render_activations(
            appliance.model().as_ref(),
            acts,
            Timestamp::ZERO,
            Resolution::ONE_MINUTE,
            len,
        )
    }

    #[test]
    fn tracks_single_toaster() {
        let toaster = Appliance::toaster();
        let acts = vec![Activation::new(Timestamp::from_secs(600), 240)];
        let meter = single_device_home(&toaster, &acts, 60);
        let cat: Catalogue = [Appliance::toaster()].into_iter().collect();
        let estimates = PowerPlay::from_catalogue(&cat).disaggregate(&meter);
        let truth = vec![("toaster".to_string(), meter.clone())];
        let scores = evaluate_disaggregation(&truth, &estimates).unwrap();
        assert!(
            scores[0].error_factor < 0.05,
            "error {}",
            scores[0].error_factor
        );
    }

    #[test]
    fn anchors_misaligned_toaster() {
        // Activation starting 37 s into a minute: sub-sample anchoring keeps
        // the playback aligned.
        let toaster = Appliance::toaster();
        let acts = vec![Activation::new(Timestamp::from_secs(637), 240)];
        let meter = single_device_home(&toaster, &acts, 60);
        let cat: Catalogue = [Appliance::toaster()].into_iter().collect();
        let estimates = PowerPlay::from_catalogue(&cat).disaggregate(&meter);
        let truth = vec![("toaster".to_string(), meter.clone())];
        let scores = evaluate_disaggregation(&truth, &estimates).unwrap();
        assert!(
            scores[0].error_factor < 0.1,
            "error {}",
            scores[0].error_factor
        );
    }

    #[test]
    fn tracks_fridge_cycles() {
        let fridge = Appliance::fridge();
        let meter = render_always_on(
            fridge.model().as_ref(),
            Timestamp::ZERO,
            Resolution::ONE_MINUTE,
            480,
        );
        let cat: Catalogue = [Appliance::fridge()].into_iter().collect();
        let estimates = PowerPlay::from_catalogue(&cat).disaggregate(&meter);
        let truth = vec![("fridge".to_string(), meter.clone())];
        let scores = evaluate_disaggregation(&truth, &estimates).unwrap();
        assert!(
            scores[0].error_factor < 0.15,
            "error {}",
            scores[0].error_factor
        );
    }

    #[test]
    fn hrv_assumed_always_on() {
        let hrv = Appliance::hrv();
        let meter = render_always_on(
            hrv.model().as_ref(),
            Timestamp::ZERO,
            Resolution::ONE_MINUTE,
            240,
        );
        let cat: Catalogue = [Appliance::hrv()].into_iter().collect();
        let estimates = PowerPlay::from_catalogue(&cat).disaggregate(&meter);
        let truth = vec![("hrv".to_string(), meter.clone())];
        let scores = evaluate_disaggregation(&truth, &estimates).unwrap();
        assert!(
            scores[0].error_factor < 0.02,
            "error {}",
            scores[0].error_factor
        );
    }

    #[test]
    fn separates_toaster_from_fridge() {
        let toaster = Appliance::toaster();
        let fridge = Appliance::fridge();
        let len = 480;
        let toaster_truth = single_device_home(
            &toaster,
            &[Activation::new(Timestamp::from_secs(7_200), 300)],
            len,
        );
        let fridge_truth = render_always_on(
            fridge.model().as_ref(),
            Timestamp::ZERO,
            Resolution::ONE_MINUTE,
            len,
        );
        let meter = toaster_truth.checked_add(&fridge_truth).unwrap();
        let cat = Catalogue::from_iter([Appliance::toaster(), Appliance::fridge()]);
        let estimates = PowerPlay::from_catalogue(&cat).disaggregate(&meter);
        let truth = vec![
            ("toaster".to_string(), toaster_truth),
            ("fridge".to_string(), fridge_truth),
        ];
        let scores = evaluate_disaggregation(&truth, &estimates).unwrap();
        for s in &scores {
            assert!(
                s.error_factor < 0.2,
                "{}: error {}",
                s.device,
                s.error_factor
            );
        }
    }

    #[test]
    fn tracks_dryer_program() {
        let dryer = Appliance::dryer();
        let acts = vec![Activation::new(Timestamp::from_secs(3_600 + 23), 2_700)];
        let meter = single_device_home(&dryer, &acts, 240);
        let cat: Catalogue = [Appliance::dryer()].into_iter().collect();
        let estimates = PowerPlay::from_catalogue(&cat).disaggregate(&meter);
        let truth = vec![("dryer".to_string(), meter.clone())];
        let scores = evaluate_disaggregation(&truth, &estimates).unwrap();
        assert!(
            scores[0].error_factor < 0.1,
            "error {}",
            scores[0].error_factor
        );
    }

    #[test]
    fn empty_meter_yields_empty_estimates() {
        let cat = Catalogue::figure2();
        let meter = PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_MINUTE, 0);
        let estimates = PowerPlay::from_catalogue(&cat).disaggregate(&meter);
        assert_eq!(estimates.len(), 5);
        assert!(estimates.iter().all(|e| e.trace.is_empty()));
    }

    #[test]
    fn quiet_meter_claims_nothing_interactive() {
        let cat = Catalogue::from_iter([Appliance::toaster(), Appliance::dryer()]);
        let meter = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 240, 10.0);
        let estimates = PowerPlay::from_catalogue(&cat).disaggregate(&meter);
        for e in &estimates {
            assert_eq!(e.trace.energy_kwh(), 0.0, "{} phantom energy", e.name);
        }
    }

    #[test]
    fn device_count() {
        assert_eq!(
            PowerPlay::from_catalogue(&Catalogue::figure2()).device_count(),
            5
        );
    }
}
