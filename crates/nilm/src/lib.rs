//! Non-Intrusive Load Monitoring (NILM): disaggregating a home's total
//! power into per-appliance usage.
//!
//! Two disaggregators reproduce the comparison of the paper's Figure 2:
//!
//! * [`PowerPlay`] — the paper's model-driven tracker. Detailed load models
//!   are known *a priori*; the tracker claims step edges in the aggregate
//!   for specific devices and then lets each claimed device's **virtual
//!   power meter** play its model forward in time. Because the playback is
//!   the model (not the noisy meter), PowerPlay is robust to meter noise.
//! * [`Fhmm`] — the conventional baseline: a Factorial Hidden Markov Model
//!   (Kolter & Johnson's REDD formulation). Per-device HMMs are *learned
//!   from sub-metered training data*, then joint inference (exact factorial
//!   Viterbi for small state spaces, iterated conditional modes for large)
//!   explains the aggregate.
//!
//! Both implement [`Disaggregator`]; [`evaluate_disaggregation`] computes
//! the paper's normalized *disaggregation error factor* per device (0 =
//! perfect, 1 = as bad as predicting zero).
//!
//! # Examples
//!
//! ```
//! use homesim::{Home, HomeConfig};
//! use loads::Catalogue;
//! use nilm::{Disaggregator, PowerPlay};
//!
//! let catalogue = Catalogue::figure2();
//! let home = Home::simulate(&HomeConfig::new(2).days(2).catalogue(catalogue.clone()));
//! let tracker = PowerPlay::from_catalogue(&catalogue);
//! let estimates = tracker.disaggregate(&home.meter);
//! assert_eq!(estimates.len(), 5);
//! ```

pub mod estimate;
pub mod events;
pub mod fhmm;
pub mod hart;
pub mod powerplay;
pub mod train;

pub use estimate::{evaluate_disaggregation, DeviceEstimate, DeviceScore, Disaggregator};
pub use events::{extract_events, profile, UsageEvent, UsageProfile};
pub use fhmm::{
    with_thread_arena, DecodeArena, DecodePrecision, Fhmm, FhmmBatchFilter, FhmmConfig, FhmmFilter,
};
pub use hart::HartNilm;
pub use powerplay::{PowerPlay, PowerPlayConfig};
pub use train::{train_device_hmm, DeviceHmm};
