//! Behavioural event extraction from disaggregated traces.
//!
//! Disaggregation is only the first half of the paper's privacy argument;
//! the second half is what the per-device traces *say about people*:
//! "What days of the week do the users do their laundry? Do they watch a
//! lot of TV? What time do the occupants go to bed?" This module turns a
//! [`DeviceEstimate`] into those statements.

use crate::estimate::DeviceEstimate;
use serde::{Deserialize, Serialize};
use timeseries::{PowerTrace, Timestamp};

/// One inferred usage event of a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UsageEvent {
    /// When the device turned on.
    pub start: Timestamp,
    /// How long it ran, seconds.
    pub duration_secs: u64,
    /// Energy used during the event, kWh.
    pub kwh: f64,
}

/// A behavioural summary of one device over the analyzed horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageProfile {
    /// Device name.
    pub device: String,
    /// All inferred events, in time order.
    pub events: Vec<UsageEvent>,
    /// Days (indices) on which the device ran at all.
    pub active_days: Vec<u64>,
    /// The most common start hour of day (`None` if no events).
    pub modal_start_hour: Option<u64>,
}

impl UsageProfile {
    /// Events per analyzed day.
    pub fn events_per_day(&self, days: u64) -> f64 {
        if days == 0 {
            0.0
        } else {
            self.events.len() as f64 / days as f64
        }
    }
}

/// Extracts usage events from an estimated device trace: maximal runs
/// where the device draws at least `min_watts`.
pub fn extract_events(trace: &PowerTrace, min_watts: f64) -> Vec<UsageEvent> {
    let res = trace.resolution().as_secs() as u64;
    let mut events = Vec::new();
    let mut i = 0;
    let s = trace.samples();
    while i < s.len() {
        if s[i] < min_watts {
            i += 1;
            continue;
        }
        let start_idx = i;
        let mut kwh = 0.0;
        while i < s.len() && s[i] >= min_watts {
            kwh += s[i] * trace.resolution().as_hours() / 1_000.0;
            i += 1;
        }
        events.push(UsageEvent {
            start: trace.timestamp(start_idx),
            duration_secs: (i - start_idx) as u64 * res,
            kwh,
        });
    }
    events
}

/// Builds the behavioural profile the paper's intro warns about.
pub fn profile(estimate: &DeviceEstimate, min_watts: f64) -> UsageProfile {
    let events = extract_events(&estimate.trace, min_watts);
    let mut active_days: Vec<u64> = events.iter().map(|e| e.start.day()).collect();
    active_days.sort_unstable();
    active_days.dedup();
    let modal_start_hour = {
        let mut counts = [0u32; 24];
        for e in &events {
            counts[e.start.hour_of_day() as usize] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .filter(|&(_, &c)| c > 0)
            .map(|(h, _)| h as u64)
    };
    UsageProfile {
        device: estimate.name.clone(),
        events,
        active_days,
        modal_start_hour,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::Resolution;

    fn estimate(samples: Vec<f64>) -> DeviceEstimate {
        DeviceEstimate {
            name: "toaster".into(),
            trace: PowerTrace::new(Timestamp::ZERO, Resolution::ONE_MINUTE, samples).unwrap(),
        }
    }

    #[test]
    fn extracts_separated_events() {
        let mut samples = vec![0.0; 1440 * 2];
        // Two events on day 0, one on day 1, all at 07:xx.
        samples[420..424].fill(1_500.0);
        samples[470..473].fill(1_500.0);
        samples[1440 + 430..1440 + 435].fill(1_500.0);
        let est = estimate(samples);
        let p = profile(&est, 100.0);
        assert_eq!(p.events.len(), 3);
        assert_eq!(p.active_days, vec![0, 1]);
        assert_eq!(p.modal_start_hour, Some(7));
        assert!((p.events_per_day(2) - 1.5).abs() < 1e-12);
        assert_eq!(p.events[0].duration_secs, 240);
        assert!((p.events[0].kwh - 1.5 * 4.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn quiet_trace_has_no_events() {
        let p = profile(&estimate(vec![10.0; 100]), 100.0);
        assert!(p.events.is_empty());
        assert!(p.active_days.is_empty());
        assert_eq!(p.modal_start_hour, None);
        assert_eq!(p.events_per_day(0), 0.0);
    }

    #[test]
    fn adjacent_samples_form_one_event() {
        let mut samples = vec![0.0; 60];
        samples[10..20].fill(500.0);
        let events = extract_events(&estimate(samples).trace, 100.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].duration_secs, 600);
    }
}
