use homesim::{Home, HomeConfig, SmartMeter};
use loads::Catalogue;
use nilm::{evaluate_disaggregation, train_device_hmm, Disaggregator, Fhmm, PowerPlay};
use timeseries::Resolution;

#[test]
#[ignore]
fn probe() {
    // Homes run the FULL standard catalogue ("all circuits"); only the five
    // Figure-2 devices are tracked.
    let tracked = Catalogue::figure2();
    let train_home = Home::simulate(
        &HomeConfig::new(100)
            .days(7)
            .meter(SmartMeter::new(Resolution::ONE_MINUTE, 10.0)),
    );
    let test_home = Home::simulate(
        &HomeConfig::new(200)
            .days(7)
            .meter(SmartMeter::new(Resolution::ONE_MINUTE, 10.0)),
    );

    let pp = PowerPlay::from_catalogue(&tracked);
    let states = |name: &str| -> usize {
        match name {
            "dryer" => 5,
            _ => 2,
        }
    };
    let mut models: Vec<_> = tracked
        .iter()
        .map(|a| {
            let d = train_home.device(a.name()).unwrap();
            train_device_hmm(&d.name, &d.trace, states(&d.name))
        })
        .collect();
    // "Other" chain absorbing untracked circuits (standard FHMM practice).
    let mut other = train_home.meter.clone();
    for a in tracked.iter() {
        other = other
            .checked_sub(&train_home.device(a.name()).unwrap().trace)
            .unwrap();
    }
    models.push(train_device_hmm("other", &other.clamp_non_negative(), 6));
    let fhmm = Fhmm::new(models);
    eprintln!("joint states: {}", fhmm.joint_states());

    let truth: Vec<_> = tracked
        .iter()
        .map(|a| {
            let d = test_home.device(a.name()).unwrap();
            (d.name.clone(), d.trace.clone())
        })
        .collect();
    for (label, est) in [
        ("powerplay", pp.disaggregate(&test_home.meter)),
        ("fhmm", fhmm.disaggregate(&test_home.meter)),
    ] {
        let scores = evaluate_disaggregation(&truth, &est).unwrap();
        for s in scores {
            eprintln!(
                "{label:10} {:10} err {:.3} true {:.2} kWh est {:.2} kWh",
                s.device, s.error_factor, s.true_kwh, s.estimated_kwh
            );
        }
    }
}
