//! Property tests of the multi-home batched decode kernels.
//!
//! The batching contract says: for any number of lanes, any batch
//! grouping, and any finite input watts — model-matched or not — the
//! batched f64 kernels return byte-identical paths to the single-home
//! decoder, ragged lane lengths included (lanes are grouped by length
//! internally). The f32 fast path keeps the same batch-vs-single
//! identity at its own precision and stays inside the disagreement band
//! pinned by the `accuracy.f32-decode-close` claim.

use std::sync::OnceLock;

use nilm::{train_device_hmm, DecodeArena, DecodePrecision, Fhmm, FhmmConfig};
use proptest::prelude::*;
use timeseries::rng::{normal, seeded_rng};
use timeseries::{PowerTrace, Resolution, Timestamp};

fn square_wave(period: usize, on: usize, watts: f64, len: usize) -> PowerTrace {
    PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, len, |i| {
        if i % period < on {
            watts
        } else {
            0.0
        }
    })
}

/// Two trained two-state devices (4 joint states) — small enough that a
/// proptest case decodes in microseconds, large enough to exercise the
/// joint tables.
fn devices() -> Vec<nilm::DeviceHmm> {
    vec![
        train_device_hmm("a", &square_wave(40, 15, 150.0, 600), 2),
        train_device_hmm("b", &square_wave(90, 30, 1_000.0, 600), 2),
    ]
}

fn exact_fhmm() -> &'static Fhmm {
    static MODEL: OnceLock<Fhmm> = OnceLock::new();
    MODEL.get_or_init(|| Fhmm::new(devices()))
}

fn icm_fhmm() -> &'static Fhmm {
    static MODEL: OnceLock<Fhmm> = OnceLock::new();
    MODEL.get_or_init(|| {
        Fhmm::with_config(
            devices(),
            FhmmConfig {
                max_exact_states: 1,
                ..FhmmConfig::default()
            },
        )
    })
}

fn f32_fhmm() -> &'static Fhmm {
    static MODEL: OnceLock<Fhmm> = OnceLock::new();
    MODEL.get_or_init(|| {
        Fhmm::with_config(
            devices(),
            FhmmConfig {
                precision: DecodePrecision::F32,
                ..FhmmConfig::default()
            },
        )
    })
}

fn traces(xs: &[Vec<f64>]) -> Vec<PowerTrace> {
    xs.iter()
        .map(|x| PowerTrace::new(Timestamp::ZERO, Resolution::ONE_MINUTE, x.clone()).unwrap())
        .collect()
}

/// Asserts batched decode == per-meter single decode, paths and estimates.
fn assert_batch_identical(fhmm: &Fhmm, meters: &[PowerTrace]) {
    let refs: Vec<&PowerTrace> = meters.iter().collect();
    let mut arena = DecodeArena::new();
    let batched = fhmm.decode_batch(&refs, &mut arena);
    assert_eq!(batched.len(), meters.len());
    for (m, got) in meters.iter().zip(&batched) {
        let solo = fhmm.decode(m, &mut arena);
        assert_eq!(got, &solo);
    }
    let estimates = fhmm.disaggregate_batch(&refs, &mut arena);
    for (m, got) in meters.iter().zip(&estimates) {
        let solo = fhmm.disaggregate_with(m, &mut arena);
        assert_eq!(got, &solo);
    }
}

proptest! {
    /// Exact Viterbi: any lane count, ragged lengths, arbitrary watts.
    #[test]
    fn batched_exact_identical_to_single(
        xs in prop::collection::vec(
            prop::collection::vec(0.0f64..3_000.0, 1..80), 1..7),
    ) {
        assert_batch_identical(exact_fhmm(), &traces(&xs));
    }

    /// ICM fallback: the batched Gauss-Seidel sweep replicates the serial
    /// single-home sweep lane by lane.
    #[test]
    fn batched_icm_identical_to_single(
        xs in prop::collection::vec(
            prop::collection::vec(0.0f64..3_000.0, 1..40), 1..5),
    ) {
        assert_batch_identical(icm_fhmm(), &traces(&xs));
    }

    /// The batch-vs-single identity holds at f32 precision too: the fast
    /// path may disagree with f64, never with its own single-home form.
    #[test]
    fn batched_f32_identical_to_single_f32(
        xs in prop::collection::vec(
            prop::collection::vec(0.0f64..3_000.0, 1..80), 1..7),
    ) {
        assert_batch_identical(f32_fhmm(), &traces(&xs));
    }

    /// Equal-length lanes decoded as one group must equal the same lanes
    /// decoded through any batch split (ragged last batch included) —
    /// this is what lets the fleet layer pick its shard size freely.
    #[test]
    fn batch_split_invariant(
        xs in prop::collection::vec(
            prop::collection::vec(0.0f64..3_000.0, 30..31), 1..9),
        batch in 1usize..10,
    ) {
        let meters = traces(&xs);
        let refs: Vec<&PowerTrace> = meters.iter().collect();
        let mut arena = DecodeArena::new();
        let whole = exact_fhmm().decode_batch(&refs, &mut arena);
        let sharded: Vec<_> = refs
            .chunks(batch)
            .flat_map(|shard| exact_fhmm().decode_batch(shard, &mut arena))
            .collect();
        prop_assert_eq!(whole, sharded);
    }
}

/// Ties the f32 fast path to the `accuracy.f32-decode-close` claim band
/// (state disagreement vs f64 < 2%) across 8 seeds of model-matched
/// noisy meters — the same band `check_claims --seeds 8` sweeps.
#[test]
fn f32_disagreement_within_claim_band_across_8_seeds() {
    let f64_model = exact_fhmm();
    let f32_model = f32_fhmm();
    let mut arena = DecodeArena::new();
    let mut total = 0usize;
    let mut disagree = 0usize;
    for seed in 0..8u64 {
        let mut rng = seeded_rng(seed);
        let meter = square_wave(40, 15, 150.0, 400)
            .checked_add(&square_wave(90, 30, 1_000.0, 400))
            .unwrap()
            .map(|w| (w + normal(&mut rng, 0.0, 25.0)).max(0.0));
        let a = f64_model.decode(&meter, &mut arena);
        let b = f32_model.decode(&meter, &mut arena);
        for (pa, pb) in a.iter().zip(&b) {
            total += pa.len();
            disagree += pa.iter().zip(pb).filter(|(x, y)| x != y).count();
        }
    }
    let rate = disagree as f64 / total as f64;
    assert!(
        rate < 0.02,
        "f32 state disagreement rate {rate} breaches the claim band"
    );
}
