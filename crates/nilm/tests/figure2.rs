//! Integration: the Figure 2 comparison — PowerPlay tracks every device
//! with less error than the learned FHMM baseline on a full-home aggregate,
//! with the dryer and HRV tracked near-perfectly.

use homesim::{Home, HomeConfig, SmartMeter};
use loads::Catalogue;
use nilm::{evaluate_disaggregation, train_device_hmm, Disaggregator, Fhmm, PowerPlay};
use timeseries::Resolution;

/// Builds the Figure 2 setup: full-catalogue homes, five tracked devices.
fn figure2_scores() -> (Vec<nilm::DeviceScore>, Vec<nilm::DeviceScore>) {
    let tracked = Catalogue::figure2();
    let train_home = Home::simulate(
        &HomeConfig::new(100)
            .days(3)
            .meter(SmartMeter::new(Resolution::ONE_MINUTE, 10.0)),
    );
    let test_home = Home::simulate(
        &HomeConfig::new(200)
            .days(3)
            .meter(SmartMeter::new(Resolution::ONE_MINUTE, 10.0)),
    );

    let pp = PowerPlay::from_catalogue(&tracked);
    let states = |name: &str| -> usize {
        if name == "dryer" {
            5
        } else {
            2
        }
    };
    let mut models: Vec<_> = tracked
        .iter()
        .map(|a| {
            let d = train_home.device(a.name()).unwrap();
            train_device_hmm(&d.name, &d.trace, states(&d.name))
        })
        .collect();
    let mut other = train_home.meter.clone();
    for a in tracked.iter() {
        other = other
            .checked_sub(&train_home.device(a.name()).unwrap().trace)
            .unwrap();
    }
    models.push(train_device_hmm("other", &other.clamp_non_negative(), 6));
    let fhmm = Fhmm::new(models);

    let truth: Vec<_> = tracked
        .iter()
        .map(|a| {
            let d = test_home.device(a.name()).unwrap();
            (d.name.clone(), d.trace.clone())
        })
        .collect();
    let pp_scores = evaluate_disaggregation(&truth, &pp.disaggregate(&test_home.meter)).unwrap();
    let fhmm_scores =
        evaluate_disaggregation(&truth, &fhmm.disaggregate(&test_home.meter)).unwrap();
    (pp_scores, fhmm_scores)
}

#[test]
fn powerplay_beats_fhmm_on_every_device() {
    let (pp, fhmm) = figure2_scores();
    for (p, f) in pp.iter().zip(&fhmm) {
        assert_eq!(p.device, f.device);
        assert!(
            p.error_factor <= f.error_factor + 0.05,
            "{}: powerplay {:.3} should not exceed fhmm {:.3}",
            p.device,
            p.error_factor,
            f.error_factor
        );
    }
}

#[test]
fn powerplay_tracks_dryer_and_hrv_nearly_perfectly() {
    let (pp, _) = figure2_scores();
    let err = |name: &str| pp.iter().find(|s| s.device == name).unwrap().error_factor;
    assert!(err("dryer") < 0.1, "dryer {}", err("dryer"));
    assert!(err("hrv") < 0.05, "hrv {}", err("hrv"));
}
