//! Whole-home simulation: ties occupancy, activity, loads, and the meter
//! together.

use crate::activity::ActivityModel;
use crate::meter::SmartMeter;
use crate::occupancy::{OccupancyModel, Persona};
use loads::{
    render_activations, render_always_on, Activation, Appliance, ApplianceCategory, Catalogue,
};
use rand::Rng;
use timeseries::rng::{derive_seed, seeded_rng};
use timeseries::{LabelSeries, PowerTrace, Resolution, Timestamp};

/// Configuration of one simulated home.
///
/// The builder-style setters cover everything the experiments vary; the
/// root `seed` makes the whole simulation a pure function of the
/// configuration.
#[derive(Debug, Clone)]
pub struct HomeConfig {
    seed: u64,
    days: u64,
    resolution: Resolution,
    catalogue: Catalogue,
    occupancy: OccupancyModel,
    activity: ActivityModel,
    meter: SmartMeter,
}

impl HomeConfig {
    /// Creates a default configuration: 7 days at one-minute resolution,
    /// the standard catalogue, a worker household, and a mildly noisy
    /// meter.
    pub fn new(seed: u64) -> Self {
        HomeConfig {
            seed,
            days: 7,
            resolution: Resolution::ONE_MINUTE,
            catalogue: Catalogue::standard_shared(),
            occupancy: OccupancyModel::for_persona(Persona::Worker),
            activity: ActivityModel::default(),
            meter: SmartMeter::new(Resolution::ONE_MINUTE, 15.0),
        }
    }

    /// Sets the simulated horizon in days.
    ///
    /// # Panics
    ///
    /// Panics if `days` is zero.
    pub fn days(mut self, days: u64) -> Self {
        assert!(days > 0, "need at least one day");
        self.days = days;
        self
    }

    /// Sets the simulation (ground-truth) resolution.
    pub fn resolution(mut self, resolution: Resolution) -> Self {
        self.resolution = resolution;
        self
    }

    /// Sets the appliance catalogue.
    pub fn catalogue(mut self, catalogue: Catalogue) -> Self {
        self.catalogue = catalogue;
        self
    }

    /// Sets the occupancy model from a persona.
    pub fn persona(mut self, persona: Persona) -> Self {
        self.occupancy = OccupancyModel::for_persona(persona);
        self
    }

    /// Sets a fully custom occupancy model.
    pub fn occupancy(mut self, model: OccupancyModel) -> Self {
        self.occupancy = model;
        self
    }

    /// Sets the activity intensity multiplier (Home-A ≈ 0.6, Home-B ≈ 1.8).
    pub fn intensity(mut self, intensity: f64) -> Self {
        self.activity = ActivityModel::new(intensity);
        self
    }

    /// Sets the smart-meter model.
    pub fn meter(mut self, meter: SmartMeter) -> Self {
        self.meter = meter;
        self
    }

    /// The configured horizon, days.
    pub fn days_configured(&self) -> u64 {
        self.days
    }

    /// The configured simulation resolution.
    pub fn resolution_configured(&self) -> Resolution {
        self.resolution
    }
}

/// Ground truth for one device in a simulated home.
#[derive(Debug, Clone)]
pub struct DeviceTrace {
    /// Appliance name (matches the catalogue).
    pub name: String,
    /// The device's true power trace.
    pub trace: PowerTrace,
    /// The activations that produced it (empty for background devices).
    pub activations: Vec<Activation>,
}

/// A fully simulated home: meter reading plus every piece of ground truth
/// the paper's real deployments had to instrument for.
#[derive(Debug, Clone)]
pub struct Home {
    /// The noisy smart-meter reading (what attacks see).
    pub meter: PowerTrace,
    /// The true noiseless aggregate.
    pub aggregate: PowerTrace,
    /// Per-device ground truth.
    pub devices: Vec<DeviceTrace>,
    /// Ground-truth occupancy.
    pub occupancy: LabelSeries,
}

impl Home {
    /// Runs the simulation described by `config`.
    ///
    /// Deterministic: equal configurations produce equal homes. When the
    /// [`obs`] layer is enabled, records the `homesim.simulate` span and
    /// the `homesim.simulate.{homes,samples}` counters.
    pub fn simulate(config: &HomeConfig) -> Home {
        let _span = obs::span("homesim.simulate");
        let len = config.resolution.samples_in(config.days * 86_400);
        let start = Timestamp::ZERO;

        let mut occ_rng = seeded_rng(derive_seed(config.seed, "occupancy"));
        let occupancy = config
            .occupancy
            .generate(config.days, config.resolution, &mut occ_rng);

        let mut devices = Vec::with_capacity(config.catalogue.len());
        let mut aggregate = PowerTrace::zeros(start, config.resolution, len);

        for appliance in config.catalogue.iter() {
            let mut dev_rng = seeded_rng(derive_seed(
                config.seed,
                &format!("device:{}", appliance.name()),
            ));
            let (trace, activations) = match appliance.category() {
                ApplianceCategory::Background => {
                    let trace = render_background(appliance, start, config.resolution, len, || {
                        dev_rng.gen::<f64>()
                    });
                    (trace, Vec::new())
                }
                ApplianceCategory::Interactive => {
                    let acts =
                        config
                            .activity
                            .sample_appliance(appliance, &occupancy, &mut dev_rng);
                    let trace = render_activations(
                        appliance.model().as_ref(),
                        &acts,
                        start,
                        config.resolution,
                        len,
                    );
                    (trace, acts)
                }
            };
            aggregate
                .checked_add_assign(&trace)
                .expect("device traces share the home geometry");
            devices.push(DeviceTrace {
                name: appliance.name().to_string(),
                trace,
                activations,
            });
        }

        let mut meter_rng = seeded_rng(derive_seed(config.seed, "meter"));
        let meter = config
            .meter
            .read(&aggregate, &mut meter_rng)
            .expect("meter resolution divides simulation resolution");

        // Score ground truth at the meter resolution.
        let occupancy = if occupancy.resolution() == meter.resolution() {
            occupancy
        } else {
            occupancy
                .downsample(meter.resolution())
                .expect("meter resolution divides simulation resolution")
        };

        obs::counter_add("homesim.simulate.homes", 1);
        obs::counter_add("homesim.simulate.samples", meter.len() as u64);
        Home {
            meter,
            aggregate,
            devices,
            occupancy,
        }
    }

    /// Looks up one device's ground truth by name.
    pub fn device(&self, name: &str) -> Option<&DeviceTrace> {
        self.devices.iter().find(|d| d.name == name)
    }

    /// The true aggregate minus all background devices — the interactive
    /// residual whose burstiness NIOM keys on.
    pub fn interactive_aggregate(&self) -> PowerTrace {
        let mut acc = self.aggregate.clone();
        for dev in &self.devices {
            if dev.activations.is_empty() && dev.trace.mean_watts() > 0.0 {
                acc.checked_sub_assign(&dev.trace)
                    .expect("aligned by construction");
            }
        }
        acc.clamp_non_negative()
    }
}

/// Renders a background device always-on. Cyclical loads get a random
/// initial phase and per-cycle duration jitter (±15 %), the way real
/// thermostat-driven compressors respond to door openings and ambient
/// temperature; other background models render as-is.
fn render_background(
    appliance: &Appliance,
    start: Timestamp,
    resolution: Resolution,
    len: usize,
    mut uniform: impl FnMut() -> f64,
) -> PowerTrace {
    let model = appliance.model().clone();
    if let (Some(period), Some(duty)) = (
        appliance.signature().cycle_period_secs,
        appliance.signature().cycle_duty,
    ) {
        let element = appliance
            .signature()
            .cyclical_element()
            .expect("cyclical signature reconstructs its element");
        let span_secs = len as u64 * resolution.as_secs() as u64;
        let mut activations = Vec::new();
        // Random initial phase: start somewhere inside a cycle.
        let mut t = -(uniform() * period);
        let jitter = |u: f64| 0.85 + 0.3 * u;
        while (t as i64) < span_secs as i64 {
            let on_secs = duty * period * jitter(uniform());
            let off_secs = (1.0 - duty) * period * jitter(uniform());
            if t + on_secs > 0.0 {
                let act_start = start + t.max(0.0) as u64;
                let dur = (t + on_secs - t.max(0.0)) as u64;
                if dur > 0 {
                    activations.push(loads::Activation::new(act_start, dur));
                }
            }
            t += on_secs + off_secs;
        }
        return render_activations(&element, &activations, start, resolution, len);
    }
    render_always_on(model.as_ref(), start, resolution, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_shape() {
        let home = Home::simulate(&HomeConfig::new(1).days(2));
        assert_eq!(home.meter.len(), 2 * 1440);
        assert_eq!(home.occupancy.len(), 2 * 1440);
        assert_eq!(home.devices.len(), 13);
        assert!(home.device("fridge").is_some());
        assert!(home.device("nope").is_none());
    }

    #[test]
    fn deterministic() {
        let a = Home::simulate(&HomeConfig::new(7).days(2));
        let b = Home::simulate(&HomeConfig::new(7).days(2));
        assert_eq!(a.meter, b.meter);
        assert_eq!(a.occupancy, b.occupancy);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Home::simulate(&HomeConfig::new(1).days(2));
        let b = Home::simulate(&HomeConfig::new(2).days(2));
        assert_ne!(a.meter, b.meter);
    }

    #[test]
    fn aggregate_is_sum_of_devices() {
        let home = Home::simulate(&HomeConfig::new(3).days(1));
        let mut sum = PowerTrace::zeros(
            home.aggregate.start(),
            home.aggregate.resolution(),
            home.aggregate.len(),
        );
        for d in &home.devices {
            sum = sum.checked_add(&d.trace).unwrap();
        }
        for i in 0..sum.len() {
            assert!((sum.watts(i) - home.aggregate.watts(i)).abs() < 1e-6);
        }
    }

    #[test]
    fn background_runs_while_away() {
        // A vacation home: only background devices drawing power.
        let cfg = HomeConfig::new(4)
            .days(3)
            .occupancy(OccupancyModel::for_persona(Persona::Worker).with_vacation(0, 2));
        let home = Home::simulate(&cfg);
        assert_eq!(home.occupancy.positive_rate(), 0.0);
        // Fridge/freezer/HRV still cycle: nonzero mean power.
        assert!(home.aggregate.mean_watts() > 50.0);
        // But no interactive activations at all.
        for d in &home.devices {
            assert!(d.activations.is_empty(), "{} ran while empty", d.name);
        }
    }

    #[test]
    fn occupied_periods_use_more_power() {
        let home = Home::simulate(&HomeConfig::new(5).days(14).intensity(1.5));
        let aligned = timeseries::aligned(&home.meter, &home.occupancy).unwrap();
        let (on, off) = aligned.partition();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&on) > mean(&off) + 30.0,
            "occupied {:.0} W vs empty {:.0} W",
            mean(&on),
            mean(&off)
        );
    }

    #[test]
    fn interactive_aggregate_strips_background() {
        let home = Home::simulate(&HomeConfig::new(6).days(2));
        let interactive = home.interactive_aggregate();
        // Must be no larger than the total anywhere.
        for i in 0..interactive.len() {
            assert!(interactive.watts(i) <= home.aggregate.watts(i) + 1e-9);
        }
    }

    #[test]
    fn intensity_differentiates_homes() {
        let quiet = Home::simulate(&HomeConfig::new(8).days(7).intensity(0.5));
        let busy = Home::simulate(&HomeConfig::new(8).days(7).intensity(2.0));
        assert!(busy.aggregate.energy_kwh() > quiet.aggregate.energy_kwh());
    }
}
