//! Occupant activity: turning occupancy into appliance activations.
//!
//! The NIOM intuition is that occupants "perform activities that manifest
//! themselves as an increase in the home's total energy usage, its
//! burstiness, or both". This module is that causal link: for each
//! interactive appliance, activations are sampled from the appliance's
//! usage prior *conditioned on someone being home*.

use loads::{Activation, Appliance, ApplianceCategory, UsagePrior};
use rand::Rng;
use serde::{Deserialize, Serialize};
use timeseries::rng::SeededRng;
use timeseries::{LabelSeries, Timestamp};

/// Configuration of the activity sampler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityModel {
    /// Global multiplier on every appliance's `events_per_day` — the knob
    /// that differentiates a quiet Home-A from a busy Home-B.
    pub intensity: f64,
    /// If `true`, an activation may start only when the home is occupied
    /// (devices like dryers keep running after everyone leaves, which this
    /// model permits since only the *start* is gated).
    pub gate_on_occupancy: bool,
}

impl Default for ActivityModel {
    fn default() -> Self {
        ActivityModel {
            intensity: 1.0,
            gate_on_occupancy: true,
        }
    }
}

impl ActivityModel {
    /// Creates an activity model with the given intensity multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is negative or non-finite.
    pub fn new(intensity: f64) -> Self {
        assert!(
            intensity.is_finite() && intensity >= 0.0,
            "intensity must be non-negative"
        );
        ActivityModel {
            intensity,
            ..ActivityModel::default()
        }
    }

    /// Samples the activation schedule for one appliance over the span of
    /// `occupancy` (which defines both the horizon and the gating).
    ///
    /// Returns an empty schedule for background appliances — they are
    /// rendered always-on by the home simulator instead.
    pub fn sample_appliance(
        &self,
        appliance: &Appliance,
        occupancy: &LabelSeries,
        rng: &mut SeededRng,
    ) -> Vec<Activation> {
        if appliance.category() == ApplianceCategory::Background {
            return Vec::new();
        }
        let prior = appliance
            .usage()
            .expect("interactive appliances always carry a usage prior");
        let days = occupancy.len() as u64 * occupancy.resolution().as_secs() as u64 / 86_400;
        let mut activations = Vec::new();
        for day in 0..days {
            let n = sample_poisson(rng, prior.events_per_day * self.intensity);
            for _ in 0..n {
                if let Some(act) = self.sample_event(prior, day, occupancy, rng) {
                    activations.push(act);
                }
            }
        }
        activations.sort_by_key(|a| a.start);
        activations
    }

    /// Samples one activation inside a preferred window on `day`, gated on
    /// occupancy; retries a few times then gives up (e.g. the occupant was
    /// away all window).
    fn sample_event(
        &self,
        prior: &UsagePrior,
        day: u64,
        occupancy: &LabelSeries,
        rng: &mut SeededRng,
    ) -> Option<Activation> {
        for _ in 0..8 {
            let &(ws, we) = &prior.preferred_hours[rng.gen_range(0..prior.preferred_hours.len())];
            let window_secs = (we as u64 - ws as u64) * 3_600;
            let offset = rng.gen_range(0..window_secs);
            let start = Timestamp::from_dhms(day, ws as u64, 0, 0) + offset;
            let duration = rng.gen_range(prior.duration_secs.0..=prior.duration_secs.1);
            if self.gate_on_occupancy {
                match occupancy.at(start) {
                    Some(true) => {}
                    _ => continue,
                }
            } else if occupancy.at(start).is_none() {
                continue; // outside the simulated horizon
            }
            return Some(Activation::new(start, duration));
        }
        None
    }
}

fn sample_poisson(rng: &mut impl Rng, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    let limit = (-mean).exp();
    let mut product: f64 = rng.gen();
    let mut count = 0;
    while product > limit && count < 100 {
        count += 1;
        product *= rng.gen::<f64>();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::rng::seeded_rng;
    use timeseries::Resolution;

    fn all_home(days: usize) -> LabelSeries {
        LabelSeries::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, days * 1440, |_| {
            true
        })
    }

    fn never_home(days: usize) -> LabelSeries {
        LabelSeries::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, days * 1440, |_| {
            false
        })
    }

    #[test]
    fn background_appliances_get_no_activations() {
        let model = ActivityModel::default();
        let mut rng = seeded_rng(1);
        let acts = model.sample_appliance(&Appliance::fridge(), &all_home(3), &mut rng);
        assert!(acts.is_empty());
    }

    #[test]
    fn empty_home_produces_no_events() {
        let model = ActivityModel::default();
        let mut rng = seeded_rng(2);
        let acts = model.sample_appliance(&Appliance::microwave(), &never_home(5), &mut rng);
        assert!(acts.is_empty());
    }

    #[test]
    fn occupied_home_produces_events_in_windows() {
        let model = ActivityModel::default();
        let mut rng = seeded_rng(3);
        let acts = model.sample_appliance(&Appliance::toaster(), &all_home(30), &mut rng);
        // ~0.9/day over 30 days.
        assert!(acts.len() >= 10 && acts.len() <= 60, "got {}", acts.len());
        for a in &acts {
            let h = a.start.hour_of_day();
            assert!((6..10).contains(&h), "toaster at hour {h}");
            assert!((120..=300).contains(&a.duration_secs));
        }
        // Sorted by start.
        assert!(acts.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn intensity_scales_event_count() {
        let mut rng_lo = seeded_rng(4);
        let mut rng_hi = seeded_rng(4);
        let occ = all_home(60);
        let lo =
            ActivityModel::new(0.5).sample_appliance(&Appliance::microwave(), &occ, &mut rng_lo);
        let hi =
            ActivityModel::new(2.0).sample_appliance(&Appliance::microwave(), &occ, &mut rng_hi);
        assert!(hi.len() > lo.len(), "hi {} !> lo {}", hi.len(), lo.len());
    }

    #[test]
    fn zero_intensity_produces_nothing() {
        let mut rng = seeded_rng(5);
        let acts =
            ActivityModel::new(0.0).sample_appliance(&Appliance::tv(), &all_home(10), &mut rng);
        assert!(acts.is_empty());
    }

    #[test]
    fn ungated_model_ignores_occupancy() {
        let model = ActivityModel {
            intensity: 1.0,
            gate_on_occupancy: false,
        };
        let mut rng = seeded_rng(6);
        let acts = model.sample_appliance(&Appliance::toaster(), &never_home(30), &mut rng);
        assert!(!acts.is_empty());
    }

    #[test]
    fn deterministic() {
        let occ = all_home(10);
        let a = ActivityModel::default().sample_appliance(
            &Appliance::kettle(),
            &occ,
            &mut seeded_rng(7),
        );
        let b = ActivityModel::default().sample_appliance(
            &Appliance::kettle(),
            &occ,
            &mut seeded_rng(7),
        );
        assert_eq!(a, b);
    }
}
