//! Whole-home energy simulation: occupants, appliances, and smart meters.
//!
//! The paper's energy-privacy attacks (NIOM, NILM, CHPr's evaluation) are
//! all demonstrated on real homes instrumented with smart meters. This
//! crate is the substitute substrate: a stochastic but fully reproducible
//! simulator that generates
//!
//! * a ground-truth **occupancy** series from a behavioural schedule model
//!   ([`occupancy`]),
//! * per-appliance **activations** driven by occupancy and each appliance's
//!   usage prior ([`activity`]),
//! * per-device and aggregate **power traces** rendered through the load
//!   models of the [`loads`] crate, and
//! * a noisy **smart-meter reading** of the aggregate ([`meter`]).
//!
//! Because the simulator emits ground truth alongside the meter trace, the
//! attacks can be scored exactly — something the paper's real deployments
//! needed manual annotation for.
//!
//! **Paper anchor:** Section II-A's instrumented homes — the Home-A/Home-B
//! day of Figure 1, the "all circuits" 13-appliance week behind Figure 2,
//! and the week of meter data CHPr defends in Figure 6 all come from this
//! simulator. When the [`obs`] layer is enabled, [`Home::simulate`]
//! records the `homesim.simulate` span and sample counters.
//!
//! # Examples
//!
//! ```
//! use homesim::{Home, HomeConfig, Persona};
//!
//! let home = Home::simulate(&HomeConfig::new(42).days(2).persona(Persona::Worker));
//! assert_eq!(home.meter.len(), 2 * 1440);
//! // Occupied samples exist (nights) and so do unoccupied ones (workday).
//! let rate = home.occupancy.positive_rate();
//! assert!(rate > 0.3 && rate < 0.95);
//! ```

pub mod activity;
pub mod home;
pub mod meter;
pub mod occupancy;

pub use activity::ActivityModel;
pub use home::{DeviceTrace, Home, HomeConfig};
pub use meter::SmartMeter;
pub use occupancy::{OccupancyModel, Persona};
