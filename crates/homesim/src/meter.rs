//! Smart-meter modelling.

use serde::{Deserialize, Serialize};
use timeseries::rng::{normal, SeededRng};
use timeseries::{PowerTrace, Resolution, TraceError};

/// A smart meter: samples a home's true aggregate power at a configured
/// resolution with additive Gaussian measurement noise.
///
/// The paper's analyses run on meter *readings*, not ground truth; the
/// noise level is what separates PowerPlay ("more robust to noisy smart
/// meter data") from the FHMM baseline in Figure 2.
///
/// # Examples
///
/// ```
/// use homesim::SmartMeter;
/// use timeseries::rng::seeded_rng;
/// use timeseries::{PowerTrace, Resolution, Timestamp};
///
/// let truth = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 60, 500.0);
/// let meter = SmartMeter::new(Resolution::ONE_MINUTE, 20.0);
/// let reading = meter.read(&truth, &mut seeded_rng(1))?;
/// assert_eq!(reading.len(), 60);
/// assert!((reading.mean_watts() - 500.0).abs() < 20.0);
/// # Ok::<(), timeseries::TraceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmartMeter {
    resolution: Resolution,
    noise_sd_watts: f64,
}

impl SmartMeter {
    /// Creates a meter reporting at `resolution` with Gaussian noise of the
    /// given standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `noise_sd_watts` is negative or non-finite.
    pub fn new(resolution: Resolution, noise_sd_watts: f64) -> Self {
        assert!(
            noise_sd_watts.is_finite() && noise_sd_watts >= 0.0,
            "noise std-dev must be non-negative"
        );
        SmartMeter {
            resolution,
            noise_sd_watts,
        }
    }

    /// An ideal (noise-free) meter at `resolution`.
    pub fn ideal(resolution: Resolution) -> Self {
        SmartMeter {
            resolution,
            noise_sd_watts: 0.0,
        }
    }

    /// The reporting resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The noise standard deviation, watts.
    pub fn noise_sd_watts(&self) -> f64 {
        self.noise_sd_watts
    }

    /// Produces the meter's reading of `truth`: downsampled to the meter
    /// resolution (if needed) then perturbed with noise and clamped
    /// non-negative. Net-metered homes (with solar) may legitimately go
    /// negative; use [`SmartMeter::read_net`] for those.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::IndivisibleResample`] if the meter resolution
    /// is not an integer multiple of the truth resolution.
    pub fn read(&self, truth: &PowerTrace, rng: &mut SeededRng) -> Result<PowerTrace, TraceError> {
        Ok(self.read_net(truth, rng)?.clamp_non_negative())
    }

    /// Like [`SmartMeter::read`] but without the non-negativity clamp, for
    /// net meters that can run backwards when solar export exceeds load.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::IndivisibleResample`] if the meter resolution
    /// is not an integer multiple of the truth resolution.
    pub fn read_net(
        &self,
        truth: &PowerTrace,
        rng: &mut SeededRng,
    ) -> Result<PowerTrace, TraceError> {
        let sampled = if truth.resolution() == self.resolution {
            truth.clone()
        } else {
            truth.downsample(self.resolution)?
        };
        if self.noise_sd_watts == 0.0 {
            return Ok(sampled);
        }
        Ok(sampled.map(|w| w + normal(rng, 0.0, self.noise_sd_watts)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::rng::seeded_rng;
    use timeseries::Timestamp;

    #[test]
    fn ideal_meter_passes_through() {
        let truth = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 10, 300.0);
        let m = SmartMeter::ideal(Resolution::ONE_MINUTE);
        let r = m.read(&truth, &mut seeded_rng(0)).unwrap();
        assert_eq!(r, truth);
    }

    #[test]
    fn noise_has_expected_spread() {
        let truth = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 5_000, 1_000.0);
        let m = SmartMeter::new(Resolution::ONE_MINUTE, 50.0);
        let r = m.read(&truth, &mut seeded_rng(1)).unwrap();
        let mean = r.mean_watts();
        let sd =
            (r.samples().iter().map(|w| (w - mean).powi(2)).sum::<f64>() / r.len() as f64).sqrt();
        assert!((mean - 1_000.0).abs() < 5.0, "mean {mean}");
        assert!((sd - 50.0).abs() < 5.0, "sd {sd}");
    }

    #[test]
    fn read_clamps_negative() {
        let truth = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 2_000, 1.0);
        let m = SmartMeter::new(Resolution::ONE_MINUTE, 100.0);
        let r = m.read(&truth, &mut seeded_rng(2)).unwrap();
        assert!(r.samples().iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn read_net_allows_negative() {
        let truth = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 2_000, -500.0);
        let m = SmartMeter::new(Resolution::ONE_MINUTE, 10.0);
        let r = m.read_net(&truth, &mut seeded_rng(3)).unwrap();
        assert!(r.mean_watts() < -450.0);
    }

    #[test]
    fn downsamples_to_meter_resolution() {
        let truth = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 120, 500.0);
        let m = SmartMeter::ideal(Resolution::ONE_HOUR);
        let r = m.read(&truth, &mut seeded_rng(4)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.resolution(), Resolution::ONE_HOUR);
    }

    #[test]
    fn indivisible_resolution_rejected() {
        let truth = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_HOUR, 5, 500.0);
        let m = SmartMeter::ideal(Resolution::ONE_MINUTE);
        assert!(m.read(&truth, &mut seeded_rng(5)).is_err());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_noise_rejected() {
        SmartMeter::new(Resolution::ONE_MINUTE, -1.0);
    }
}
