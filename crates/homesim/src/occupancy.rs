//! Occupant schedule simulation.
//!
//! Generates a binary ground-truth occupancy series from a day-structured
//! behavioural model: occupants sleep at home, leave for work on weekdays,
//! run errands, and occasionally take multi-day vacations. The model is the
//! *generator* whose side channel NIOM later tries to recover from power
//! data alone.

use rand::Rng;
use serde::{Deserialize, Serialize};
use timeseries::rng::{normal, SeededRng};
use timeseries::{LabelSeries, Resolution, Timestamp};

/// A household behavioural archetype, bundling canonical
/// [`OccupancyModel`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Persona {
    /// Out at work on weekdays roughly 8am–5:30pm; typical evenings and
    /// weekends at home.
    Worker,
    /// Home most of the time, with short errands.
    Homebody,
    /// Works evenings: away roughly 3pm–midnight on weekdays.
    NightShift,
}

/// Parameters of the occupancy schedule generator.
///
/// All times are hours of day; all jitters are standard deviations of a
/// normal perturbation applied per day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccupancyModel {
    /// Mean weekday departure hour (None = no regular weekday absence).
    pub weekday_leave_hour: Option<f64>,
    /// Std-dev of the departure hour, hours.
    pub leave_jitter: f64,
    /// Mean weekday return hour.
    pub weekday_return_hour: f64,
    /// Std-dev of the return hour, hours.
    pub return_jitter: f64,
    /// Probability of skipping the weekday absence entirely (sick day,
    /// work-from-home).
    pub stay_home_prob: f64,
    /// Expected number of errands per at-home day (weekends, and the home
    /// portion of weekdays).
    pub errands_per_day: f64,
    /// Errand duration range, hours.
    pub errand_hours: (f64, f64),
    /// Inclusive day ranges `(first, last)` on which the home is empty all
    /// day (vacations).
    pub vacations: Vec<(u64, u64)>,
}

impl OccupancyModel {
    /// The canonical model for a [`Persona`].
    pub fn for_persona(persona: Persona) -> Self {
        match persona {
            Persona::Worker => OccupancyModel {
                weekday_leave_hour: Some(8.0),
                leave_jitter: 0.6,
                weekday_return_hour: 17.5,
                return_jitter: 0.8,
                stay_home_prob: 0.1,
                errands_per_day: 0.8,
                errand_hours: (0.5, 2.5),
                vacations: Vec::new(),
            },
            Persona::Homebody => OccupancyModel {
                weekday_leave_hour: None,
                leave_jitter: 0.0,
                weekday_return_hour: 0.0,
                return_jitter: 0.0,
                stay_home_prob: 1.0,
                errands_per_day: 1.2,
                errand_hours: (0.5, 2.0),
                vacations: Vec::new(),
            },
            Persona::NightShift => OccupancyModel {
                weekday_leave_hour: Some(15.0),
                leave_jitter: 0.4,
                weekday_return_hour: 23.5,
                return_jitter: 0.3,
                stay_home_prob: 0.08,
                errands_per_day: 0.6,
                errand_hours: (0.5, 2.0),
                vacations: Vec::new(),
            },
        }
    }

    /// Adds a vacation covering days `first..=last`.
    pub fn with_vacation(mut self, first: u64, last: u64) -> Self {
        assert!(first <= last, "vacation range inverted");
        self.vacations.push((first, last));
        self
    }

    /// `true` if `day` falls inside a configured vacation.
    pub fn on_vacation(&self, day: u64) -> bool {
        self.vacations.iter().any(|&(a, b)| (a..=b).contains(&day))
    }

    /// Generates a ground-truth occupancy series covering `days` days at
    /// `resolution`, starting at the epoch.
    pub fn generate(&self, days: u64, resolution: Resolution, rng: &mut SeededRng) -> LabelSeries {
        let per_day = resolution.samples_per_day();
        let mut labels = vec![true; (days as usize) * per_day];
        let res_hours = resolution.as_secs() as f64 / 3_600.0;

        for day in 0..days {
            let base = day as usize * per_day;
            if self.on_vacation(day) {
                labels[base..base + per_day].fill(false);
                continue;
            }
            let weekend = Timestamp::from_dhms(day, 12, 0, 0).is_weekend();

            // Regular weekday absence.
            if !weekend {
                if let Some(leave_mean) = self.weekday_leave_hour {
                    if rng.gen::<f64>() >= self.stay_home_prob {
                        let leave = normal(rng, leave_mean, self.leave_jitter).clamp(0.0, 23.5);
                        let ret = normal(rng, self.weekday_return_hour, self.return_jitter)
                            .clamp(leave + 0.25, 24.0);
                        mark_away(&mut labels[base..base + per_day], leave, ret, res_hours);
                    }
                }
            }

            // Errands while otherwise home, between 8am and 9pm.
            let n_errands = sample_poisson(rng, self.errands_per_day);
            for _ in 0..n_errands {
                let len = rng.gen_range(self.errand_hours.0..=self.errand_hours.1);
                let start = rng.gen_range(8.0..21.0_f64);
                let end = (start + len).min(23.9);
                mark_away(&mut labels[base..base + per_day], start, end, res_hours);
            }
        }
        LabelSeries::new(Timestamp::ZERO, resolution, labels)
    }
}

fn mark_away(day: &mut [bool], from_hour: f64, to_hour: f64, res_hours: f64) {
    let lo = ((from_hour / res_hours) as usize).min(day.len());
    let hi = ((to_hour / res_hours).ceil() as usize).min(day.len());
    day[lo..hi].fill(false);
}

/// Samples a Poisson count by inversion (adequate for small means).
fn sample_poisson(rng: &mut impl Rng, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    let limit = (-mean).exp();
    let mut product: f64 = rng.gen();
    let mut count = 0;
    while product > limit && count < 100 {
        count += 1;
        product *= rng.gen::<f64>();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::rng::seeded_rng;

    #[test]
    fn worker_away_during_workday() {
        let model = OccupancyModel::for_persona(Persona::Worker);
        let mut rng = seeded_rng(1);
        let occ = model.generate(5, Resolution::ONE_MINUTE, &mut rng);
        // Count weekday middays that are away: should be most of them.
        let mut away_middays = 0;
        for day in 0..5 {
            if !occ.at(Timestamp::from_dhms(day, 12, 30, 0)).unwrap() {
                away_middays += 1;
            }
        }
        assert!(away_middays >= 3, "away {away_middays}/5 middays");
        // Nights are home.
        for day in 0..5 {
            assert!(
                occ.at(Timestamp::from_dhms(day, 3, 0, 0)).unwrap(),
                "night {day}"
            );
        }
    }

    #[test]
    fn homebody_mostly_home() {
        let model = OccupancyModel::for_persona(Persona::Homebody);
        let mut rng = seeded_rng(2);
        let occ = model.generate(7, Resolution::ONE_MINUTE, &mut rng);
        assert!(occ.positive_rate() > 0.8, "rate {}", occ.positive_rate());
    }

    #[test]
    fn vacation_empties_home() {
        let model = OccupancyModel::for_persona(Persona::Worker).with_vacation(2, 3);
        let mut rng = seeded_rng(3);
        let occ = model.generate(5, Resolution::ONE_MINUTE, &mut rng);
        assert!(!occ.at(Timestamp::from_dhms(2, 12, 0, 0)).unwrap());
        assert!(!occ.at(Timestamp::from_dhms(3, 3, 0, 0)).unwrap());
        assert!(occ.at(Timestamp::from_dhms(4, 3, 0, 0)).unwrap());
        assert!(model.on_vacation(2));
        assert!(!model.on_vacation(4));
    }

    #[test]
    fn weekend_has_no_work_absence() {
        let mut model = OccupancyModel::for_persona(Persona::Worker);
        model.errands_per_day = 0.0; // isolate the work schedule
        let mut rng = seeded_rng(4);
        let occ = model.generate(7, Resolution::ONE_MINUTE, &mut rng);
        // Days 5 and 6 are the weekend: fully home without errands.
        for day in [5, 6] {
            for hour in 0..24 {
                assert!(
                    occ.at(Timestamp::from_dhms(day, hour, 0, 0)).unwrap(),
                    "weekend day {day} hour {hour}"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let model = OccupancyModel::for_persona(Persona::Worker);
        let a = model.generate(3, Resolution::ONE_MINUTE, &mut seeded_rng(9));
        let b = model.generate(3, Resolution::ONE_MINUTE, &mut seeded_rng(9));
        assert_eq!(a, b);
    }

    #[test]
    fn poisson_mean_reasonable() {
        let mut rng = seeded_rng(5);
        let n = 10_000;
        let total: u32 = (0..n).map(|_| sample_poisson(&mut rng, 1.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.5).abs() < 0.1, "mean {mean}");
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn night_shift_away_evenings() {
        let model = OccupancyModel::for_persona(Persona::NightShift);
        let mut rng = seeded_rng(6);
        let occ = model.generate(5, Resolution::ONE_MINUTE, &mut rng);
        let mut away_evenings = 0;
        for day in 0..5 {
            if !occ.at(Timestamp::from_dhms(day, 19, 0, 0)).unwrap() {
                away_evenings += 1;
            }
        }
        assert!(away_evenings >= 3, "away {away_evenings}/5 evenings");
    }
}
