//! The full attack×defense matrix, run under the fleet supervisor.

use crate::arena::TrainingArena;
use crate::attacker::DeployedModel;
use crate::registry::{attackers, defenses};
use iot_privacy::fleet::{home_seed, par_map};
use iot_privacy::homesim::{Home, HomeConfig, Persona};
use iot_privacy::nilm::{evaluate_disaggregation, train_device_hmm, Disaggregator, Fhmm};
use iot_privacy::scenario::{AttackScore, ScenarioReport};
use iot_privacy::stream::{
    dense_samples, feed_chunked, LogisticStream, StreamSpec, StreamState, ThresholdStream,
};
use iot_privacy::timeseries::rng::{derive_seed, seeded_rng};
use iot_privacy::timeseries::{LabelSeries, PowerTrace};
use iot_privacy::{run_fleet_supervised_with, SupervisorConfig};
use serde_json::{json, Value};

/// Devices the NILM-leakage probe tracks (small on purpose: the probe
/// measures ordering across defenses, not absolute Fig. 2 accuracy).
const NILM_DEVICES: [&str; 3] = ["fridge", "freezer", "toaster"];
/// Samples of the evaluation trace the NILM probe decodes (one day).
const NILM_SAMPLES: usize = 1_440;
/// Chunk lengths the streaming-admission check replays the adaptive
/// attack at (one window-misaligned on purpose).
const STREAM_CHUNKS: [usize; 2] = [64, 997];

/// How one tournament run is parameterized. Every number the matrix
/// produces is a pure function of this struct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixConfig {
    /// Root seed; all internal seeds derive from it.
    pub seed: u64,
    /// Instrumented training homes available to the attackers.
    pub train_homes: usize,
    /// Days each training home is observed.
    pub train_days: u64,
    /// Evaluation fleet size.
    pub eval_homes: usize,
    /// Days each evaluation home is observed.
    pub eval_days: u64,
    /// Co-evolution rounds for adaptive attackers.
    pub rounds: usize,
    /// A home index that panics on every attempt — proves the fleet
    /// supervisor's quarantine composes with the tournament. `None`
    /// disables fault injection.
    pub panic_home: Option<usize>,
}

impl MatrixConfig {
    /// The canonical configuration: 6 training homes × 6 days, an
    /// 8-home evaluation fleet × 3 days, 3 co-evolution rounds, and
    /// home 3 persistently faulted.
    pub fn canonical(seed: u64) -> MatrixConfig {
        MatrixConfig {
            seed,
            train_homes: 6,
            train_days: 6,
            eval_homes: 8,
            eval_days: 3,
            rounds: 3,
            panic_home: Some(3),
        }
    }
}

/// One (attacker, defense) cell of the matrix: fleet-mean scores over
/// the surviving evaluation homes, plus the cell's quarantine ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Attacker registry key.
    pub attacker: &'static str,
    /// Defense registry key.
    pub defense: String,
    /// The ε for DP columns, `None` elsewhere.
    pub dp_epsilon: Option<f64>,
    /// Mean attack accuracy on raw meters (baseline, defense-free).
    pub undefended_accuracy: f64,
    /// Mean attack MCC on raw meters.
    pub undefended_mcc: f64,
    /// Mean attack accuracy on defended meters — the cell's headline.
    pub accuracy: f64,
    /// Mean attack MCC on defended meters.
    pub mcc: f64,
    /// Mean per-home energy cost of the defense, kWh: real extra energy
    /// plus billing distortion converted at the fleet's mean consumption.
    pub energy_cost_kwh: f64,
    /// Mean absolute billing distortion fraction.
    pub billing_error_frac: f64,
    /// Evaluation homes that survived supervision.
    pub survivors: usize,
    /// Evaluation homes quarantined by the supervisor.
    pub quarantined: usize,
    /// Retry attempts the supervisor spent on this cell.
    pub retries: u64,
    /// Adaptive attackers' per-round training MCC trajectory (empty for
    /// static rows).
    pub round_train_mcc: Vec<f64>,
}

/// Per-defense NILM leakage: FHMM disaggregation error on a defended
/// trace (higher = the defense blinds NILM harder).
#[derive(Debug, Clone, PartialEq)]
pub struct NilmLeakage {
    /// Defense registry key.
    pub defense: String,
    /// The ε for DP columns, `None` elsewhere.
    pub dp_epsilon: Option<f64>,
    /// Mean disaggregation error factor over the tracked devices
    /// (0 = perfect recovery, 1 = as bad as guessing zero).
    pub mean_error_factor: f64,
}

/// The full tournament outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixResult {
    /// The configuration that produced this result.
    pub config: MatrixConfig,
    /// All attacker×defense cells, defense-major in registry order.
    pub cells: Vec<MatrixCell>,
    /// The NILM-leakage probe, one entry per defense.
    pub nilm: Vec<NilmLeakage>,
    /// Whether the adaptive attack replayed through chunked streaming
    /// admission matched the batch attack byte-for-byte.
    pub stream_chunked_equal: bool,
    /// Mean per-home total energy of the evaluation fleet, kWh.
    pub mean_home_energy_kwh: f64,
}

impl MatrixResult {
    /// The cell for `(attacker, defense)` keys, if present.
    pub fn cell(&self, attacker: &str, defense: &str) -> Option<&MatrixCell> {
        self.cells
            .iter()
            .find(|c| c.attacker == attacker && c.defense == defense)
    }

    fn mcc_of(&self, attacker: &str, defense: &str) -> f64 {
        self.cell(attacker, defense)
            .unwrap_or_else(|| panic!("missing cell {attacker}/{defense}"))
            .mcc
    }

    /// The DP defense keys, registry order (weakest budget first).
    fn dp_keys(&self) -> Vec<&str> {
        let mut keys = Vec::new();
        for c in &self.cells {
            if c.dp_epsilon.is_some() && !keys.contains(&c.defense.as_str()) {
                keys.push(c.defense.as_str());
            }
        }
        keys
    }

    /// The headline ordering: minimum over non-DP defense columns of
    /// (adaptive MCC − best static MCC). Positive means the co-evolving
    /// attacker strictly beats both static baselines everywhere the
    /// defense carries no DP guarantee.
    pub fn adaptive_min_non_dp_margin(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.attacker == "adaptive-tuned" && c.dp_epsilon.is_none())
            .map(|c| {
                let best_static = ["static-threshold", "static-logistic"]
                    .iter()
                    .map(|a| self.mcc_of(a, &c.defense))
                    .fold(f64::NEG_INFINITY, f64::max);
                c.mcc - best_static
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Graceful degradation on the static-threshold row: minimum of
    /// (undefended − first rung) and (first rung − every stronger rung).
    /// The strongest rungs are allowed to tie each other — at small ε the
    /// attack bottoms out at the schedule-prior floor and adjacent rungs
    /// differ only by noise — but each must sit below the weakest rung.
    pub fn dp_static_degradation_min(&self) -> f64 {
        let row = |d: &str| self.mcc_of("static-threshold", d);
        let rungs = self.dp_keys();
        let first = row(rungs[0]);
        let mut min = row("none") - first;
        for rung in &rungs[1..] {
            min = min.min(first - row(rung));
        }
        min
    }

    /// How far the strongest DP rung pushes the *adaptive* attacker below
    /// its own undefended score — the guarantee retraining cannot beat.
    pub fn dp_adaptive_floor_margin(&self) -> f64 {
        let rungs = self.dp_keys();
        let strongest = rungs.last().expect("registry has DP rungs");
        self.mcc_of("adaptive-tuned", "none") - self.mcc_of("adaptive-tuned", strongest)
    }

    /// Minimum consecutive energy-cost ratio down the DP ladder. Cost is
    /// a per-column quantity (every attacker row sees the same defended
    /// traces), read off the static-threshold row. A ratio well above 1
    /// means cost grows monotonically — and steeply — as ε shrinks.
    pub fn dp_cost_min_ratio(&self) -> f64 {
        let cost = |d: &str| {
            self.cell("static-threshold", d)
                .unwrap_or_else(|| panic!("missing cell static-threshold/{d}"))
                .energy_cost_kwh
        };
        let rungs = self.dp_keys();
        rungs
            .windows(2)
            .map(|w| cost(w[1]) / cost(w[0]))
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether fleet supervision composed identically with every cell:
    /// the injected panic home (if any) quarantined, everyone else
    /// surviving, in all `attackers × defenses` evaluations.
    pub fn quarantine_composes(&self) -> bool {
        let expected = self
            .config
            .panic_home
            .map_or(0, |h| usize::from(h < self.config.eval_homes));
        self.cells
            .iter()
            .all(|c| c.quarantined == expected && c.survivors == self.config.eval_homes - expected)
    }

    /// The canonical JSON projection — what `results/tournament.json`
    /// stores and the `tournament.*` conformance claims read. A pure
    /// function of the config, byte-identical across thread counts.
    pub fn to_json(&self) -> Value {
        let opt = |e: Option<f64>| e.map_or(Value::Null, |x| json!(x));
        json!({
            "experiment": "tournament",
            "seed": self.config.seed,
            "train_homes": self.config.train_homes,
            "train_days": self.config.train_days,
            "eval_homes": self.config.eval_homes,
            "eval_days": self.config.eval_days,
            "rounds": self.config.rounds,
            "mean_home_energy_kwh": self.mean_home_energy_kwh,
            "cells": self.cells.iter().map(|c| json!({
                "attacker": c.attacker,
                "defense": c.defense,
                "dp_epsilon": opt(c.dp_epsilon),
                "undefended_accuracy": c.undefended_accuracy,
                "undefended_mcc": c.undefended_mcc,
                "accuracy": c.accuracy,
                "mcc": c.mcc,
                "energy_cost_kwh": c.energy_cost_kwh,
                "billing_error_frac": c.billing_error_frac,
                "survivors": c.survivors,
                "quarantined": c.quarantined,
                "retries": c.retries,
                "round_train_mcc": c.round_train_mcc,
            })).collect::<Vec<_>>(),
            "nilm": self.nilm.iter().map(|n| json!({
                "defense": n.defense,
                "dp_epsilon": opt(n.dp_epsilon),
                "mean_error_factor": n.mean_error_factor,
            })).collect::<Vec<_>>(),
            "stream": {
                "attacker": "adaptive-tuned",
                "defense": "chpr",
                "chunk_lens": STREAM_CHUNKS,
                "chunked_equal": self.stream_chunked_equal,
            },
            "summary": {
                "adaptive_min_non_dp_margin": self.adaptive_min_non_dp_margin(),
                "dp_static_degradation_min": self.dp_static_degradation_min(),
                "dp_adaptive_floor_margin": self.dp_adaptive_floor_margin(),
                "dp_cost_min_ratio": self.dp_cost_min_ratio(),
                "quarantine_composes": self.quarantine_composes(),
            },
        })
    }
}

/// Replays `model` over `defended` through chunked streaming admission —
/// the gateway deployment shape, where readings arrive `chunk_len` at a
/// time rather than as a finished trace.
fn chunked_detect(model: &DeployedModel, defended: &PowerTrace, chunk_len: usize) -> LabelSeries {
    let samples = dense_samples(defended.samples());
    let spec = StreamSpec::of_trace(defended);
    match model {
        DeployedModel::Threshold(d) => {
            let mut s = ThresholdStream::new(d.clone(), spec);
            feed_chunked(&mut s, &samples, chunk_len);
            s.finalize()
        }
        DeployedModel::Logistic(d) => {
            let mut s = LogisticStream::new(d.clone(), spec);
            feed_chunked(&mut s, &samples, chunk_len);
            s.finalize()
        }
    }
}

/// Runs the full tournament.
///
/// Structure per defense column: all attackers fit first (adaptive ones
/// against this column's defense), then each (attacker, defense) cell
/// evaluates through [`run_fleet_supervised_with`] with a root seed
/// derived from the *defense key only* — every attacker row of a column
/// therefore sees byte-identical defended evaluation traces, and the
/// injected panic home is quarantined identically in every cell.
///
/// # Panics
///
/// Panics if the config is degenerate (zero homes/days/rounds) or the
/// whole evaluation fleet ends up quarantined.
pub fn run_matrix(cfg: &MatrixConfig) -> MatrixResult {
    assert!(
        cfg.eval_homes > 0 && cfg.eval_days > 0,
        "need an eval fleet"
    );
    assert!(cfg.rounds > 0, "need at least one round");
    let _span = obs::span("tournament.matrix");

    let arena = TrainingArena::simulate(
        derive_seed(cfg.seed, "train"),
        cfg.train_homes,
        cfg.train_days,
    );
    // Personas rotate as in the training arena: the fleet the attacker
    // monetizes has the same schedule mix its training homes sampled.
    const PERSONAS: [Persona; 3] = [Persona::Worker, Persona::Homebody, Persona::NightShift];
    let eval_root = derive_seed(cfg.seed, "eval-worlds");
    let worlds: Vec<Home> = par_map((0..cfg.eval_homes).collect(), |i| {
        Home::simulate(
            &HomeConfig::new(home_seed(eval_root, i))
                .days(cfg.eval_days)
                .persona(PERSONAS[i % PERSONAS.len()]),
        )
    });
    let mean_home_energy_kwh =
        worlds.iter().map(|w| w.meter.energy_kwh()).sum::<f64>() / worlds.len() as f64;

    // The NILM probe's device models, trained on evaluation home 0's own
    // ground-truth submeters (the strongest NILM attacker: it knows the
    // home's appliances exactly; only the defense stands in the way).
    let nilm_home = &worlds[0];
    let fhmm = {
        let mut models: Vec<_> = NILM_DEVICES
            .iter()
            .map(|name| {
                let d = nilm_home.device(name).expect("catalogue device simulated");
                train_device_hmm(&d.name, &d.trace.slice(0..NILM_SAMPLES), 2)
            })
            .collect();
        let mut other = nilm_home.meter.slice(0..NILM_SAMPLES);
        for name in NILM_DEVICES {
            let d = nilm_home.device(name).expect("catalogue device simulated");
            other = other
                .checked_sub(&d.trace.slice(0..NILM_SAMPLES))
                .expect("aligned");
        }
        models.push(train_device_hmm("other", &other.clamp_non_negative(), 3));
        Fhmm::new(models)
    };
    let nilm_truth: Vec<(String, PowerTrace)> = NILM_DEVICES
        .iter()
        .map(|name| {
            let d = nilm_home.device(name).expect("catalogue device simulated");
            (d.name.clone(), d.trace.slice(0..NILM_SAMPLES))
        })
        .collect();

    let attackers = attackers();
    let mut cells = Vec::new();
    let mut nilm = Vec::new();
    let mut stream_chunked_equal = true;
    for spec in defenses() {
        let defense = spec.defense.as_ref();
        for attacker in &attackers {
            let fit_seed = derive_seed(cfg.seed, &format!("fit:{}:{}", attacker.name(), spec.key));
            let fitted = attacker.fit(&arena, defense, cfg.rounds, fit_seed);

            let eval_seed = derive_seed(cfg.seed, &format!("eval:{}", spec.key));
            let fleet = run_fleet_supervised_with(
                cfg.eval_homes,
                eval_seed,
                SupervisorConfig::default(),
                |attempt| {
                    if Some(attempt.home) == cfg.panic_home {
                        panic!("injected fault in home {}", attempt.home);
                    }
                    let world = &worlds[attempt.home];
                    let mut rng = seeded_rng(derive_seed(attempt.seed, "defense"));
                    let defended = defense.apply(&world.meter, &mut rng);
                    let score = |trace: &PowerTrace| -> AttackScore {
                        let c = world
                            .occupancy
                            .confusion(&fitted.detect(trace))
                            .expect("attack output is aligned by contract");
                        AttackScore {
                            accuracy: c.accuracy(),
                            mcc: c.mcc(),
                        }
                    };
                    ScenarioReport {
                        undefended: score(&world.meter),
                        defended: score(&defended.trace),
                        cost: defended.cost,
                    }
                },
            )
            .expect("evaluation fleet survives");

            let s = &fleet.summary;
            cells.push(MatrixCell {
                attacker: attacker.name(),
                defense: spec.key.clone(),
                dp_epsilon: spec.dp_epsilon,
                undefended_accuracy: s.undefended_accuracy.mean,
                undefended_mcc: s.undefended_mcc.mean,
                accuracy: s.defended_accuracy.mean,
                mcc: s.defended_mcc.mean,
                energy_cost_kwh: s.extra_energy_kwh.mean
                    + s.billing_error_frac.mean * mean_home_energy_kwh,
                billing_error_frac: s.billing_error_frac.mean,
                survivors: fleet.reports.len(),
                quarantined: fleet.quarantined.len(),
                retries: fleet.retries,
                round_train_mcc: fitted.round_train_mcc.clone(),
            });

            // The streaming-admission contract: the adaptive attack vs
            // CHPr replayed through chunked ingestion must reproduce
            // the batch attack byte-for-byte.
            if attacker.is_adaptive() && spec.key == "chpr" {
                let mut rng = seeded_rng(derive_seed(cfg.seed, "stream-check"));
                let defended = defense.apply(&worlds[0].meter, &mut rng).trace;
                let batch = fitted.detect(&defended);
                for chunk_len in STREAM_CHUNKS {
                    stream_chunked_equal &=
                        chunked_detect(&fitted.model, &defended, chunk_len) == batch;
                }
            }
        }

        // NILM leakage probe for this defense column.
        let mut rng = seeded_rng(derive_seed(cfg.seed, &format!("nilm:{}", spec.key)));
        let defended = defense.apply(&nilm_home.meter, &mut rng).trace;
        let scores = evaluate_disaggregation(
            &nilm_truth,
            &fhmm.disaggregate(&defended.slice(0..NILM_SAMPLES)),
        )
        .expect("probe traces aligned");
        nilm.push(NilmLeakage {
            defense: spec.key.clone(),
            dp_epsilon: spec.dp_epsilon,
            mean_error_factor: scores.iter().map(|s| s.error_factor).sum::<f64>()
                / scores.len() as f64,
        });
    }

    obs::counter_add("tournament.cells", cells.len() as u64);
    MatrixResult {
        config: *cfg,
        cells,
        nilm,
        stream_chunked_equal,
        mean_home_energy_kwh,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny configuration for unit tests — the full canonical run is
    /// exercised by the bench experiment and the integration suite.
    fn tiny() -> MatrixConfig {
        MatrixConfig {
            seed: 21,
            train_homes: 2,
            train_days: 2,
            eval_homes: 2,
            eval_days: 2,
            rounds: 1,
            panic_home: None,
        }
    }

    #[test]
    fn matrix_covers_the_cross_product() {
        let m = run_matrix(&tiny());
        assert_eq!(m.cells.len(), attackers().len() * defenses().len());
        assert_eq!(m.nilm.len(), defenses().len());
        assert!(m.stream_chunked_equal);
        assert!(m.cell("adaptive-tuned", "chpr").is_some());
        assert!(m.cell("no-such", "chpr").is_none());
        for cell in &m.cells {
            assert_eq!(cell.survivors, 2);
            assert_eq!(cell.quarantined, 0);
            assert!(cell.mcc.is_finite() && cell.accuracy.is_finite());
            assert!(cell.energy_cost_kwh.is_finite());
        }
    }

    #[test]
    fn undefended_baseline_is_shared_within_a_static_row() {
        // A static attacker's model ignores the defense, so its
        // undefended score must be identical across a row's columns.
        // (Adaptive rows legitimately vary: the fitted model depends on
        // which defense it co-evolved against.)
        let m = run_matrix(&tiny());
        for attacker in ["static-threshold", "static-logistic"] {
            let row: Vec<&MatrixCell> = m.cells.iter().filter(|c| c.attacker == attacker).collect();
            assert!(row
                .windows(2)
                .all(|w| w[0].undefended_mcc == w[1].undefended_mcc));
        }
        // The identity column defends nothing: defended == undefended.
        for cell in m.cells.iter().filter(|c| c.defense == "none") {
            assert_eq!(cell.mcc, cell.undefended_mcc, "{}", cell.attacker);
            assert_eq!(cell.energy_cost_kwh, 0.0);
        }
    }

    #[test]
    fn panic_home_is_quarantined_in_every_cell() {
        let cfg = MatrixConfig {
            panic_home: Some(1),
            ..tiny()
        };
        let m = run_matrix(&cfg);
        for cell in &m.cells {
            assert_eq!(cell.quarantined, 1, "{}/{}", cell.attacker, cell.defense);
            assert_eq!(cell.survivors, 1);
            assert!(cell.retries > 0);
        }
    }

    #[test]
    fn json_projection_is_stable() {
        let m = run_matrix(&tiny());
        let a = serde_json::to_string(&m.to_json()).unwrap();
        let b = serde_json::to_string(&run_matrix(&tiny()).to_json()).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"cells\""));
        assert!(a.contains("\"dp_epsilon\""));
        assert!(a.contains("\"summary\""));
    }

    #[test]
    fn summary_scalars_are_finite_and_coherent() {
        let m = run_matrix(&tiny());
        assert!(m.adaptive_min_non_dp_margin().is_finite());
        assert!(m.dp_static_degradation_min().is_finite());
        assert!(m.dp_adaptive_floor_margin().is_finite());
        // Laplace noise at ε-steps of 8× must cost strictly more per rung.
        assert!(m.dp_cost_min_ratio() > 1.0);
        // No panic home injected → zero quarantines everywhere.
        assert!(m.quarantine_composes());
        // The composition flag notices a missing quarantine.
        let faulted = run_matrix(&MatrixConfig {
            panic_home: Some(0),
            ..tiny()
        });
        assert!(faulted.quarantine_composes());
        assert!(faulted.cells.iter().all(|c| c.quarantined == 1));
    }
}
