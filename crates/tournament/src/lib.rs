//! Co-evolving attack×defense tournament (ROADMAP item 3).
//!
//! The paper evaluates static attacks against static defenses one-vs-one
//! (Figs. 2/6). This crate turns that into a *scenario generator*: every
//! registered attacker is pitted against every registered defense, and
//! the adaptive attackers retrain their occupancy model on **defended**
//! traces over K co-evolution rounds — the threat model of Yilmaz &
//! Siraj (arXiv 2010.12640), where an attacker that sees the defense's
//! output defeats naive obfuscation. The defense side gains a
//! differential-privacy knob ([`iot_privacy::defense::DpNoise`]) whose guarantee is
//! the one thing retraining cannot beat (Wang et al., arXiv 2011.06205).
//!
//! The tournament reproduces both claims inside the fleet machinery:
//!
//! * **Adaptive beats static** against every non-DP defense — the
//!   retrained logistic attacker recovers occupancy signal that the
//!   threshold attack loses to CHPr-style masking.
//! * **DP degrades gracefully** — the adaptive attacker's MCC falls
//!   monotonically as ε shrinks, at a billing-fidelity cost that rises
//!   monotonically.
//!
//! # Structure
//!
//! * [`TrainingArena`] — the attacker's instrumented training homes
//!   (the NILM-startup setting of the paper's Figure 3).
//! * [`Attacker`] — the fit interface; [`StaticThreshold`],
//!   [`StaticLogistic`], and [`AdaptiveTuned`] implement it.
//! * [`registry`] — the named attacker and defense line-ups, including
//!   the DP ε-ladder ([`registry::DP_EPSILONS`]).
//! * [`matrix`] — [`run_matrix`] evaluates the full
//!   cross product through `run_fleet_supervised_with`, so per-home
//!   panic isolation, retries, and quarantine compose with the
//!   tournament (one designated home panics persistently in the
//!   canonical configuration and must be quarantined in every cell).
//!
//! # Determinism
//!
//! Every number is a pure function of [`MatrixConfig::seed`]. Per-round
//! defense randomness uses `derive_seed(fit_seed, "round:<k>:home:<i>")`;
//! per-cell evaluation fleets derive their root from the defense key
//! only, so all attackers of one column see byte-identical defended
//! traces. The matrix JSON is byte-identical across runs and
//! `RAYON_NUM_THREADS` settings — proven by this crate's test suite.

#![warn(missing_docs)]

pub mod arena;
pub mod attacker;
pub mod matrix;
pub mod registry;

pub use arena::TrainingArena;
pub use attacker::{
    AdaptiveTuned, Attacker, DeployedModel, FittedAttack, StaticLogistic, StaticThreshold,
};
pub use matrix::{run_matrix, MatrixCell, MatrixConfig, MatrixResult};
pub use registry::{attackers, defenses, DefenseSpec, DP_EPSILONS};
