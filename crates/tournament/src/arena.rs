//! The attacker's training fleet.

use iot_privacy::homesim::{Home, HomeConfig, Persona};
use iot_privacy::timeseries::rng::derive_seed;

/// The homes an attacker has instrumented with ground-truth occupancy —
/// the NILM-startup setting of the paper's Figure 3: a company with a
/// few labelled training homes learns a model once and applies it to
/// every customer.
///
/// Personas rotate (worker, homebody, night-shift) so the learned model
/// sees schedule diversity rather than one household archetype.
#[derive(Debug, Clone)]
pub struct TrainingArena {
    /// The instrumented homes, in index order.
    pub homes: Vec<Home>,
}

impl TrainingArena {
    /// Simulates `homes` training homes over `days`, each seeded
    /// `derive_seed(seed, "train:<i>")`.
    ///
    /// # Panics
    ///
    /// Panics if `homes` or `days` is zero.
    pub fn simulate(seed: u64, homes: usize, days: u64) -> TrainingArena {
        assert!(homes > 0, "need at least one training home");
        const PERSONAS: [Persona; 3] = [Persona::Worker, Persona::Homebody, Persona::NightShift];
        let homes = iot_privacy::fleet::par_map((0..homes).collect(), |i| {
            Home::simulate(
                &HomeConfig::new(derive_seed(seed, &format!("train:{i}")))
                    .days(days)
                    .persona(PERSONAS[i % PERSONAS.len()]),
            )
        });
        TrainingArena { homes }
    }

    /// Number of training homes.
    pub fn len(&self) -> usize {
        self.homes.len()
    }

    /// Whether the arena holds no homes (never true for a simulated one).
    pub fn is_empty(&self) -> bool {
        self.homes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_is_deterministic_and_diverse() {
        let a = TrainingArena::simulate(11, 3, 2);
        let b = TrainingArena::simulate(11, 3, 2);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        for (x, y) in a.homes.iter().zip(&b.homes) {
            assert_eq!(x.meter, y.meter);
            assert_eq!(x.occupancy, y.occupancy);
        }
        // Different homes, different traces.
        assert_ne!(a.homes[0].meter, a.homes[1].meter);
    }

    #[test]
    #[should_panic(expected = "at least one training home")]
    fn empty_arena_rejected() {
        TrainingArena::simulate(1, 0, 2);
    }
}
