//! The tournament line-ups: who attacks, what defends.

use crate::attacker::{AdaptiveTuned, Attacker, StaticLogistic, StaticThreshold};
use iot_privacy::defense::{
    BatteryLeveler, Chpr, Defense, DpNoise, NoDefense, NoiseInjector, Smoother,
};

/// The DP ε-ladder, strongest budget last. Rungs are 8× apart so the
/// "degrades monotonically with ε" ordering is well-separated at every
/// sweep seed, not a coin flip between adjacent noise levels.
pub const DP_EPSILONS: [f64; 3] = [8.0, 1.0, 0.125];

/// One registered defense column of the matrix.
pub struct DefenseSpec {
    /// Stable key used in reports, JSON, and derived seed labels.
    pub key: String,
    /// The ε for DP rungs, `None` for every other defense. The
    /// conformance claims split the matrix on this field: the adaptive
    /// attacker must beat the static ones wherever it is `None`.
    pub dp_epsilon: Option<f64>,
    /// The defense instance shared by every attacker row.
    pub defense: Box<dyn Defense + Send + Sync>,
}

/// Every attacker row, registry order: the two static baselines first,
/// then the co-evolving one.
pub fn attackers() -> Vec<Box<dyn Attacker + Send + Sync>> {
    vec![
        Box::new(StaticThreshold),
        Box::new(StaticLogistic),
        Box::new(AdaptiveTuned),
    ]
}

/// Every defense column, registry order: the baseline, the naive
/// report-only obfuscators, the load-shaping defenses, then the DP
/// ladder from weakest to strongest budget.
pub fn defenses() -> Vec<DefenseSpec> {
    let mut all = vec![
        DefenseSpec {
            key: "none".to_string(),
            dp_epsilon: None,
            defense: Box::new(NoDefense),
        },
        DefenseSpec {
            key: "smoother".to_string(),
            dp_epsilon: None,
            defense: Box::new(Smoother::new(30)),
        },
        DefenseSpec {
            key: "noise".to_string(),
            dp_epsilon: None,
            defense: Box::new(NoiseInjector::new(150.0)),
        },
        DefenseSpec {
            key: "battery".to_string(),
            dp_epsilon: None,
            defense: Box::new(BatteryLeveler::default()),
        },
        DefenseSpec {
            key: "chpr".to_string(),
            dp_epsilon: None,
            defense: Box::new(Chpr::default()),
        },
    ];
    for eps in DP_EPSILONS {
        all.push(DefenseSpec {
            key: format!("dp-{eps}"),
            dp_epsilon: Some(eps),
            defense: Box::new(DpNoise::new(eps)),
        });
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_keys_are_unique_and_stable() {
        let defs = defenses();
        let mut seen = std::collections::HashSet::new();
        for d in &defs {
            assert!(seen.insert(d.key.clone()), "duplicate defense {}", d.key);
        }
        assert_eq!(defs[0].key, "none");
        assert_eq!(
            defs.iter().filter(|d| d.dp_epsilon.is_some()).count(),
            DP_EPSILONS.len()
        );
        // ε-ladder is strictly decreasing (weakest budget first).
        let eps: Vec<f64> = defs.iter().filter_map(|d| d.dp_epsilon).collect();
        assert!(eps.windows(2).all(|w| w[0] > w[1]), "{eps:?}");

        let atks = attackers();
        assert_eq!(atks.len(), 3);
        assert!(atks.iter().any(|a| a.is_adaptive()));
    }
}
