//! Attackers: static baselines and the co-evolving adaptive one.

use crate::arena::TrainingArena;
use iot_privacy::defense::Defense;
use iot_privacy::niom::{LogisticDetector, OccupancyDetector, ThresholdDetector};
use iot_privacy::timeseries::rng::{round_seed, seeded_rng};
use iot_privacy::timeseries::{LabelSeries, PowerTrace};

/// The NIOM window every tournament attacker uses, samples.
pub const WINDOW: usize = 15;

/// The concrete model a fitted attack deploys. An enum rather than a
/// `Box<dyn OccupancyDetector>` so the streaming layer can build the
/// matching `ThresholdStream`/`LogisticStream` for chunked admission of
/// the same attack, and so fits compare with `==` in determinism tests.
#[derive(Debug, Clone, PartialEq)]
pub enum DeployedModel {
    /// A (possibly tuned) statistical threshold detector.
    Threshold(ThresholdDetector),
    /// A trained logistic-regression detector.
    Logistic(LogisticDetector),
}

impl DeployedModel {
    /// Runs the model over a meter trace.
    pub fn detect(&self, meter: &PowerTrace) -> LabelSeries {
        match self {
            DeployedModel::Threshold(d) => d.detect(meter),
            DeployedModel::Logistic(d) => d.detect(meter),
        }
    }
}

/// A fitted attack: the model to deploy plus the fit's audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedAttack {
    /// The model the attacker deploys against evaluation homes.
    pub model: DeployedModel,
    /// Mean training-set MCC after each co-evolution round, scored on
    /// every defended trace accumulated so far. Empty for static
    /// attackers (they never see the defense).
    pub round_train_mcc: Vec<f64>,
}

impl FittedAttack {
    /// Runs the deployed model over a meter trace.
    pub fn detect(&self, meter: &PowerTrace) -> LabelSeries {
        self.model.detect(meter)
    }
}

/// An occupancy attacker that can be fitted against a specific defense.
///
/// `fit` receives the defense *as deployed* — adaptive attackers may
/// apply it to their training homes as often as they like (they own
/// those homes), while static attackers must ignore it. The fit must be
/// a pure function of `(arena, defense, rounds, seed)`.
pub trait Attacker: Sync {
    /// Stable registry key, e.g. `adaptive-tuned`.
    fn name(&self) -> &'static str;

    /// Whether `fit` looks at defended traces at all.
    fn is_adaptive(&self) -> bool;

    /// Fits the attack for deployment against `defense`.
    fn fit(
        &self,
        arena: &TrainingArena,
        defense: &dyn Defense,
        rounds: usize,
        seed: u64,
    ) -> FittedAttack;
}

/// The paper's unsupervised threshold attack (Fig. 6): calibrates
/// per-trace at detection time, learns nothing from training homes.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticThreshold;

impl Attacker for StaticThreshold {
    fn name(&self) -> &'static str {
        "static-threshold"
    }

    fn is_adaptive(&self) -> bool {
        false
    }

    fn fit(
        &self,
        _arena: &TrainingArena,
        _defense: &dyn Defense,
        _rounds: usize,
        _seed: u64,
    ) -> FittedAttack {
        FittedAttack {
            model: DeployedModel::Threshold(ThresholdDetector::default()),
            round_train_mcc: Vec::new(),
        }
    }
}

/// The supervised logistic attack trained once on *raw* training
/// meters — what an attacker ships when it doesn't know a defense is
/// deployed.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticLogistic;

impl Attacker for StaticLogistic {
    fn name(&self) -> &'static str {
        "static-logistic"
    }

    fn is_adaptive(&self) -> bool {
        false
    }

    fn fit(
        &self,
        arena: &TrainingArena,
        _defense: &dyn Defense,
        _rounds: usize,
        _seed: u64,
    ) -> FittedAttack {
        let pairs: Vec<(&PowerTrace, &LabelSeries)> = arena
            .homes
            .iter()
            .map(|h| (&h.meter, &h.occupancy))
            .collect();
        FittedAttack {
            model: DeployedModel::Logistic(LogisticDetector::train(&pairs, WINDOW)),
            round_train_mcc: Vec::new(),
        }
    }
}

/// The co-evolving attacker. Each round it deploys the defense on its
/// own training homes (fresh randomness per `(round, home)`), appends
/// the defended traces to its training set, and refits on everything
/// accumulated so far: it retrains a logistic model on the defended
/// pairs *and* tunes the threshold family over [`candidate_grid`],
/// deploying whichever candidate scores the best mean MCC on the
/// defended training set. By round K it has learned whatever occupancy
/// signal — level shifts, residual burstiness, schedule priors —
/// *survives* the defense.
///
/// The static threshold's exact configuration is in the grid, so on
/// undefended traces the adaptive attacker can only match or improve on
/// it (up to train→eval transfer).
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveTuned;

/// A margin/σ rung so high the corresponding channel never fires —
/// combined with a tuned prior this turns a grid candidate into a pure
/// schedule attack (see [`candidate_grid`]).
const CHANNEL_OFF_WATTS: f64 = 1.0e9;

/// The threshold-family search space: window length × baseline
/// percentile × mean margin × σ threshold × sleep-prior hours, with the
/// run-length smoother at the paper's default. Includes
/// [`ThresholdDetector::default`] itself (window 15, percentile 10,
/// margin 100 W, σ 110 W, prior 22–07) — so the static deployment is
/// always one of the options the adaptive attacker can fall back to.
///
/// The extra axes are what defense adaptation needs:
///
/// * long windows see through load-shifting (CHPr, battery);
/// * low margins/σ recover residual burstiness a smoother attenuates;
/// * alternative prior hours — or no prior — re-tune the schedule
///   assumption to whatever household mix the training fleet shows;
/// * the `CHANNEL_OFF_WATTS` rungs disable a power channel entirely,
///   so "wide prior + both channels off" is a pure *schedule attack*:
///   when a defense blinds the power side channel completely, occupancy
///   is still partially predictable from hours alone, and the attacker
///   learns that from its own labelled homes.
pub fn candidate_grid() -> Vec<ThresholdDetector> {
    let mut grid = Vec::new();
    for window in [WINDOW, 30, 60] {
        for bp in [5.0, 10.0, 20.0] {
            for margin in [20.0, 60.0, 100.0, 150.0, CHANNEL_OFF_WATTS] {
                for sigma in [20.0, 60.0, 110.0, 160.0, CHANNEL_OFF_WATTS] {
                    for prior in [Some((22, 7)), Some((18, 8)), None] {
                        grid.push(ThresholdDetector {
                            window,
                            baseline_percentile: bp,
                            mean_margin_watts: margin,
                            sigma_threshold_watts: sigma,
                            night_prior: prior,
                            ..ThresholdDetector::default()
                        });
                    }
                }
            }
        }
    }
    grid
}

/// Mean MCC of `model` over labelled traces.
fn mean_mcc(model: &DeployedModel, traces: &[(PowerTrace, &LabelSeries)]) -> f64 {
    traces
        .iter()
        .map(|(m, o)| {
            o.confusion(&model.detect(m))
                .expect("defense preserves geometry")
                .mcc()
        })
        .sum::<f64>()
        / traces.len() as f64
}

impl Attacker for AdaptiveTuned {
    fn name(&self) -> &'static str {
        "adaptive-tuned"
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn fit(
        &self,
        arena: &TrainingArena,
        defense: &dyn Defense,
        rounds: usize,
        seed: u64,
    ) -> FittedAttack {
        assert!(rounds > 0, "adaptive fit needs at least one round");
        let _span = obs::span("tournament.fit");
        let grid = candidate_grid();
        let mut defended: Vec<(PowerTrace, &LabelSeries)> = Vec::new();
        let mut round_train_mcc = Vec::with_capacity(rounds);
        let mut best: Option<(f64, DeployedModel)> = None;
        for round in 0..rounds {
            for (i, home) in arena.homes.iter().enumerate() {
                let mut rng = seeded_rng(round_seed(seed, round, i));
                let out = defense.apply(&home.meter, &mut rng);
                defended.push((out.trace, &home.occupancy));
            }
            // Refit on everything accumulated: the tuned threshold family
            // plus a logistic model retrained on the defended pairs.
            let pairs: Vec<(&PowerTrace, &LabelSeries)> =
                defended.iter().map(|(m, o)| (m, *o)).collect();
            let mut candidates: Vec<DeployedModel> = grid
                .iter()
                .map(|d| DeployedModel::Threshold(d.clone()))
                .collect();
            candidates.push(DeployedModel::Logistic(LogisticDetector::train(
                &pairs, WINDOW,
            )));
            // Deterministic selection: scores are computed in grid order
            // (par_map preserves order) and only a strictly better score
            // displaces the incumbent.
            let scored = iot_privacy::fleet::par_map(candidates, |model| {
                let score = mean_mcc(&model, &defended);
                (score, model)
            });
            best = None;
            for (score, model) in scored {
                if best.as_ref().is_none_or(|(b, _)| score > *b) {
                    best = Some((score, model));
                }
            }
            round_train_mcc.push(best.as_ref().expect("non-empty grid").0);
        }
        obs::counter_add("tournament.fit.rounds", rounds as u64);
        obs::counter_add("tournament.fit.defended_traces", defended.len() as u64);
        FittedAttack {
            model: best.expect("rounds > 0").1,
            round_train_mcc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iot_privacy::defense::{Chpr, DpNoise, NoDefense, NoiseInjector};

    fn arena() -> TrainingArena {
        TrainingArena::simulate(5, 2, 2)
    }

    #[test]
    fn static_attackers_ignore_the_defense() {
        let arena = arena();
        let vs_none = StaticLogistic.fit(&arena, &NoDefense, 3, 1);
        let vs_chpr = StaticLogistic.fit(&arena, &Chpr::default(), 3, 999);
        assert_eq!(vs_none.model, vs_chpr.model);
        assert!(vs_none.round_train_mcc.is_empty());
        assert!(!StaticThreshold.is_adaptive());
        assert!(!StaticLogistic.is_adaptive());
    }

    #[test]
    fn grid_contains_the_static_deployment() {
        assert!(candidate_grid().contains(&ThresholdDetector::default()));
        assert_eq!(candidate_grid().len(), 675);
    }

    #[test]
    fn adaptive_fit_is_deterministic_in_seed() {
        let arena = arena();
        let defense = NoiseInjector::new(150.0);
        let a = AdaptiveTuned.fit(&arena, &defense, 2, 7);
        let b = AdaptiveTuned.fit(&arena, &defense, 2, 7);
        assert_eq!(a, b);
        // A different seed draws different defense noise, so the training
        // trajectory must differ even if the selected model coincides.
        let c = AdaptiveTuned.fit(&arena, &defense, 2, 8);
        assert_ne!(a.round_train_mcc, c.round_train_mcc, "seed must matter");
    }

    #[test]
    fn adaptive_selection_is_at_least_the_static_threshold_on_train() {
        // The static configuration sits inside the search grid, so the
        // adaptive attacker's training score can never fall below it.
        let arena = arena();
        let fitted = AdaptiveTuned.fit(&arena, &NoDefense, 1, 3);
        let static_model = DeployedModel::Threshold(ThresholdDetector::default());
        let raw: Vec<(PowerTrace, &LabelSeries)> = arena
            .homes
            .iter()
            .map(|h| (h.meter.clone(), &h.occupancy))
            .collect();
        let static_score = mean_mcc(&static_model, &raw);
        assert!(
            fitted.round_train_mcc[0] >= static_score,
            "{} < {static_score}",
            fitted.round_train_mcc[0]
        );
    }

    #[test]
    fn adaptive_fit_against_infinite_epsilon_dp_is_the_no_dp_fit() {
        let arena = arena();
        let dp_off = AdaptiveTuned.fit(&arena, &DpNoise::new(f64::INFINITY), 2, 3);
        let none = AdaptiveTuned.fit(&arena, &NoDefense, 2, 3);
        assert_eq!(dp_off, none);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        AdaptiveTuned.fit(&arena(), &NoDefense, 0, 1);
    }
}
