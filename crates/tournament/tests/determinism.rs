//! The tournament's determinism contract, property-tested.
//!
//! Three guarantees the conformance claims lean on:
//!
//! * The matrix JSON is a pure function of [`MatrixConfig`] — byte-identical
//!   across repeated runs *and* across `RAYON_NUM_THREADS` settings. All
//!   thread-count cases live in ONE test function on purpose:
//!   `RAYON_NUM_THREADS` is process-global and the harness runs separate
//!   `#[test]`s concurrently.
//! * `DpNoise` with `ε = ∞` is the exact identity: byte-identical output to
//!   the no-DP path and the same RNG consumption (none), for arbitrary
//!   traces and seeds.
//! * Adaptive retraining is a pure function of `(seed, rounds)`, and a
//!   fitted model replayed through chunked streaming admission matches the
//!   batch attack for any chunk length.

use std::sync::OnceLock;

use iot_privacy::defense::{Defense, DpNoise, NoDefense, NoiseInjector};
use iot_privacy::stream::{dense_samples, feed_chunked, StreamSpec, StreamState, ThresholdStream};
use iot_privacy::timeseries::rng::{laplace, seeded_rng};
use iot_privacy::timeseries::{PowerTrace, Resolution, Timestamp};
use proptest::prelude::*;
use tournament::{
    AdaptiveTuned, Attacker, DeployedModel, MatrixConfig, StaticThreshold, TrainingArena,
};

/// A small-but-not-degenerate configuration: two co-evolution rounds, a
/// quarantined panic home, and an eval fleet spanning all three personas.
fn small() -> MatrixConfig {
    MatrixConfig {
        seed: 77,
        train_homes: 2,
        train_days: 2,
        eval_homes: 3,
        eval_days: 2,
        rounds: 2,
        panic_home: Some(1),
    }
}

#[test]
fn matrix_json_is_byte_identical_across_runs_and_thread_counts() {
    let cfg = small();
    let reference =
        serde_json::to_string(&tournament::run_matrix(&cfg).to_json()).expect("matrix serializes");
    assert!(reference.contains("\"summary\""), "sanity: report shape");

    for threads in ["1", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let rerun = serde_json::to_string(&tournament::run_matrix(&cfg).to_json())
            .expect("matrix serializes");
        assert_eq!(
            rerun, reference,
            "matrix JSON must be byte-identical at RAYON_NUM_THREADS={threads}"
        );
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

/// Shared fixture for the fit/replay properties — simulating homes per
/// proptest case would dominate the suite's runtime.
fn arena() -> &'static TrainingArena {
    static ARENA: OnceLock<TrainingArena> = OnceLock::new();
    ARENA.get_or_init(|| TrainingArena::simulate(4_242, 2, 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `ε = ∞` must be *the identity*, not merely "very little noise":
    /// same bytes out, and the RNG stream untouched (the next Laplace
    /// draw from both RNGs agrees), for arbitrary traces and seeds.
    #[test]
    fn dp_with_infinite_epsilon_is_byte_identical_to_the_no_dp_path(
        watts in prop::collection::vec(0.0f64..4_000.0, 16..200),
        seed in any::<u64>(),
    ) {
        let trace = PowerTrace::from_fn(
            Timestamp::ZERO,
            Resolution::ONE_MINUTE,
            watts.len(),
            |i| watts[i],
        );
        let mut dp_rng = seeded_rng(seed);
        let mut off_rng = seeded_rng(seed);
        let dp = DpNoise::new(f64::INFINITY).apply(&trace, &mut dp_rng);
        let off = NoDefense.apply(&trace, &mut off_rng);
        prop_assert_eq!(&dp, &off);
        prop_assert_eq!(&dp.trace, &trace);
        prop_assert_eq!(
            laplace(&mut dp_rng, 0.0, 1.0),
            laplace(&mut off_rng, 0.0, 1.0),
            "the parked knob must not consume RNG draws"
        );
    }
}

proptest! {
    // Each case fits the full candidate grid three times; keep the case
    // count modest so the suite stays in test-tier budget.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Retraining is a pure function of `(seed, rounds)`: refitting with
    /// the same pair reproduces the selected model and the per-round
    /// audit trail exactly.
    #[test]
    fn adaptive_fit_is_a_pure_function_of_seed_and_rounds(
        seed in any::<u64>(),
        rounds in 1usize..3,
    ) {
        let defense = NoiseInjector::new(120.0);
        let a = AdaptiveTuned.fit(arena(), &defense, rounds, seed);
        let b = AdaptiveTuned.fit(arena(), &defense, rounds, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.round_train_mcc.len(), rounds);
        // One more round re-derives fresh per-round seeds and extends —
        // never rewrites — the audit trail's earlier entries.
        let c = AdaptiveTuned.fit(arena(), &defense, rounds + 1, seed);
        prop_assert_eq!(c.round_train_mcc.len(), rounds + 1);
        prop_assert_eq!(&c.round_train_mcc[..rounds], &a.round_train_mcc[..]);
    }

    /// A fitted attack replayed through chunked streaming admission is
    /// byte-identical to the batch attack for any chunk length — the
    /// gateway-deployment contract the matrix spot-checks at two lengths,
    /// generalized.
    #[test]
    fn fitted_attack_chunked_admission_matches_batch(
        chunk_len in 1usize..300,
        defense_seed in any::<u64>(),
    ) {
        let fitted = StaticThreshold.fit(arena(), &NoDefense, 1, 7);
        let DeployedModel::Threshold(model) = &fitted.model else {
            panic!("static threshold deploys a threshold model");
        };
        let mut rng = seeded_rng(defense_seed);
        let defended = NoiseInjector::new(120.0)
            .apply(&arena().homes[0].meter, &mut rng)
            .trace;
        let batch = fitted.detect(&defended);

        let mut stream = ThresholdStream::new(model.clone(), StreamSpec::of_trace(&defended));
        feed_chunked(&mut stream, &dense_samples(defended.samples()), chunk_len);
        prop_assert_eq!(stream.finalize(), batch);
    }
}
