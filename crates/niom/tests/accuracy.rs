//! Integration: NIOM detectors vs simulated homes reproduce the paper's
//! 70-90% occupancy-detection accuracy claim.

use homesim::{Home, HomeConfig, Persona};
use niom::{evaluate, HmmDetector, OccupancyDetector, ThresholdDetector};

#[test]
fn threshold_accuracy_in_paper_band() {
    for seed in 0..4u64 {
        let home = Home::simulate(&HomeConfig::new(seed).days(7));
        let eval = evaluate(&ThresholdDetector::default(), &home.meter, &home.occupancy).unwrap();
        assert!(
            eval.accuracy > 0.70 && eval.accuracy < 0.97,
            "seed {seed}: accuracy {:.3} outside the paper's band",
            eval.accuracy
        );
        assert!(eval.mcc > 0.4, "seed {seed}: mcc {:.3}", eval.mcc);
    }
}

#[test]
fn hmm_accuracy_in_paper_band() {
    for seed in 0..4u64 {
        let home = Home::simulate(&HomeConfig::new(seed).days(7));
        let eval = evaluate(&HmmDetector::default(), &home.meter, &home.occupancy).unwrap();
        assert!(
            eval.accuracy > 0.70 && eval.accuracy < 0.97,
            "seed {seed}: accuracy {:.3}",
            eval.accuracy
        );
    }
}

#[test]
fn detectors_beat_constant_baselines() {
    let home = Home::simulate(&HomeConfig::new(99).days(7));
    let eval = evaluate(&ThresholdDetector::default(), &home.meter, &home.occupancy).unwrap();
    // An always-occupied guesser scores accuracy == positive rate and MCC 0.
    let base = home.occupancy.positive_rate();
    assert!(
        eval.accuracy > base,
        "detector {:.3} <= baseline {base:.3}",
        eval.accuracy
    );
    assert!(eval.mcc > 0.3);
}

#[test]
fn homebody_reads_mostly_occupied() {
    let home = Home::simulate(&HomeConfig::new(5).days(7).persona(Persona::Homebody));
    let inferred = ThresholdDetector::default().detect(&home.meter);
    // Truth is mostly home; detector should agree far more than chance.
    let c = home.occupancy.confusion(&inferred).unwrap();
    assert!(c.accuracy() > 0.6, "accuracy {:.3}", c.accuracy());
}

#[test]
fn vacation_week_reads_empty_during_days() {
    use homesim::OccupancyModel;
    let cfg = HomeConfig::new(6)
        .days(7)
        .occupancy(OccupancyModel::for_persona(Persona::Worker).with_vacation(0, 6));
    let home = Home::simulate(&cfg);
    let no_prior = ThresholdDetector {
        night_prior: None,
        ..ThresholdDetector::default()
    };
    let inferred = no_prior.detect(&home.meter);
    // Nothing but background: detector finds (almost) no occupancy.
    assert!(
        inferred.positive_rate() < 0.1,
        "rate {}",
        inferred.positive_rate()
    );
}
