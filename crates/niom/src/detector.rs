//! The occupancy-detector interface.

use timeseries::{LabelSeries, PipelineError, PowerTrace};

/// An occupancy-detection attack: maps a smart-meter trace to an inferred
/// binary occupancy series with the same geometry.
///
/// Implementations must return a series aligned with the input (same start,
/// resolution, and length) so it can be scored directly against ground
/// truth with [`LabelSeries::confusion`].
pub trait OccupancyDetector {
    /// Infers occupancy from a meter trace.
    fn detect(&self, meter: &PowerTrace) -> LabelSeries;

    /// The checked entry point for possibly-degraded feeds: validates the
    /// input (empty or non-finite traces become typed errors instead of
    /// implementation-defined behaviour) and guards the alignment
    /// contract on the way out.
    ///
    /// # Errors
    ///
    /// [`PipelineError::EmptyInput`] on a zero-length trace,
    /// [`PipelineError::Trace`] when the trace fails validation, and
    /// [`PipelineError::Degenerate`] if the implementation breaks the
    /// alignment contract.
    fn try_detect(&self, meter: &PowerTrace) -> Result<LabelSeries, PipelineError> {
        if meter.is_empty() {
            return Err(PipelineError::EmptyInput {
                stage: "niom.detect",
            });
        }
        meter.validate()?;
        let out = self.detect(meter);
        if out.len() != meter.len() {
            return Err(PipelineError::Degenerate {
                stage: "niom.detect",
                reason: format!(
                    "{} returned {} labels for {} samples",
                    self.name(),
                    out.len(),
                    meter.len()
                ),
            });
        }
        Ok(out)
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{Resolution, Timestamp};

    /// Trivial detector used to exercise the trait object surface.
    struct AlwaysHome;

    impl OccupancyDetector for AlwaysHome {
        fn detect(&self, meter: &PowerTrace) -> LabelSeries {
            LabelSeries::like_trace(meter, true)
        }
        fn name(&self) -> &str {
            "always-home"
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let d: Box<dyn OccupancyDetector> = Box::new(AlwaysHome);
        let meter = PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_MINUTE, 10);
        let out = d.detect(&meter);
        assert_eq!(out.len(), 10);
        assert_eq!(d.name(), "always-home");
    }

    #[test]
    fn try_detect_rejects_empty_and_passes_valid() {
        let d = AlwaysHome;
        let empty = PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_MINUTE, 0);
        assert_eq!(
            d.try_detect(&empty),
            Err(PipelineError::EmptyInput {
                stage: "niom.detect"
            })
        );
        let meter = PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_MINUTE, 5);
        assert_eq!(d.try_detect(&meter).unwrap().len(), 5);
    }

    /// A detector that violates the alignment contract.
    struct Broken;

    impl OccupancyDetector for Broken {
        fn detect(&self, _meter: &PowerTrace) -> LabelSeries {
            LabelSeries::new(Timestamp::ZERO, Resolution::ONE_MINUTE, vec![true])
        }
        fn name(&self) -> &str {
            "broken"
        }
    }

    #[test]
    fn try_detect_catches_misaligned_output() {
        let meter = PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_MINUTE, 5);
        match Broken.try_detect(&meter) {
            Err(PipelineError::Degenerate { stage, reason }) => {
                assert_eq!(stage, "niom.detect");
                assert!(reason.contains("broken"));
            }
            other => panic!("expected Degenerate, got {other:?}"),
        }
    }
}
