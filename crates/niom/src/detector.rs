//! The occupancy-detector interface.

use timeseries::{LabelSeries, PowerTrace};

/// An occupancy-detection attack: maps a smart-meter trace to an inferred
/// binary occupancy series with the same geometry.
///
/// Implementations must return a series aligned with the input (same start,
/// resolution, and length) so it can be scored directly against ground
/// truth with [`LabelSeries::confusion`].
pub trait OccupancyDetector {
    /// Infers occupancy from a meter trace.
    fn detect(&self, meter: &PowerTrace) -> LabelSeries;

    /// A short human-readable name for reports.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{Resolution, Timestamp};

    /// Trivial detector used to exercise the trait object surface.
    struct AlwaysHome;

    impl OccupancyDetector for AlwaysHome {
        fn detect(&self, meter: &PowerTrace) -> LabelSeries {
            LabelSeries::like_trace(meter, true)
        }
        fn name(&self) -> &str {
            "always-home"
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let d: Box<dyn OccupancyDetector> = Box::new(AlwaysHome);
        let meter = PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_MINUTE, 10);
        let out = d.detect(&meter);
        assert_eq!(out.len(), 10);
        assert_eq!(d.name(), "always-home");
    }
}
