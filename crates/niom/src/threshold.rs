//! Threshold-based NIOM (Chen et al., BuildSys'13).

use crate::detector::OccupancyDetector;
use serde::{Deserialize, Serialize};
use timeseries::{LabelSeries, PowerTrace, Resolution, Summary, Timestamp, WindowStats};

/// The statistical threshold detector.
///
/// The trace is split into non-overlapping windows; each window's mean and
/// standard deviation are compared against thresholds *calibrated from the
/// trace itself*: the baseline is a low percentile of windowed means (the
/// background-only level — a fridge cycles whether or not anyone is home),
/// and a window is declared occupied when its mean rises materially above
/// that baseline **or** its σ shows interactive burstiness. Short flickers
/// are removed with a run-length smoother.
///
/// Defaults follow the paper's setting: 15-minute windows on 1-minute data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdDetector {
    /// Window length in samples.
    pub window: usize,
    /// Percentile (0–100) of window means used as the background baseline.
    pub baseline_percentile: f64,
    /// Watts above baseline that flags a window occupied by level.
    pub mean_margin_watts: f64,
    /// σ (watts) that flags a window occupied by burstiness.
    pub sigma_threshold_watts: f64,
    /// Minimum run length, in windows, kept by the smoother.
    pub min_run_windows: usize,
    /// Hours `(from, to)` (wrapping midnight) assumed occupied regardless
    /// of power — the standard NIOM sleep prior: occupants are home but
    /// inactive overnight, which power alone cannot reveal. `None` disables
    /// the prior.
    pub night_prior: Option<(u8, u8)>,
}

impl Default for ThresholdDetector {
    fn default() -> Self {
        ThresholdDetector {
            window: 15,
            baseline_percentile: 10.0,
            mean_margin_watts: 100.0,
            sigma_threshold_watts: 110.0,
            min_run_windows: 2,
            night_prior: Some((22, 7)),
        }
    }
}

impl ThresholdDetector {
    /// Creates a detector with a custom window length and the default
    /// thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(window: usize) -> Self {
        assert!(window > 0, "window must be non-empty");
        ThresholdDetector {
            window,
            ..ThresholdDetector::default()
        }
    }

    /// The background baseline (watts) this detector would calibrate on
    /// `meter`: the configured percentile of window means.
    pub fn baseline_watts(&self, meter: &PowerTrace) -> f64 {
        let means: Vec<f64> = WindowStats::new(meter, self.window)
            .map(|(_, s)| s.mean)
            .collect();
        self.baseline_from_window_means(&means)
    }

    /// The baseline computed from window means given in trace order (the
    /// same values [`baseline_watts`](Self::baseline_watts) derives itself);
    /// exposed so incremental callers that already hold window summaries
    /// reuse the exact batch arithmetic.
    pub fn baseline_from_window_means(&self, means_in_order: &[f64]) -> f64 {
        if means_in_order.is_empty() {
            return 0.0;
        }
        let mut means = means_in_order.to_vec();
        means.sort_by(|a, b| a.total_cmp(b));
        let rank = (self.baseline_percentile / 100.0 * (means.len() - 1) as f64).round() as usize;
        means[rank.min(means.len() - 1)]
    }

    fn classify_window(&self, summary: &Summary, baseline: f64) -> bool {
        summary.mean > baseline + self.mean_margin_watts
            || summary.stddev() > self.sigma_threshold_watts
    }

    /// Runs the full detection pipeline over precomputed window summaries.
    ///
    /// `windows` must be exactly what `WindowStats::new(meter, self.window)`
    /// yields for a trace with the given geometry — `(window start index,
    /// summary)` pairs in trace order, trailing partial window included.
    /// [`detect`](OccupancyDetector::detect) is a thin wrapper over this;
    /// the streaming layer calls it directly with summaries it accumulated
    /// chunk by chunk, which keeps the two paths byte-identical.
    pub fn detect_from_windows(
        &self,
        start: Timestamp,
        resolution: Resolution,
        len: usize,
        windows: &[(usize, Summary)],
    ) -> LabelSeries {
        let means: Vec<f64> = windows.iter().map(|(_, s)| s.mean).collect();
        let baseline = self.baseline_from_window_means(&means);
        let mut labels = vec![false; len];
        let mut window_flags = Vec::new();
        for (w_start, summary) in windows {
            window_flags.push((*w_start, self.classify_window(summary, baseline)));
        }
        // Smooth at window granularity.
        let flags: Vec<bool> = window_flags.iter().map(|&(_, f)| f).collect();
        let smoothed = smooth_bool_runs(&flags, self.min_run_windows);
        for (&(w_start, _), &flag) in window_flags.iter().zip(&smoothed) {
            let end = (w_start + self.window).min(labels.len());
            labels[w_start..end].fill(flag);
        }
        if let Some((from, to)) = self.night_prior {
            apply_night_prior(&mut labels, start, resolution, from, to);
        }
        LabelSeries::new(start, resolution, labels)
    }
}

impl OccupancyDetector for ThresholdDetector {
    fn detect(&self, meter: &PowerTrace) -> LabelSeries {
        let _span = obs::span("niom.threshold.detect");
        obs::counter_add("niom.threshold.samples", meter.len() as u64);
        let windows: Vec<(usize, Summary)> = WindowStats::new(meter, self.window).collect();
        self.detect_from_windows(meter.start(), meter.resolution(), meter.len(), &windows)
    }

    fn name(&self) -> &str {
        "niom-threshold"
    }
}

/// Marks every sample whose hour of day falls in the wrapping interval
/// `[from, to)` as occupied. Sample `i` sits at `start + i * resolution`,
/// matching `PowerTrace::timestamp` — callers only need the grid, not the
/// trace itself.
pub(crate) fn apply_night_prior(
    labels: &mut [bool],
    start: Timestamp,
    resolution: Resolution,
    from: u8,
    to: u8,
) {
    for (i, slot) in labels.iter_mut().enumerate() {
        let at = start + i as u64 * resolution.as_secs() as u64;
        let hour = at.hour_of_day() as u8;
        let in_night = if from <= to {
            (from..to).contains(&hour)
        } else {
            hour >= from || hour < to
        };
        if in_night {
            *slot = true;
        }
    }
}

/// Run-length smoothing over a plain bool slice (interior runs shorter than
/// `min_run` are flipped).
fn smooth_bool_runs(flags: &[bool], min_run: usize) -> Vec<bool> {
    if min_run <= 1 || flags.is_empty() {
        return flags.to_vec();
    }
    let mut out = flags.to_vec();
    let mut i = 0;
    while i < out.len() {
        let val = out[i];
        let mut j = i;
        while j < out.len() && out[j] == val {
            j += 1;
        }
        if j - i < min_run && i != 0 && j != out.len() {
            for slot in &mut out[i..j] {
                *slot = !val;
            }
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{Resolution, Timestamp};

    /// A synthetic day: background 100 W with fridge-ish wiggle; occupied
    /// evening block with bursts.
    fn synthetic_day() -> (PowerTrace, LabelSeries) {
        let trace = PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 1_440, |i| {
            let background = 100.0 + 30.0 * ((i as f64) * 0.2).sin();
            // Occupied 17:00–23:00 (minutes 1020..1380).
            if (1_020..1_380).contains(&i) {
                let burst = if i % 20 < 5 { 1_500.0 } else { 250.0 };
                background + burst
            } else {
                background
            }
        });
        let truth = LabelSeries::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 1_440, |i| {
            (1_020..1_380).contains(&i)
        });
        (trace, truth)
    }

    fn no_prior() -> ThresholdDetector {
        ThresholdDetector {
            night_prior: None,
            ..ThresholdDetector::default()
        }
    }

    #[test]
    fn detects_synthetic_occupancy() {
        let (trace, truth) = synthetic_day();
        let detector = no_prior();
        let inferred = detector.detect(&trace);
        let c = truth.confusion(&inferred).unwrap();
        assert!(c.accuracy() > 0.95, "accuracy {}", c.accuracy());
        assert!(c.mcc() > 0.85, "mcc {}", c.mcc());
    }

    #[test]
    fn flat_trace_reads_empty() {
        let flat = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 1_440, 120.0);
        let inferred = no_prior().detect(&flat);
        assert_eq!(inferred.positive_rate(), 0.0);
    }

    #[test]
    fn night_prior_marks_sleep_hours() {
        let flat = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 1_440, 120.0);
        let inferred = ThresholdDetector::default().detect(&flat);
        // 22:00-07:00 = 9 hours marked occupied by the prior.
        assert!((inferred.positive_rate() - 9.0 / 24.0).abs() < 0.01);
        assert!(inferred.at(Timestamp::from_dhms(0, 3, 0, 0)).unwrap());
        assert!(inferred.at(Timestamp::from_dhms(0, 23, 0, 0)).unwrap());
        assert!(!inferred.at(Timestamp::from_dhms(0, 12, 0, 0)).unwrap());
    }

    #[test]
    fn baseline_tracks_background_level() {
        let (trace, _) = synthetic_day();
        let b = ThresholdDetector::default().baseline_watts(&trace);
        assert!(b > 60.0 && b < 160.0, "baseline {b}");
    }

    #[test]
    fn output_aligned_with_input() {
        let (trace, _) = synthetic_day();
        let inferred = ThresholdDetector::with_window(30).detect(&trace);
        assert_eq!(inferred.len(), trace.len());
        assert_eq!(inferred.resolution(), trace.resolution());
        assert_eq!(inferred.start(), trace.start());
    }

    #[test]
    fn empty_trace_ok() {
        let empty = PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_MINUTE, 0);
        let inferred = no_prior().detect(&empty);
        assert!(inferred.is_empty());
        assert_eq!(ThresholdDetector::default().baseline_watts(&empty), 0.0);
    }

    #[test]
    fn smoothing_kills_flicker() {
        let flags = vec![false, false, true, false, false, false];
        assert_eq!(
            smooth_bool_runs(&flags, 2),
            vec![false, false, false, false, false, false]
        );
        // min_run 1 is identity.
        assert_eq!(smooth_bool_runs(&flags, 1), flags);
    }

    #[test]
    fn detector_name() {
        assert_eq!(ThresholdDetector::default().name(), "niom-threshold");
    }
}
