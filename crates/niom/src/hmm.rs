//! HMM-based NIOM (Kleiminger et al., BuildSys'13 style).
//!
//! A two-state hidden Markov model with Gaussian emissions over windowed
//! mean power. The model is trained *unsupervised* on the trace under
//! attack (Baum–Welch), then decoded with Viterbi; the state with the
//! higher emission mean is declared "occupied". Temporal transition priors
//! give this detector better robustness to brief quiet periods than pure
//! thresholding.

use crate::detector::OccupancyDetector;
use serde::{Deserialize, Serialize};
use timeseries::{LabelSeries, PowerTrace, Resolution, Timestamp, WindowStats};

/// The two-state Gaussian-emission HMM occupancy detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HmmDetector {
    /// Window length in samples over which mean power is computed.
    pub window: usize,
    /// Number of Baum–Welch refinement iterations.
    pub em_iterations: usize,
    /// Floor applied to emission variances, watts² (keeps EM stable when a
    /// state captures near-constant samples).
    pub variance_floor: f64,
    /// Sleep prior: hours `(from, to)` (wrapping midnight) assumed occupied
    /// regardless of power. `None` disables the prior.
    pub night_prior: Option<(u8, u8)>,
}

impl Default for HmmDetector {
    fn default() -> Self {
        HmmDetector {
            window: 15,
            em_iterations: 12,
            variance_floor: 25.0,
            night_prior: Some((22, 7)),
        }
    }
}

/// Internal: parameters of a 2-state Gaussian HMM.
#[derive(Debug, Clone)]
struct Hmm2 {
    /// Initial state log-probabilities.
    log_pi: [f64; 2],
    /// Transition log-probabilities `log_a[from][to]`.
    log_a: [[f64; 2]; 2],
    /// Emission means.
    mu: [f64; 2],
    /// Emission variances.
    var: [f64; 2],
}

impl Hmm2 {
    fn log_emission(&self, state: usize, x: f64) -> f64 {
        let d = x - self.mu[state];
        -0.5 * (d * d / self.var[state] + self.var[state].ln() + (2.0 * std::f64::consts::PI).ln())
    }

    /// Forward-backward in log space; returns per-step posterior
    /// `gamma[t][state]` and pairwise `xi[t][from][to]` expectations.
    #[allow(clippy::type_complexity)]
    fn forward_backward(&self, xs: &[f64]) -> (Vec<[f64; 2]>, Vec<[[f64; 2]; 2]>) {
        let n = xs.len();
        let mut alpha = vec![[f64::NEG_INFINITY; 2]; n];
        let mut beta = vec![[0.0f64; 2]; n];
        for (s, a) in alpha[0].iter_mut().enumerate() {
            *a = self.log_pi[s] + self.log_emission(s, xs[0]);
        }
        for t in 1..n {
            for s in 0..2 {
                let a = alpha[t - 1][0] + self.log_a[0][s];
                let b = alpha[t - 1][1] + self.log_a[1][s];
                alpha[t][s] = log_sum_exp(a, b) + self.log_emission(s, xs[t]);
            }
        }
        for t in (0..n.saturating_sub(1)).rev() {
            for s in 0..2 {
                let a = self.log_a[s][0] + self.log_emission(0, xs[t + 1]) + beta[t + 1][0];
                let b = self.log_a[s][1] + self.log_emission(1, xs[t + 1]) + beta[t + 1][1];
                beta[t][s] = log_sum_exp(a, b);
            }
        }
        let log_z = log_sum_exp(alpha[n - 1][0], alpha[n - 1][1]);
        let mut gamma = vec![[0.0f64; 2]; n];
        for t in 0..n {
            for s in 0..2 {
                gamma[t][s] = (alpha[t][s] + beta[t][s] - log_z).exp();
            }
            let norm: f64 = gamma[t][0] + gamma[t][1];
            if norm > 0.0 {
                gamma[t][0] /= norm;
                gamma[t][1] /= norm;
            }
        }
        let mut xi = vec![[[0.0f64; 2]; 2]; n.saturating_sub(1)];
        for t in 0..n.saturating_sub(1) {
            let mut total = f64::NEG_INFINITY;
            let mut raw = [[0.0f64; 2]; 2];
            for i in 0..2 {
                for j in 0..2 {
                    let v = alpha[t][i]
                        + self.log_a[i][j]
                        + self.log_emission(j, xs[t + 1])
                        + beta[t + 1][j];
                    raw[i][j] = v;
                    total = log_sum_exp(total, v);
                }
            }
            for i in 0..2 {
                for j in 0..2 {
                    xi[t][i][j] = (raw[i][j] - total).exp();
                }
            }
        }
        (gamma, xi)
    }

    /// Viterbi decode: most likely state sequence.
    fn viterbi(&self, xs: &[f64]) -> Vec<usize> {
        let n = xs.len();
        if n == 0 {
            return Vec::new();
        }
        let mut delta = vec![[f64::NEG_INFINITY; 2]; n];
        let mut back = vec![[0usize; 2]; n];
        for (s, d) in delta[0].iter_mut().enumerate() {
            *d = self.log_pi[s] + self.log_emission(s, xs[0]);
        }
        for t in 1..n {
            for s in 0..2 {
                let via0 = delta[t - 1][0] + self.log_a[0][s];
                let via1 = delta[t - 1][1] + self.log_a[1][s];
                let (best, from) = if via0 >= via1 { (via0, 0) } else { (via1, 1) };
                delta[t][s] = best + self.log_emission(s, xs[t]);
                back[t][s] = from;
            }
        }
        let mut path = vec![0usize; n];
        path[n - 1] = if delta[n - 1][0] >= delta[n - 1][1] {
            0
        } else {
            1
        };
        for t in (0..n - 1).rev() {
            path[t] = back[t + 1][path[t + 1]];
        }
        path
    }
}

fn log_sum_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let m = a.max(b);
    m + ((a - m).exp() + (b - m).exp()).ln()
}

/// Batched forward pass over `B` lanes, each with its own [`Hmm2`]
/// parameters and observation vector (all the same length `n`), in the
/// transposed SoA layout `alpha[(t * 2 + s) * B + lane]` so the inner
/// loop over lanes is contiguous. Per lane this performs exactly the
/// serial forward recurrence's operations in the same order.
fn forward_batch(hmms: &[Hmm2], xs_list: &[&[f64]], alpha: &mut Vec<f64>) {
    let lanes = hmms.len();
    let n = xs_list[0].len();
    alpha.clear();
    alpha.resize(n * 2 * lanes, f64::NEG_INFINITY);
    for s in 0..2 {
        let row = &mut alpha[s * lanes..(s + 1) * lanes];
        for (b, slot) in row.iter_mut().enumerate() {
            *slot = hmms[b].log_pi[s] + hmms[b].log_emission(s, xs_list[b][0]);
        }
    }
    for t in 1..n {
        let (prev, cur) = alpha.split_at_mut(t * 2 * lanes);
        let prev = &prev[(t - 1) * 2 * lanes..];
        for s in 0..2 {
            let row = &mut cur[s * lanes..(s + 1) * lanes];
            for (b, slot) in row.iter_mut().enumerate() {
                let a = prev[b] + hmms[b].log_a[0][s];
                let c = prev[lanes + b] + hmms[b].log_a[1][s];
                *slot = log_sum_exp(a, c) + hmms[b].log_emission(s, xs_list[b][t]);
            }
        }
    }
}

/// Batched backward pass in the same SoA layout as [`forward_batch`].
fn backward_batch(hmms: &[Hmm2], xs_list: &[&[f64]], beta: &mut Vec<f64>) {
    let lanes = hmms.len();
    let n = xs_list[0].len();
    beta.clear();
    beta.resize(n * 2 * lanes, 0.0);
    for t in (0..n.saturating_sub(1)).rev() {
        let (cur, nxt) = beta.split_at_mut((t + 1) * 2 * lanes);
        let cur = &mut cur[t * 2 * lanes..];
        let nxt = &nxt[..2 * lanes];
        for s in 0..2 {
            let row = &mut cur[s * lanes..(s + 1) * lanes];
            for (b, slot) in row.iter_mut().enumerate() {
                let a = hmms[b].log_a[s][0] + hmms[b].log_emission(0, xs_list[b][t + 1]) + nxt[b];
                let c = hmms[b].log_a[s][1]
                    + hmms[b].log_emission(1, xs_list[b][t + 1])
                    + nxt[lanes + b];
                *slot = log_sum_exp(a, c);
            }
        }
    }
}

/// Batched forward-backward: per-lane `gamma`/`xi` expectations,
/// byte-identical to [`Hmm2::forward_backward`] on each lane alone.
#[allow(clippy::type_complexity)]
fn forward_backward_batch(
    hmms: &[Hmm2],
    xs_list: &[&[f64]],
    alpha: &mut Vec<f64>,
    beta: &mut Vec<f64>,
) -> (Vec<Vec<[f64; 2]>>, Vec<Vec<[[f64; 2]; 2]>>) {
    let lanes = hmms.len();
    let n = xs_list[0].len();
    forward_batch(hmms, xs_list, alpha);
    backward_batch(hmms, xs_list, beta);
    let at = |t: usize, s: usize, b: usize| alpha[(t * 2 + s) * lanes + b];
    let bt = |t: usize, s: usize, b: usize| beta[(t * 2 + s) * lanes + b];

    let mut gammas = vec![vec![[0.0f64; 2]; n]; lanes];
    let mut xis = vec![vec![[[0.0f64; 2]; 2]; n.saturating_sub(1)]; lanes];
    for (b, (gamma, xi)) in gammas.iter_mut().zip(&mut xis).enumerate() {
        let hmm = &hmms[b];
        let xs = xs_list[b];
        let log_z = log_sum_exp(at(n - 1, 0, b), at(n - 1, 1, b));
        for (t, g) in gamma.iter_mut().enumerate() {
            for (s, slot) in g.iter_mut().enumerate() {
                *slot = (at(t, s, b) + bt(t, s, b) - log_z).exp();
            }
            let norm: f64 = g[0] + g[1];
            if norm > 0.0 {
                g[0] /= norm;
                g[1] /= norm;
            }
        }
        for (t, x) in xi.iter_mut().enumerate() {
            let mut total = f64::NEG_INFINITY;
            let mut raw = [[0.0f64; 2]; 2];
            for (i, row) in raw.iter_mut().enumerate() {
                for (j, slot) in row.iter_mut().enumerate() {
                    let v = at(t, i, b)
                        + hmm.log_a[i][j]
                        + hmm.log_emission(j, xs[t + 1])
                        + bt(t + 1, j, b);
                    *slot = v;
                    total = log_sum_exp(total, v);
                }
            }
            for (xr, rr) in x.iter_mut().zip(&raw) {
                for (slot, &v) in xr.iter_mut().zip(rr) {
                    *slot = (v - total).exp();
                }
            }
        }
    }
    (gammas, xis)
}

/// Batched 2-state Viterbi in the SoA layout `delta[(t * 2 + s) * B + b]`;
/// per lane byte-identical to [`Hmm2::viterbi`] (same `via0 >= via1`
/// tie-break toward state 0).
fn viterbi_batch(hmms: &[Hmm2], xs_list: &[&[f64]]) -> Vec<Vec<usize>> {
    let lanes = hmms.len();
    let n = xs_list[0].len();
    if n == 0 {
        return vec![Vec::new(); lanes];
    }
    let mut delta = vec![f64::NEG_INFINITY; n * 2 * lanes];
    let mut back = vec![0u8; n * 2 * lanes];
    for s in 0..2 {
        let row = &mut delta[s * lanes..(s + 1) * lanes];
        for (b, slot) in row.iter_mut().enumerate() {
            *slot = hmms[b].log_pi[s] + hmms[b].log_emission(s, xs_list[b][0]);
        }
    }
    for t in 1..n {
        let (prev, cur) = delta.split_at_mut(t * 2 * lanes);
        let prev = &prev[(t - 1) * 2 * lanes..];
        let back_t = &mut back[t * 2 * lanes..(t + 1) * 2 * lanes];
        for s in 0..2 {
            let row = &mut cur[s * lanes..(s + 1) * lanes];
            let back_row = &mut back_t[s * lanes..(s + 1) * lanes];
            for (b, (slot, from)) in row.iter_mut().zip(back_row.iter_mut()).enumerate() {
                let via0 = prev[b] + hmms[b].log_a[0][s];
                let via1 = prev[lanes + b] + hmms[b].log_a[1][s];
                let (best, arg) = if via0 >= via1 {
                    (via0, 0u8)
                } else {
                    (via1, 1u8)
                };
                *slot = best + hmms[b].log_emission(s, xs_list[b][t]);
                *from = arg;
            }
        }
    }
    let mut paths = vec![vec![0usize; n]; lanes];
    for (b, path) in paths.iter_mut().enumerate() {
        let last = (n - 1) * 2 * lanes;
        path[n - 1] = if delta[last + b] >= delta[last + lanes + b] {
            0
        } else {
            1
        };
        for t in (0..n - 1).rev() {
            path[t] = back[(t + 1) * 2 * lanes + path[t + 1] * lanes + b] as usize;
        }
    }
    paths
}

/// One home's inputs to [`HmmDetector::detect_from_windows_batch`]: the
/// trace geometry plus its precomputed `(window start, mean)` pairs.
#[derive(Debug, Clone, Copy)]
pub struct WindowLane<'a> {
    /// Timestamp of the lane's first sample.
    pub start: Timestamp,
    /// Sampling resolution of the lane.
    pub resolution: Resolution,
    /// Trace length in samples.
    pub len: usize,
    /// `(window start index, window mean)` pairs, exactly as
    /// `WindowStats::new(meter, detector.window)` yields them.
    pub windows: &'a [(usize, f64)],
}

impl HmmDetector {
    /// The percentile-split initial model the EM refinement starts from.
    fn init_hmm(&self, xs: &[f64]) -> Hmm2 {
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let lo = sorted[sorted.len() / 5];
        let hi = sorted[sorted.len() * 4 / 5];
        let spread = ((hi - lo) / 2.0).max(self.variance_floor.sqrt());
        Hmm2 {
            log_pi: [0.5f64.ln(), 0.5f64.ln()],
            log_a: [[0.9f64.ln(), 0.1f64.ln()], [0.1f64.ln(), 0.9f64.ln()]],
            mu: [lo, hi.max(lo + 1.0)],
            var: [spread * spread, spread * spread],
        }
    }

    /// One EM M-step, shared verbatim by the serial and batched fits.
    fn m_step(&self, hmm: &mut Hmm2, xs: &[f64], gamma: &[[f64; 2]], xi: &[[[f64; 2]; 2]]) {
        for s in 0..2 {
            let weight: f64 = gamma.iter().map(|g| g[s]).sum();
            if weight <= f64::MIN_POSITIVE {
                continue;
            }
            let mean = gamma.iter().zip(xs).map(|(g, &x)| g[s] * x).sum::<f64>() / weight;
            let var = gamma
                .iter()
                .zip(xs)
                .map(|(g, &x)| g[s] * (x - mean).powi(2))
                .sum::<f64>()
                / weight;
            hmm.mu[s] = mean;
            hmm.var[s] = var.max(self.variance_floor);
            hmm.log_pi[s] = gamma[0][s].max(1e-12).ln();
        }
        for i in 0..2 {
            let denom: f64 = xi.iter().map(|x| x[i][0] + x[i][1]).sum();
            if denom <= f64::MIN_POSITIVE {
                continue;
            }
            for j in 0..2 {
                let num: f64 = xi.iter().map(|x| x[i][j]).sum();
                hmm.log_a[i][j] = (num / denom).max(1e-12).ln();
            }
        }
    }

    /// Batched unsupervised fit over equal-length window-mean lanes: every
    /// lane's EM runs the fixed `em_iterations` count (no early exit), so
    /// lanes advance in lockstep through one batched forward-backward per
    /// iteration and the fitted models match the serial [`fit`](Self::fit)
    /// bit for bit.
    fn fit_batch(&self, xs_list: &[&[f64]]) -> Vec<Hmm2> {
        let mut hmms: Vec<Hmm2> = xs_list.iter().map(|xs| self.init_hmm(xs)).collect();
        let mut alpha = Vec::new();
        let mut beta = Vec::new();
        for _ in 0..self.em_iterations {
            let (gammas, xis) = forward_backward_batch(&hmms, xs_list, &mut alpha, &mut beta);
            for (b, hmm) in hmms.iter_mut().enumerate() {
                self.m_step(hmm, xs_list[b], &gammas[b], &xis[b]);
            }
        }
        hmms
    }

    /// Batched [`detect_from_windows`](Self::detect_from_windows) over `B`
    /// homes: lanes with the same window count share one batched EM fit and
    /// one batched Viterbi pass (SoA over lanes); short lanes fall back
    /// exactly like the serial path. Output order matches input order and
    /// every lane is byte-identical to its serial detection.
    pub fn detect_from_windows_batch(&self, lanes: &[WindowLane<'_>]) -> Vec<LabelSeries> {
        let mut out: Vec<Option<LabelSeries>> = (0..lanes.len()).map(|_| None).collect();
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, lane) in lanes.iter().enumerate() {
            if lane.len == 0 {
                out[i] = Some(LabelSeries::new(lane.start, lane.resolution, Vec::new()));
            } else if lane.windows.len() < 4 {
                // Too little data for EM; fall back to "all unoccupied"
                // (no night prior, matching the serial fallback).
                out[i] = Some(LabelSeries::new(
                    lane.start,
                    lane.resolution,
                    vec![false; lane.len],
                ));
            } else {
                groups.entry(lane.windows.len()).or_default().push(i);
            }
        }
        for idxs in groups.into_values() {
            let means: Vec<Vec<f64>> = idxs
                .iter()
                .map(|&i| lanes[i].windows.iter().map(|&(_, m)| m).collect())
                .collect();
            let xs_list: Vec<&[f64]> = means.iter().map(|m| m.as_slice()).collect();
            let hmms = self.fit_batch(&xs_list);
            let paths = viterbi_batch(&hmms, &xs_list);
            for ((&i, hmm), path) in idxs.iter().zip(&hmms).zip(&paths) {
                let occupied_state = if hmm.mu[0] >= hmm.mu[1] { 0 } else { 1 };
                out[i] = Some(self.labels_from_path(&lanes[i], path, occupied_state));
            }
        }
        out.into_iter()
            .map(|l| l.expect("every lane labelled"))
            .collect()
    }

    /// Batched [`detect`](OccupancyDetector::detect): computes each meter's
    /// window means, then runs [`detect_from_windows_batch`](Self::detect_from_windows_batch).
    pub fn detect_batch(&self, meters: &[&PowerTrace]) -> Vec<LabelSeries> {
        let _span = obs::span("niom.hmm.detect_batch");
        obs::gauge_set("decode.batch_size", meters.len() as f64);
        let windows: Vec<Vec<(usize, f64)>> = meters
            .iter()
            .map(|m| {
                obs::counter_add("niom.hmm.samples", m.len() as u64);
                WindowStats::new(m, self.window)
                    .map(|(i, s)| (i, s.mean))
                    .collect()
            })
            .collect();
        let lanes: Vec<WindowLane<'_>> = meters
            .iter()
            .zip(&windows)
            .map(|(m, w)| WindowLane {
                start: m.start(),
                resolution: m.resolution(),
                len: m.len(),
                windows: w,
            })
            .collect();
        self.detect_from_windows_batch(&lanes)
    }

    /// Expands a decoded window-state path into sample labels and applies
    /// the night prior — the shared tail of the serial and batched paths.
    fn labels_from_path(
        &self,
        lane: &WindowLane<'_>,
        path: &[usize],
        occupied_state: usize,
    ) -> LabelSeries {
        let mut labels = vec![false; lane.len];
        for (&(w_start, _), &state) in lane.windows.iter().zip(path) {
            let end = (w_start + self.window).min(labels.len());
            labels[w_start..end].fill(state == occupied_state);
        }
        if let Some((from, to)) = self.night_prior {
            crate::threshold::apply_night_prior(&mut labels, lane.start, lane.resolution, from, to);
        }
        LabelSeries::new(lane.start, lane.resolution, labels)
    }

    /// Fits the 2-state HMM to the window means `xs` and returns it.
    fn fit(&self, xs: &[f64]) -> Hmm2 {
        let mut hmm = self.init_hmm(xs);
        for _ in 0..self.em_iterations {
            let (gamma, xi) = hmm.forward_backward(xs);
            self.m_step(&mut hmm, xs, &gamma, &xi);
        }
        hmm
    }

    /// Runs fit + Viterbi + labelling over precomputed window means.
    ///
    /// `windows` must be exactly the `(window start index, window mean)`
    /// pairs `WindowStats::new(meter, self.window)` yields for a trace with
    /// this geometry, trailing partial window included.
    /// [`detect`](OccupancyDetector::detect) is a thin wrapper over this;
    /// the streaming layer calls it directly with means accumulated chunk
    /// by chunk, keeping both paths byte-identical.
    pub fn detect_from_windows(
        &self,
        start: Timestamp,
        resolution: Resolution,
        len: usize,
        windows: &[(usize, f64)],
    ) -> LabelSeries {
        if len == 0 {
            return LabelSeries::new(start, resolution, Vec::new());
        }
        let xs: Vec<f64> = windows.iter().map(|&(_, m)| m).collect();
        if xs.len() < 4 {
            // Too little data for EM; fall back to "all unoccupied".
            return LabelSeries::new(start, resolution, vec![false; len]);
        }
        let hmm = self.fit(&xs);
        let path = hmm.viterbi(&xs);
        let occupied_state = if hmm.mu[0] >= hmm.mu[1] { 0 } else { 1 };
        self.labels_from_path(
            &WindowLane {
                start,
                resolution,
                len,
                windows,
            },
            &path,
            occupied_state,
        )
    }
}

impl OccupancyDetector for HmmDetector {
    fn detect(&self, meter: &PowerTrace) -> LabelSeries {
        if meter.is_empty() {
            return LabelSeries::like_trace(meter, false);
        }
        let _span = obs::span("niom.hmm.detect");
        obs::counter_add("niom.hmm.samples", meter.len() as u64);
        let windows: Vec<(usize, f64)> = WindowStats::new(meter, self.window)
            .map(|(i, s)| (i, s.mean))
            .collect();
        self.detect_from_windows(meter.start(), meter.resolution(), meter.len(), &windows)
    }

    fn name(&self) -> &str {
        "niom-hmm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{Resolution, Timestamp};

    fn synthetic(days: usize) -> (PowerTrace, LabelSeries) {
        let len = days * 1_440;
        let trace = PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, len, |i| {
            let minute = i % 1_440;
            let background = 110.0 + 25.0 * ((i as f64) * 0.15).sin();
            // Occupied mornings (6–8) and evenings (17–23).
            let occupied = (360..480).contains(&minute) || (1_020..1_380).contains(&minute);
            if occupied {
                background + 400.0 + if i % 17 < 4 { 1_200.0 } else { 0.0 }
            } else {
                background
            }
        });
        let truth = LabelSeries::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, len, |i| {
            let minute = i % 1_440;
            (360..480).contains(&minute) || (1_020..1_380).contains(&minute)
        });
        (trace, truth)
    }

    fn no_prior() -> HmmDetector {
        HmmDetector {
            night_prior: None,
            ..HmmDetector::default()
        }
    }

    #[test]
    fn hmm_detects_occupancy() {
        let (trace, truth) = synthetic(3);
        let inferred = no_prior().detect(&trace);
        let c = truth.confusion(&inferred).unwrap();
        assert!(c.accuracy() > 0.9, "accuracy {}", c.accuracy());
        assert!(c.mcc() > 0.75, "mcc {}", c.mcc());
    }

    #[test]
    fn flat_trace_single_state() {
        let flat = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 1_440, 100.0);
        let inferred = no_prior().detect(&flat);
        // All one label — either works, but positive rate must be 0 or 1.
        let r = inferred.positive_rate();
        assert!(r == 0.0 || r == 1.0, "rate {r}");
    }

    #[test]
    fn tiny_trace_falls_back() {
        let t = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 20, 100.0);
        let inferred = no_prior().detect(&t);
        assert_eq!(inferred.positive_rate(), 0.0);
        let empty = PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_MINUTE, 0);
        assert!(no_prior().detect(&empty).is_empty());
    }

    #[test]
    fn log_sum_exp_edge_cases() {
        assert_eq!(log_sum_exp(f64::NEG_INFINITY, 1.0), 1.0);
        assert_eq!(log_sum_exp(1.0, f64::NEG_INFINITY), 1.0);
        let v = log_sum_exp(0.0, 0.0);
        assert!((v - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn viterbi_prefers_persistent_states() {
        let hmm = Hmm2 {
            log_pi: [0.5f64.ln(), 0.5f64.ln()],
            log_a: [[0.95f64.ln(), 0.05f64.ln()], [0.05f64.ln(), 0.95f64.ln()]],
            mu: [0.0, 10.0],
            var: [4.0, 4.0],
        };
        // One outlier inside a low-state run gets absorbed.
        let xs = [0.0, 0.5, 6.0, 0.2, -0.1, 0.4];
        let path = hmm.viterbi(&xs);
        assert_eq!(path, vec![0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn detector_name() {
        assert_eq!(HmmDetector::default().name(), "niom-hmm");
    }

    /// A deterministic per-seed household-ish trace for batch tests.
    fn varied(seed: u64, len: usize) -> PowerTrace {
        PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, len, |i| {
            let phase = (i as f64 + seed as f64 * 97.0) * 0.11;
            let base = 120.0 + 30.0 * phase.sin();
            let burst = if (i + seed as usize * 13) % 97 < 20 {
                600.0
            } else {
                0.0
            };
            base + burst
        })
    }

    #[test]
    fn batched_detect_matches_serial() {
        for detector in [HmmDetector::default(), no_prior()] {
            let meters: Vec<PowerTrace> = (0..5).map(|s| varied(s, 2_000)).collect();
            let refs: Vec<&PowerTrace> = meters.iter().collect();
            let batched = detector.detect_batch(&refs);
            for (m, got) in meters.iter().zip(&batched) {
                assert_eq!(*got, detector.detect(m));
            }
        }
    }

    #[test]
    fn batched_detect_handles_ragged_and_short_lanes() {
        let detector = no_prior();
        let meters: Vec<PowerTrace> = vec![
            varied(0, 2_000),
            varied(1, 500),
            PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 20, 100.0),
            varied(2, 2_000),
            PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_MINUTE, 0),
        ];
        let refs: Vec<&PowerTrace> = meters.iter().collect();
        let batched = detector.detect_batch(&refs);
        assert_eq!(batched.len(), meters.len());
        for (m, got) in meters.iter().zip(&batched) {
            assert_eq!(*got, detector.detect(m));
        }
    }
}
