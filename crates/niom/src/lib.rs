//! Non-Intrusive Occupancy Monitoring (NIOM).
//!
//! NIOM learns *when a home is occupied* purely from its smart-meter trace
//! — the first privacy attack of the paper (Figure 1, and the attack that
//! the CHPr defense of Figure 6 must defeat). The intuition: occupants
//! operate interactive appliances, raising both the level and the
//! burstiness of total power; an empty home shows only background loads.
//!
//! Two detectors are provided:
//!
//! * [`ThresholdDetector`] — the Chen et al. (BuildSys'13) style
//!   statistical detector: per-window mean/σ/range thresholds calibrated
//!   from the trace itself.
//! * [`HmmDetector`] — a two-state Gaussian hidden Markov model trained
//!   unsupervised with Baum–Welch and decoded with Viterbi, in the style of
//!   Kleiminger et al. (BuildSys'13).
//!
//! Both implement [`OccupancyDetector`], the interface the defense
//! evaluations attack through.
//!
//! # Examples
//!
//! ```
//! use homesim::{Home, HomeConfig};
//! use niom::{OccupancyDetector, ThresholdDetector};
//!
//! let home = Home::simulate(&HomeConfig::new(11).days(3));
//! let inferred = ThresholdDetector::default().detect(&home.meter);
//! let score = home.occupancy.confusion(&inferred)?;
//! assert!(score.accuracy() > 0.6); // well above chance
//! # Ok::<(), timeseries::TraceError>(())
//! ```

pub mod detector;
pub mod eval;
pub mod hmm;
pub mod supervised;
pub mod threshold;

pub use detector::OccupancyDetector;
pub use eval::{evaluate, Evaluation};
pub use hmm::{HmmDetector, WindowLane};
pub use supervised::LogisticDetector;
pub use threshold::ThresholdDetector;
