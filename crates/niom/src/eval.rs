//! Scoring occupancy attacks against ground truth.

use crate::detector::OccupancyDetector;
use serde::{Deserialize, Serialize};
use timeseries::labels::Confusion;
use timeseries::{LabelSeries, PowerTrace, TraceError};

/// The outcome of running one detector against one home.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Detector name.
    pub detector: String,
    /// Raw confusion counts.
    pub confusion: Confusion,
    /// Detection accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Matthews Correlation Coefficient in `[-1, 1]` — the paper's defense
    /// metric (0 ≈ random prediction).
    pub mcc: f64,
    /// Precision on the occupied class.
    pub precision: f64,
    /// Recall on the occupied class.
    pub recall: f64,
}

/// Runs `detector` on `meter` and scores it against `truth`.
///
/// # Errors
///
/// Returns an alignment error if the detector's output (or `truth`) does
/// not share the meter's geometry.
pub fn evaluate(
    detector: &dyn OccupancyDetector,
    meter: &PowerTrace,
    truth: &LabelSeries,
) -> Result<Evaluation, TraceError> {
    let inferred = detector.detect(meter);
    let confusion = truth.confusion(&inferred)?;
    Ok(Evaluation {
        detector: detector.name().to_string(),
        confusion,
        accuracy: confusion.accuracy(),
        mcc: confusion.mcc(),
        precision: confusion.precision(),
        recall: confusion.recall(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::ThresholdDetector;
    use timeseries::{Resolution, Timestamp};

    #[test]
    fn evaluation_on_synthetic_home() {
        let trace = PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 1_440, |i| {
            if (600..900).contains(&i) {
                1_800.0
            } else {
                90.0
            }
        });
        let truth = LabelSeries::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 1_440, |i| {
            (600..900).contains(&i)
        });
        let detector = ThresholdDetector {
            night_prior: None,
            ..ThresholdDetector::default()
        };
        let eval = evaluate(&detector, &trace, &truth).unwrap();
        assert_eq!(eval.detector, "niom-threshold");
        assert!(eval.accuracy > 0.95);
        assert!(eval.mcc > 0.9);
        assert!(eval.precision > 0.9);
        assert!(eval.recall > 0.9);
        assert_eq!(eval.confusion.total(), 1_440);
    }

    #[test]
    fn mismatched_truth_rejected() {
        let trace = PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_MINUTE, 100);
        let truth = LabelSeries::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 99, |_| false);
        assert!(evaluate(&ThresholdDetector::default(), &trace, &truth).is_err());
    }

    #[test]
    fn serializable_report() {
        let trace = PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_MINUTE, 60);
        let truth = LabelSeries::like_trace(&trace, false);
        let eval = evaluate(&ThresholdDetector::default(), &trace, &truth).unwrap();
        let json = serde_json::to_string(&eval).unwrap();
        assert!(json.contains("niom-threshold"));
    }
}
