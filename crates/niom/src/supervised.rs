//! A supervised occupancy detector: logistic regression over window
//! features, trained on labelled homes and applied to unseen ones.
//!
//! The unsupervised detectors calibrate per-trace; this one models the
//! *transferable* part of the occupancy side channel — what a company with
//! a few instrumented training homes (exactly the NILM-startup scenario of
//! the paper's Figure 3) can learn once and apply to every customer.

use crate::detector::OccupancyDetector;
use crate::threshold::apply_night_prior;
use serde::{Deserialize, Serialize};
use timeseries::{LabelSeries, PowerTrace, Resolution, Summary, Timestamp, WindowStats};

/// Number of features per window.
const N_FEATURES: usize = 4;

/// Logistic-regression occupancy detector over windowed features.
///
/// Features per window (standardized using training statistics):
/// log-mean power, log-σ, log-range, and the mean's margin over the
/// trace's own baseline percentile — the last feature is what makes the
/// model transfer across homes with different background loads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticDetector {
    /// Window length in samples.
    pub window: usize,
    weights: [f64; N_FEATURES],
    bias: f64,
    feat_mean: [f64; N_FEATURES],
    feat_std: [f64; N_FEATURES],
    /// Sleep prior, as in the unsupervised detectors.
    pub night_prior: Option<(u8, u8)>,
}

fn features(summary: &Summary, baseline: f64) -> [f64; N_FEATURES] {
    [
        (summary.mean + 1.0).ln(),
        (summary.stddev() + 1.0).ln(),
        (summary.range + 1.0).ln(),
        (summary.mean - baseline).max(0.0).ln_1p(),
    ]
}

fn baseline_watts(trace: &PowerTrace, window: usize) -> f64 {
    let means: Vec<f64> = WindowStats::new(trace, window)
        .map(|(_, s)| s.mean)
        .collect();
    baseline_from_window_means(&means)
}

fn baseline_from_window_means(means_in_order: &[f64]) -> f64 {
    if means_in_order.is_empty() {
        return 0.0;
    }
    let mut means = means_in_order.to_vec();
    means.sort_by(|a, b| a.total_cmp(b));
    means[means.len() / 10]
}

impl LogisticDetector {
    /// Trains on labelled homes: `(meter, ground-truth occupancy)` pairs.
    ///
    /// Plain batch gradient descent — the problem is 4-dimensional and
    /// convex, nothing fancier is warranted.
    ///
    /// # Panics
    ///
    /// Panics if `homes` is empty or any pair is misaligned.
    pub fn train(homes: &[(&PowerTrace, &LabelSeries)], window: usize) -> Self {
        assert!(!homes.is_empty(), "need training homes");
        // Collect window examples.
        let mut xs: Vec<[f64; N_FEATURES]> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for (meter, occupancy) in homes {
            assert_eq!(meter.len(), occupancy.len(), "misaligned training pair");
            let baseline = baseline_watts(meter, window);
            for (start, summary) in WindowStats::new(meter, window) {
                let end = (start + window).min(occupancy.len());
                let occupied = occupancy.labels()[start..end]
                    .iter()
                    .filter(|&&b| b)
                    .count()
                    * 2
                    >= end - start;
                xs.push(features(&summary, baseline));
                ys.push(if occupied { 1.0 } else { 0.0 });
            }
        }
        // Standardize.
        let n = xs.len() as f64;
        let mut feat_mean = [0.0; N_FEATURES];
        let mut feat_std = [0.0; N_FEATURES];
        for x in &xs {
            for k in 0..N_FEATURES {
                feat_mean[k] += x[k];
            }
        }
        for m in &mut feat_mean {
            *m /= n;
        }
        for x in &xs {
            for k in 0..N_FEATURES {
                feat_std[k] += (x[k] - feat_mean[k]).powi(2);
            }
        }
        for s in &mut feat_std {
            *s = (*s / n).sqrt().max(1e-6);
        }
        for x in &mut xs {
            for k in 0..N_FEATURES {
                x[k] = (x[k] - feat_mean[k]) / feat_std[k];
            }
        }
        // Gradient descent on logistic loss.
        let mut weights = [0.0; N_FEATURES];
        let mut bias = 0.0;
        let lr = 0.5;
        for _ in 0..300 {
            let mut grad_w = [0.0; N_FEATURES];
            let mut grad_b = 0.0;
            for (x, &y) in xs.iter().zip(&ys) {
                let z: f64 = bias + weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - y;
                for k in 0..N_FEATURES {
                    grad_w[k] += err * x[k];
                }
                grad_b += err;
            }
            for k in 0..N_FEATURES {
                weights[k] -= lr * grad_w[k] / n;
            }
            bias -= lr * grad_b / n;
        }
        LogisticDetector {
            window,
            weights,
            bias,
            feat_mean,
            feat_std,
            night_prior: Some((22, 7)),
        }
    }

    /// The learned weights (for inspection).
    pub fn weights(&self) -> (&[f64; N_FEATURES], f64) {
        (&self.weights, self.bias)
    }

    /// Applies the trained model over precomputed window summaries.
    ///
    /// `windows` must be exactly what `WindowStats::new(meter, self.window)`
    /// yields for a trace with this geometry, trailing partial window
    /// included. [`detect`](OccupancyDetector::detect) is a thin wrapper
    /// over this; the streaming layer calls it directly with summaries it
    /// accumulated chunk by chunk, keeping both paths byte-identical.
    pub fn detect_from_windows(
        &self,
        start: Timestamp,
        resolution: Resolution,
        len: usize,
        windows: &[(usize, Summary)],
    ) -> LabelSeries {
        let means: Vec<f64> = windows.iter().map(|(_, s)| s.mean).collect();
        let baseline = baseline_from_window_means(&means);
        let mut labels = vec![false; len];
        for (w_start, summary) in windows {
            let mut x = features(summary, baseline);
            for (k, v) in x.iter_mut().enumerate() {
                *v = (*v - self.feat_mean[k]) / self.feat_std[k];
            }
            let z: f64 = self.bias + self.weights.iter().zip(&x).map(|(w, v)| w * v).sum::<f64>();
            let occupied = z > 0.0;
            let end = (w_start + self.window).min(labels.len());
            labels[*w_start..end].fill(occupied);
        }
        if let Some((from, to)) = self.night_prior {
            apply_night_prior(&mut labels, start, resolution, from, to);
        }
        LabelSeries::new(start, resolution, labels)
    }
}

impl OccupancyDetector for LogisticDetector {
    fn detect(&self, meter: &PowerTrace) -> LabelSeries {
        let _span = obs::span("niom.logistic.detect");
        obs::counter_add("niom.logistic.samples", meter.len() as u64);
        let windows: Vec<(usize, Summary)> = WindowStats::new(meter, self.window).collect();
        self.detect_from_windows(meter.start(), meter.resolution(), meter.len(), &windows)
    }

    fn name(&self) -> &str {
        "niom-logistic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{Resolution, Timestamp};

    /// Synthetic home: occupied evenings with bursts over a noisy base.
    fn home(seed_phase: f64, days: usize) -> (PowerTrace, LabelSeries) {
        let len = days * 1440;
        let meter = PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, len, |i| {
            let minute = i % 1440;
            let base = 120.0 + 40.0 * ((i as f64 + seed_phase) * 0.21).sin();
            if (1_020..1_320).contains(&minute) || (390..480).contains(&minute) {
                base + if (i as f64 + seed_phase) as usize % 17 < 4 {
                    1_300.0
                } else {
                    180.0
                }
            } else {
                base
            }
        });
        let truth = LabelSeries::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, len, |i| {
            let minute = i % 1440;
            (1_020..1_320).contains(&minute)
                || (390..480).contains(&minute)
                || !(480..1_020).contains(&minute)
        });
        (meter, truth)
    }

    #[test]
    fn transfers_to_unseen_home() {
        let (m1, o1) = home(0.0, 4);
        let (m2, o2) = home(511.0, 4);
        let model = LogisticDetector::train(&[(&m1, &o1), (&m2, &o2)], 15);
        // A home it has never seen, with a different phase.
        let (m3, o3) = home(901.0, 4);
        let inferred = model.detect(&m3);
        let c = o3.confusion(&inferred).unwrap();
        assert!(c.accuracy() > 0.8, "accuracy {:.3}", c.accuracy());
        assert!(c.mcc() > 0.5, "mcc {:.3}", c.mcc());
    }

    #[test]
    fn learned_weights_point_the_right_way() {
        let (m, o) = home(0.0, 4);
        let model = LogisticDetector::train(&[(&m, &o)], 15);
        let (w, _) = model.weights();
        // Burstiness (σ) must contribute positively to "occupied".
        assert!(w[1] > 0.0, "sigma weight {w:?}");
    }

    #[test]
    fn name_and_serde() {
        let (m, o) = home(0.0, 2);
        let model = LogisticDetector::train(&[(&m, &o)], 15);
        assert_eq!(model.name(), "niom-logistic");
        let json = serde_json::to_string(&model).unwrap();
        let back: LogisticDetector = serde_json::from_str(&json).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    #[should_panic(expected = "need training homes")]
    fn empty_training_rejected() {
        LogisticDetector::train(&[], 15);
    }
}
