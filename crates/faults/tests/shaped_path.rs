//! Regression: `FlowFault` reorder/reboot-burst faults against the shaper
//! path. PR 3 proved the gateway properties on clean flow logs; this suite
//! extends them to *shaped* logs: shaping a faulted log must never panic,
//! must keep its exact-accounting invariants, and must never lower a
//! compromised device's verdict below `Quarantined`.

use faults::{FaultPlan, FlowFault};
use netsim::gateway::inject_compromise;
use netsim::{
    policies, simulate_home_network, DeviceType, FlowRecord, GatewayPolicy, SmartGateway, Verdict,
};
use timeseries::{LabelSeries, Resolution, Timestamp};

fn occupancy(days: usize) -> LabelSeries {
    LabelSeries::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, days * 1440, |i| {
        let m = i % 1440;
        !(540..1_020).contains(&m)
    })
}

/// The fault plans this regression pins: the untested reorder and
/// reboot-burst kinds, alone and stacked via the standard profile.
fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "reorder",
            FaultPlan::for_flows(vec![FlowFault::Reorder {
                prob: 0.5,
                max_skew_secs: 300,
            }]),
        ),
        (
            "reboot-burst",
            FaultPlan::for_flows(vec![FlowFault::RebootBurst {
                bursts: 8,
                flows_per_burst: 12,
            }]),
        ),
        ("network-profile", FaultPlan::network_profile(1.0)),
    ]
}

#[test]
fn shaping_a_faulted_log_never_panics_and_keeps_accounting_exact() {
    let inv = DeviceType::all().to_vec();
    for seed in [5u64, 17] {
        let trace = simulate_home_network(&inv, &occupancy(2), 2, seed);
        let ids: Vec<u32> = trace.devices.iter().map(|d| d.device_id).collect();
        for (plan_name, plan) in plans() {
            let faulted = plan.apply_flows(&trace, seed);
            let raw: u64 = faulted.flows.iter().map(FlowRecord::total_bytes).sum();
            for spec in policies() {
                let shaped = spec
                    .policy
                    .shape(&faulted.flows, &ids, trace.horizon_secs, seed);
                assert_eq!(
                    shaped.shaped_bytes,
                    raw + shaped.overhead_bytes,
                    "plan {plan_name}, policy {}",
                    spec.key
                );
                // Determinism survives the faulted input too.
                let again = spec
                    .policy
                    .shape(&faulted.flows, &ids, trace.horizon_secs, seed);
                assert_eq!(shaped, again, "plan {plan_name}, policy {}", spec.key);
            }
        }
    }
}

#[test]
fn shaping_a_faulted_log_never_unquarantines_a_compromised_device() {
    let inv = DeviceType::all().to_vec();
    let clean = simulate_home_network(&inv, &occupancy(4), 4, 31);
    let live = simulate_home_network(&inv, &occupancy(4), 4, 32);
    let ids: Vec<u32> = clean.devices.iter().map(|d| d.device_id).collect();
    let victim = ids[1];
    for spec in policies() {
        if spec.policy.aggregates() {
            // Behind the tunnel the gateway no longer sees per-device
            // flows, so per-device verdicts are out of scope here.
            continue;
        }
        // Profile on shaped *clean* traffic so the gateway knows the
        // policy's cover endpoint, then monitor a shaped faulted log with
        // an injected compromise.
        let mut gw = SmartGateway::new(GatewayPolicy::default());
        let shaped_clean = spec.policy.shape(&clean.flows, &ids, clean.horizon_secs, 1);
        gw.profile(&shaped_clean.flows, clean.horizon_secs);

        let mut compromised = live.clone();
        inject_compromise(
            &mut compromised.flows,
            victim,
            live.horizon_secs / 3,
            live.horizon_secs,
        );
        for (plan_name, plan) in plans() {
            let faulted = plan.apply_flows(&compromised, 33);
            let shaped = spec
                .policy
                .shape(&faulted.flows, &ids, live.horizon_secs, 2);
            let verdicts = gw.monitor(&shaped.flows, live.horizon_secs);
            let verdict = verdicts.get(&victim).copied();
            assert_eq!(
                verdict,
                Some(Verdict::Quarantined),
                "plan {plan_name}, policy {}: compromised device slipped to {verdict:?}",
                spec.key
            );
            // And the verdict on the faulted+shaped log is never *less*
            // severe than on the shaped log without faults.
            let unfaulted = spec
                .policy
                .shape(&compromised.flows, &ids, live.horizon_secs, 2);
            let baseline = gw.monitor(&unfaulted.flows, live.horizon_secs);
            let base_severity = baseline
                .get(&victim)
                .map(|v| v.severity())
                .unwrap_or_default();
            assert!(
                verdict.map(|v| v.severity()).unwrap_or_default() >= base_severity,
                "plan {plan_name}, policy {}: faults lowered the verdict",
                spec.key
            );
        }
    }
}
