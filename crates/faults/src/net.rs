//! Flow-log fault application: loss, reordering, reboot chatter.

use crate::spec::FlowFault;
use netsim::{FlowRecord, NetworkTrace};
use rand::Rng;
use timeseries::rng::{derive_seed, seeded_rng};

/// A flow log after fault injection, with bookkeeping for what changed.
///
/// Unlike power traces, flows carry no positional gap mask — a lost flow
/// simply vanishes — so the observable effect is the degraded log plus
/// the loss/injection counts for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedFlows {
    /// The surviving (and injected) flows, sorted by start time.
    pub flows: Vec<FlowRecord>,
    /// How many original flows were lost.
    pub dropped: usize,
    /// How many chatter flows were injected by reboot bursts.
    pub injected: usize,
}

impl FaultedFlows {
    /// Fraction of the original flows that were lost (0 when the
    /// original log was empty).
    pub fn loss_fraction(&self, original_len: usize) -> f64 {
        if original_len == 0 {
            0.0
        } else {
            self.dropped as f64 / original_len as f64
        }
    }
}

/// Endpoint id used by injected reboot-chatter flows (DHCP/NTP/cloud
/// re-registration). Kept outside every device's simulated endpoint pool
/// (`device_id * 100 + slot`) by using the 0 block no device owns.
const REBOOT_ENDPOINT: u32 = 7;

/// Applies flow faults in order, each on its own derived RNG stream.
/// Called via [`crate::FaultPlan::apply_flows`].
pub(crate) fn apply_flow_faults(
    trace: &NetworkTrace,
    faults: &[FlowFault],
    seed: u64,
) -> FaultedFlows {
    let mut flows = trace.flows.clone();
    let mut dropped = 0usize;
    let mut injected = 0usize;
    for (index, fault) in faults.iter().enumerate() {
        let stream = derive_seed(seed, &format!("fault:{index}:{}", fault.label()));
        let mut rng = seeded_rng(stream);
        match *fault {
            FlowFault::Loss { prob } => {
                let prob = prob.clamp(0.0, 1.0);
                let before = flows.len();
                flows.retain(|_| rng.gen::<f64>() >= prob);
                dropped += before - flows.len();
            }
            FlowFault::Reorder {
                prob,
                max_skew_secs,
            } => {
                let prob = prob.clamp(0.0, 1.0);
                if max_skew_secs > 0 {
                    for f in flows.iter_mut() {
                        if rng.gen::<f64>() < prob {
                            let skew = rng.gen_range(0..=max_skew_secs) as i64;
                            let sign = if rng.gen::<bool>() { 1 } else { -1 };
                            let start = f.start_secs as i64 + sign * skew;
                            f.start_secs = start.max(0) as u64;
                        }
                    }
                }
            }
            FlowFault::RebootBurst {
                bursts,
                flows_per_burst,
            } => {
                if trace.devices.is_empty() || trace.horizon_secs == 0 {
                    continue;
                }
                for _ in 0..bursts {
                    let device = trace.devices[rng.gen_range(0..trace.devices.len())].device_id;
                    let at = rng.gen_range(0..trace.horizon_secs);
                    for k in 0..flows_per_burst {
                        flows.push(FlowRecord {
                            start_secs: (at + k as u64).min(trace.horizon_secs - 1),
                            duration_secs: 1,
                            device_id: device,
                            bytes_up: rng.gen_range(100..600),
                            bytes_down: rng.gen_range(100..1_200),
                            endpoint: REBOOT_ENDPOINT,
                        });
                        injected += 1;
                    }
                }
            }
        }
    }
    // Restore the log invariant (sorted by start time) after skew and
    // injection. Stable sort keeps the deterministic order of ties.
    flows.sort_by_key(|f| f.start_secs);
    obs::counter_add("faults.flows.dropped", dropped as u64);
    obs::counter_add("faults.flows.injected", injected as u64);
    FaultedFlows {
        flows,
        dropped,
        injected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use netsim::device::DeviceType;
    use timeseries::{LabelSeries, Resolution, Timestamp};

    fn sample_trace() -> NetworkTrace {
        let occupancy =
            LabelSeries::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 2 * 1_440, |i| {
                i % 1_440 < 480
            });
        netsim::simulate_home_network(
            &[DeviceType::IpCamera, DeviceType::SmartPlug],
            &occupancy,
            2,
            3,
        )
    }

    #[test]
    fn loss_removes_roughly_the_expected_fraction() {
        let trace = sample_trace();
        let out = FaultPlan::for_flows(vec![FlowFault::Loss { prob: 0.3 }]).apply_flows(&trace, 1);
        let frac = out.loss_fraction(trace.flows.len());
        assert!((0.2..=0.4).contains(&frac), "loss fraction {frac}");
        assert_eq!(out.flows.len() + out.dropped, trace.flows.len());
    }

    #[test]
    fn reorder_keeps_the_log_sorted_and_complete() {
        let trace = sample_trace();
        let out = FaultPlan::for_flows(vec![FlowFault::Reorder {
            prob: 0.5,
            max_skew_secs: 120,
        }])
        .apply_flows(&trace, 2);
        assert_eq!(out.flows.len(), trace.flows.len());
        assert!(out
            .flows
            .windows(2)
            .all(|w| w[0].start_secs <= w[1].start_secs));
        assert_ne!(out.flows, trace.flows, "skew should move some flows");
    }

    #[test]
    fn reboot_bursts_inject_chatter_on_real_devices() {
        let trace = sample_trace();
        let out = FaultPlan::for_flows(vec![FlowFault::RebootBurst {
            bursts: 3,
            flows_per_burst: 6,
        }])
        .apply_flows(&trace, 4);
        assert_eq!(out.injected, 18);
        assert_eq!(out.flows.len(), trace.flows.len() + 18);
        let chatter: Vec<_> = out
            .flows
            .iter()
            .filter(|f| f.endpoint == REBOOT_ENDPOINT)
            .collect();
        assert_eq!(chatter.len(), 18);
        for f in chatter {
            assert!(trace.type_of(f.device_id).is_some());
            assert!(f.start_secs < trace.horizon_secs);
        }
    }

    #[test]
    fn flow_faults_are_deterministic() {
        let trace = sample_trace();
        let plan = FaultPlan::network_profile(0.25);
        let a = plan.apply_flows(&trace, 7);
        let b = plan.apply_flows(&trace, 7);
        assert_eq!(a, b);
        let c = plan.apply_flows(&trace, 8);
        assert_ne!(a.flows, c.flows);
    }

    #[test]
    fn empty_flow_log_is_fine() {
        let mut trace = sample_trace();
        trace.flows.clear();
        trace.devices.clear();
        let out = FaultPlan::network_profile(1.0).apply_flows(&trace, 1);
        assert!(out.flows.is_empty());
        assert_eq!(out.loss_fraction(0), 0.0);
    }
}
