//! Deterministic fault injection for power traces and IoT network flows.
//!
//! The paper's attacks and defenses (NIOM, PowerPlay/FHMM, CHPr, the
//! Section IV smart gateway) are evaluated on clean, gap-free traces;
//! real smart-meter and IoT-traffic feeds suffer outages, dropped or
//! duplicated readings, clock skew, value spikes, NaN corruption, packet
//! loss, and reboot chatter. This crate injects exactly those defects —
//! **deterministically** — so the suite can measure how every conclusion
//! degrades with input quality instead of only reporting clean-input
//! point values (see `results/degradation_curves.json` and the
//! `robust.*` claims in `docs/CLAIMS.md`).
//!
//! # Determinism rules
//!
//! Fault injection is a pure function of `(input, plan, seed)`:
//!
//! * every fault in a [`FaultPlan`] draws from its own RNG stream,
//!   seeded as `derive_seed(seed, "fault:<index>:<kind>")`, so inserting
//!   or removing one fault never perturbs the randomness of the others;
//! * faults apply in plan order — composition is explicit, not
//!   commutative (an outage over a spike erases the spike);
//! * no wall-clock, thread identity, or iteration-order dependence
//!   anywhere, so faulted experiments stay byte-identical across
//!   `RAYON_NUM_THREADS` settings like the clean ones.
//!
//! # Gap markers
//!
//! Faults that destroy a reading (outages, drops, NaN corruption) do not
//! silently fabricate data: the result is a [`FaultyTrace`] carrying an
//! explicit per-sample gap mask next to the raw (possibly non-finite)
//! values. Downstream stages choose a [`GapFill`] policy to obtain a
//! valid [`timeseries::PowerTrace`] and can score themselves only on real samples
//! via [`timeseries::LabelSeries::confusion_where`].
//!
//! # Examples
//!
//! ```
//! use faults::{FaultPlan, GapFill, TraceFault};
//! use timeseries::{PowerTrace, Resolution, Timestamp};
//!
//! let clean = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 1_440, 200.0);
//! let plan = FaultPlan::new(vec![
//!     TraceFault::Outage { fraction: 0.10, mean_len: 30 },
//!     TraceFault::Drop { prob: 0.02 },
//! ]);
//! let faulted = plan.apply_trace(&clean, 42);
//! assert!(faulted.gap_fraction() > 0.05);
//! // Same seed, same plan — bit-identical corruption.
//! assert_eq!(faulted.gaps(), plan.apply_trace(&clean, 42).gaps());
//! let filled = faulted.fill(GapFill::Hold);
//! assert_eq!(filled.len(), clean.len());
//! ```

#![warn(missing_docs)]

pub mod net;
pub mod spec;
pub mod store;
pub mod trace;

pub use net::FaultedFlows;
pub use spec::{FaultPlan, FlowFault, TraceFault};
pub use store::{StoreFault, StoreFaultInjector};
pub use trace::{FaultyTrace, GapFill};
