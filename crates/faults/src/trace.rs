//! Power-trace fault application: gap masks, corruption, and fill policies.

use crate::spec::TraceFault;
use rand::Rng;
use timeseries::rng::{derive_seed, seeded_rng};
use timeseries::{PowerTrace, Resolution, Timestamp};

/// How to bridge gap samples when converting a [`FaultyTrace`] back into
/// a valid [`PowerTrace`] (whose constructor rejects non-finite values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapFill {
    /// Replace gaps with 0 W — the "meter reports nothing" reading most
    /// head-end systems materialise.
    Zero,
    /// Hold the last valid reading (leading gaps fall back to the first
    /// valid reading, or 0 W if the whole trace is gone).
    Hold,
    /// Linear interpolation between the valid neighbours (edges hold).
    Linear,
}

/// A power trace after fault injection: raw values (possibly NaN where
/// corruption landed) plus an explicit per-sample gap mask.
///
/// Downstream code must either consume the mask (gap-aware scoring via
/// [`timeseries::LabelSeries::confusion_where`]) or choose a [`GapFill`]
/// policy to obtain a valid [`PowerTrace`]. There is no accessor that
/// silently hands out the NaN-bearing values as a clean trace.
#[derive(Debug, Clone)]
pub struct FaultyTrace {
    start: Timestamp,
    resolution: Resolution,
    values: Vec<f64>,
    gaps: Vec<bool>,
}

// Bitwise value equality so that two runs producing identical corruption
// (including NaN placeholders) compare equal — the property the
// determinism tests assert.
impl PartialEq for FaultyTrace {
    fn eq(&self, other: &Self) -> bool {
        self.start == other.start
            && self.resolution == other.resolution
            && self.gaps == other.gaps
            && self.values.len() == other.values.len()
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

impl FaultyTrace {
    /// Wraps raw (possibly dirty) samples, marking every non-finite value
    /// as a gap. This is the ingestion path for external feeds that may
    /// already contain NaN/inf placeholders.
    pub fn from_raw(start: Timestamp, resolution: Resolution, values: Vec<f64>) -> FaultyTrace {
        let gaps = values.iter().map(|v| !v.is_finite()).collect();
        FaultyTrace {
            start,
            resolution,
            values,
            gaps,
        }
    }

    /// A clean trace wrapped with an all-false gap mask.
    pub fn from_clean(trace: &PowerTrace) -> FaultyTrace {
        FaultyTrace {
            start: trace.start(),
            resolution: trace.resolution(),
            values: trace.samples().to_vec(),
            gaps: vec![false; trace.len()],
        }
    }

    /// Number of samples (gaps included).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the trace holds no samples at all.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Timestamp of the first sample slot.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// Sampling resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The raw sample values; entries where [`gaps`](Self::gaps) is
    /// `true` are meaningless (and may be NaN).
    pub fn raw_values(&self) -> &[f64] {
        &self.values
    }

    /// The per-sample gap mask: `true` means the reading was destroyed.
    pub fn gaps(&self) -> &[bool] {
        &self.gaps
    }

    /// Number of gap samples.
    pub fn gap_count(&self) -> usize {
        self.gaps.iter().filter(|&&g| g).count()
    }

    /// Fraction of samples that are gaps (0 for an empty trace).
    pub fn gap_fraction(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.gap_count() as f64 / self.values.len() as f64
        }
    }

    /// The keep mask for gap-aware scoring: `true` where the sample is
    /// real. Pass straight to `LabelSeries::confusion_where`.
    pub fn keep_mask(&self) -> Vec<bool> {
        self.gaps.iter().map(|&g| !g).collect()
    }

    /// Bridges the gaps with the chosen policy and returns a valid
    /// [`PowerTrace`]. Negative fills clamp to 0 W so the result always
    /// satisfies the trace invariants.
    pub fn fill(&self, policy: GapFill) -> PowerTrace {
        let filled = match policy {
            GapFill::Zero => self
                .values
                .iter()
                .zip(&self.gaps)
                .map(|(&v, &g)| if g { 0.0 } else { v })
                .collect(),
            GapFill::Hold => {
                let mut out = Vec::with_capacity(self.values.len());
                let mut last = self.first_valid().unwrap_or(0.0);
                for (&v, &g) in self.values.iter().zip(&self.gaps) {
                    if !g {
                        last = v;
                    }
                    out.push(last);
                }
                out
            }
            GapFill::Linear => self.fill_linear(),
        };
        let clamped: Vec<f64> = filled.into_iter().map(|v| v.max(0.0)).collect();
        PowerTrace::new(self.start, self.resolution, clamped)
            .expect("gap fill produces finite non-negative samples")
    }

    fn first_valid(&self) -> Option<f64> {
        self.values
            .iter()
            .zip(&self.gaps)
            .find(|(_, &g)| !g)
            .map(|(&v, _)| v)
    }

    fn fill_linear(&self) -> Vec<f64> {
        let n = self.values.len();
        let mut out = vec![0.0; n];
        let mut prev: Option<(usize, f64)> = None;
        let mut i = 0;
        while i < n {
            if !self.gaps[i] {
                out[i] = self.values[i];
                prev = Some((i, self.values[i]));
                i += 1;
                continue;
            }
            // Run of gaps [i, j): find the next valid sample.
            let mut j = i;
            while j < n && self.gaps[j] {
                j += 1;
            }
            let next = if j < n {
                Some((j, self.values[j]))
            } else {
                None
            };
            match (prev, next) {
                (Some((pi, pv)), Some((ni, nv))) => {
                    for (k, slot) in out.iter_mut().enumerate().take(j).skip(i) {
                        let t = (k - pi) as f64 / (ni - pi) as f64;
                        *slot = pv + t * (nv - pv);
                    }
                }
                (Some((_, pv)), None) => out[i..j].fill(pv),
                (None, Some((_, nv))) => out[i..j].fill(nv),
                (None, None) => out[i..j].fill(0.0),
            }
            i = j;
        }
        out
    }
}

/// Applies trace faults in order, each on its own derived RNG stream.
/// Called via [`crate::FaultPlan::apply_trace`].
pub(crate) fn apply_trace_faults(
    trace: &PowerTrace,
    faults: &[TraceFault],
    seed: u64,
) -> FaultyTrace {
    let mut out = FaultyTrace::from_clean(trace);
    let mut injected: u64 = 0;
    for (index, fault) in faults.iter().enumerate() {
        let stream = derive_seed(seed, &format!("fault:{index}:{}", fault.label()));
        injected += apply_one(&mut out, fault, stream);
    }
    obs::counter_add("faults.injected", injected);
    obs::counter_add("faults.trace.gap_samples", out.gap_count() as u64);
    out
}

/// Applies a single fault in place; returns how many samples it touched.
fn apply_one(trace: &mut FaultyTrace, fault: &TraceFault, stream_seed: u64) -> u64 {
    let n = trace.values.len();
    if n == 0 {
        return 0;
    }
    let mut rng = seeded_rng(stream_seed);
    match *fault {
        TraceFault::Outage { fraction, mean_len } => {
            let fraction = fraction.clamp(0.0, 1.0);
            let mean_len = mean_len.max(1);
            let target = (fraction * n as f64).round() as usize;
            let mut destroyed = 0usize;
            let mut touched = 0u64;
            // Guard against pathological targets on tiny traces: at most
            // n window draws, each destroying >= 1 sample.
            for _ in 0..n {
                if destroyed >= target {
                    break;
                }
                let start = rng.gen_range(0..n);
                // Geometric-ish window length around mean_len.
                let len = 1 + (-(1.0 - rng.gen::<f64>()).ln() * mean_len as f64) as usize;
                for g in trace.gaps.iter_mut().skip(start).take(len) {
                    if !*g {
                        *g = true;
                        destroyed += 1;
                        touched += 1;
                    }
                }
            }
            touched
        }
        TraceFault::Drop { prob } => {
            let prob = prob.clamp(0.0, 1.0);
            let mut touched = 0u64;
            for g in trace.gaps.iter_mut() {
                if rng.gen::<f64>() < prob && !*g {
                    *g = true;
                    touched += 1;
                }
            }
            touched
        }
        TraceFault::Duplicate { prob } => {
            let prob = prob.clamp(0.0, 1.0);
            let mut touched = 0u64;
            for i in 1..n {
                if rng.gen::<f64>() < prob && !trace.gaps[i] && !trace.gaps[i - 1] {
                    trace.values[i] = trace.values[i - 1];
                    touched += 1;
                }
            }
            touched
        }
        TraceFault::ClockJitter { max_slots } => {
            if max_slots == 0 || n < 2 {
                return 0;
            }
            let mut touched = 0u64;
            // Displace each sample by a signed offset, last-writer-wins
            // into a fresh buffer; slots nobody lands on become gaps
            // (the reading arrived under another timestamp).
            let mut new_values = vec![f64::NAN; n];
            let mut new_gaps = vec![true; n];
            for i in 0..n {
                if trace.gaps[i] {
                    continue;
                }
                let offset = rng.gen_range(-(max_slots as i64)..=max_slots as i64);
                let j = (i as i64 + offset).clamp(0, n as i64 - 1) as usize;
                if offset != 0 {
                    touched += 1;
                }
                new_values[j] = trace.values[i];
                new_gaps[j] = false;
            }
            trace.values = new_values;
            trace.gaps = new_gaps;
            touched
        }
        TraceFault::Spike {
            prob,
            magnitude_watts,
        } => {
            let prob = prob.clamp(0.0, 1.0);
            let mut touched = 0u64;
            for i in 0..n {
                if rng.gen::<f64>() < prob && !trace.gaps[i] {
                    trace.values[i] = (trace.values[i] + magnitude_watts).max(0.0);
                    touched += 1;
                }
            }
            touched
        }
        TraceFault::NanCorrupt { prob } => {
            let prob = prob.clamp(0.0, 1.0);
            let mut touched = 0u64;
            for i in 0..n {
                if rng.gen::<f64>() < prob && !trace.gaps[i] {
                    trace.values[i] = f64::NAN;
                    trace.gaps[i] = true;
                    touched += 1;
                }
            }
            touched
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;

    fn clean(n: usize) -> PowerTrace {
        PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, n, |i| {
            100.0 + (i % 7) as f64 * 10.0
        })
    }

    #[test]
    fn from_raw_marks_non_finite_as_gaps() {
        let raw = vec![1.0, f64::NAN, 3.0, f64::INFINITY, 5.0];
        let t = FaultyTrace::from_raw(Timestamp::ZERO, Resolution::ONE_MINUTE, raw);
        assert_eq!(t.gaps(), &[false, true, false, true, false]);
        assert_eq!(t.gap_count(), 2);
        assert!((t.gap_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(t.keep_mask(), vec![true, false, true, false, true]);
    }

    #[test]
    fn outage_hits_roughly_the_target_fraction() {
        let t = clean(10_000);
        let plan = FaultPlan::new(vec![TraceFault::Outage {
            fraction: 0.25,
            mean_len: 20,
        }]);
        let f = plan.apply_trace(&t, 7);
        let got = f.gap_fraction();
        assert!(
            (0.20..=0.35).contains(&got),
            "outage fraction {got} far from 0.25"
        );
    }

    #[test]
    fn injection_is_deterministic_and_seed_sensitive() {
        let t = clean(2_000);
        let plan = FaultPlan::power_profile(0.25);
        let a = plan.apply_trace(&t, 11);
        let b = plan.apply_trace(&t, 11);
        assert_eq!(a, b);
        let c = plan.apply_trace(&t, 12);
        assert_ne!(a.gaps(), c.gaps(), "different seeds must decorrelate");
    }

    #[test]
    fn fault_streams_are_independent_of_plan_edits() {
        // Removing the *last* fault must not change what the earlier
        // faults did (per-fault derived streams, not one shared stream).
        let t = clean(1_000);
        let full = FaultPlan::new(vec![
            TraceFault::Drop { prob: 0.1 },
            TraceFault::NanCorrupt { prob: 0.1 },
        ]);
        let head = FaultPlan::new(vec![TraceFault::Drop { prob: 0.1 }]);
        let a = full.apply_trace(&t, 3);
        let b = head.apply_trace(&t, 3);
        // Every gap the head plan made is present in the full plan too.
        for (i, (&fg, &hg)) in a.gaps().iter().zip(b.gaps()).enumerate() {
            if hg {
                assert!(fg, "sample {i}: head-plan gap missing under full plan");
            }
        }
    }

    #[test]
    fn fill_policies_produce_valid_traces() {
        let raw = vec![f64::NAN, 100.0, f64::NAN, f64::NAN, 400.0, f64::NAN];
        let t = FaultyTrace::from_raw(Timestamp::ZERO, Resolution::ONE_MINUTE, raw);

        let zero = t.fill(GapFill::Zero);
        assert_eq!(zero.samples(), &[0.0, 100.0, 0.0, 0.0, 400.0, 0.0]);

        let hold = t.fill(GapFill::Hold);
        assert_eq!(hold.samples(), &[100.0, 100.0, 100.0, 100.0, 400.0, 400.0]);

        let lin = t.fill(GapFill::Linear);
        assert_eq!(lin.samples(), &[100.0, 100.0, 200.0, 300.0, 400.0, 400.0]);
    }

    #[test]
    fn fill_handles_all_gap_and_empty_traces() {
        let all_gap =
            FaultyTrace::from_raw(Timestamp::ZERO, Resolution::ONE_MINUTE, vec![f64::NAN; 4]);
        for policy in [GapFill::Zero, GapFill::Hold, GapFill::Linear] {
            assert_eq!(all_gap.fill(policy).samples(), &[0.0; 4]);
        }
        let empty = FaultyTrace::from_raw(Timestamp::ZERO, Resolution::ONE_MINUTE, vec![]);
        assert_eq!(empty.gap_fraction(), 0.0);
        assert!(empty.fill(GapFill::Linear).is_empty());
    }

    #[test]
    fn duplicate_and_spike_corrupt_without_gaps() {
        let t = clean(1_000);
        let f = FaultPlan::new(vec![
            TraceFault::Duplicate { prob: 0.3 },
            TraceFault::Spike {
                prob: 0.1,
                magnitude_watts: 2_000.0,
            },
        ])
        .apply_trace(&t, 5);
        assert_eq!(f.gap_count(), 0);
        assert_ne!(f.raw_values(), t.samples());
        // Corruption never breaks trace validity.
        let filled = f.fill(GapFill::Zero);
        assert!(filled.validate().is_ok());
    }

    #[test]
    fn clock_jitter_preserves_length_and_marks_vacated_slots() {
        let t = clean(500);
        let f = FaultPlan::new(vec![TraceFault::ClockJitter { max_slots: 3 }]).apply_trace(&t, 9);
        assert_eq!(f.len(), t.len());
        assert!(f.gap_count() > 0, "jitter should vacate some slots");
        assert!(f.gap_fraction() < 0.9, "jitter must not erase the trace");
    }

    #[test]
    fn faults_on_empty_and_single_sample_traces_do_not_panic() {
        let plan = FaultPlan::power_profile(1.0);
        let empty = PowerTrace::new(Timestamp::ZERO, Resolution::ONE_MINUTE, vec![]).unwrap();
        let f = plan.apply_trace(&empty, 1);
        assert!(f.is_empty());
        let single = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 1, 42.0);
        let f = plan.apply_trace(&single, 1);
        assert_eq!(f.len(), 1);
        let _ = f.fill(GapFill::Linear);
    }
}
