//! The fault-model catalogue and composable plans.

use crate::net::{apply_flow_faults, FaultedFlows};
use crate::store::StoreFault;
use crate::trace::{apply_trace_faults, FaultyTrace};
use netsim::NetworkTrace;
use timeseries::PowerTrace;

/// One fault model applied to a smart-meter power trace.
///
/// All probabilities and fractions are in `[0, 1]`; constructors of
/// [`FaultPlan`] clamp them, so a plan built from an arbitrary intensity
/// knob is always well-formed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceFault {
    /// Meter outage windows: contiguous runs of readings are lost until
    /// roughly `fraction` of the trace is gone. Window lengths draw from
    /// a geometric-ish distribution around `mean_len` samples.
    Outage {
        /// Target fraction of samples destroyed, `[0, 1]`.
        fraction: f64,
        /// Mean outage window length in samples (≥ 1).
        mean_len: usize,
    },
    /// Independently dropped readings: each sample is lost with
    /// probability `prob` (telemetry loss, not a meter fault).
    Drop {
        /// Per-sample drop probability.
        prob: f64,
    },
    /// Duplicated (stuck) readings: each sample is replaced by its
    /// predecessor with probability `prob`. The reading *exists* — it is
    /// wrong, not missing — so this marks no gap.
    Duplicate {
        /// Per-sample duplication probability.
        prob: f64,
    },
    /// Clock jitter: each sample is displaced by up to `max_slots`
    /// sample slots, modelling skewed meter clocks and late telemetry.
    ClockJitter {
        /// Maximum displacement in sample slots (≥ 1 to have any effect).
        max_slots: usize,
    },
    /// Additive value spikes (EMI, register glitches): with probability
    /// `prob` a sample gains `magnitude_watts`.
    Spike {
        /// Per-sample spike probability.
        prob: f64,
        /// Spike height in watts.
        magnitude_watts: f64,
    },
    /// NaN corruption: with probability `prob` a sample becomes NaN —
    /// the classic parse-failure placeholder — which the gap mask then
    /// marks explicitly.
    NanCorrupt {
        /// Per-sample corruption probability.
        prob: f64,
    },
}

impl TraceFault {
    /// A short stable label, mixed into the fault's derived RNG seed.
    pub fn label(&self) -> &'static str {
        match self {
            TraceFault::Outage { .. } => "outage",
            TraceFault::Drop { .. } => "drop",
            TraceFault::Duplicate { .. } => "duplicate",
            TraceFault::ClockJitter { .. } => "clock-jitter",
            TraceFault::Spike { .. } => "spike",
            TraceFault::NanCorrupt { .. } => "nan",
        }
    }
}

/// One fault model applied to a network flow log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowFault {
    /// Packet loss: each flow record is lost entirely with probability
    /// `prob` (its packets never reached the observation point).
    Loss {
        /// Per-flow loss probability.
        prob: f64,
    },
    /// Reordering / late arrival: with probability `prob` a flow's start
    /// time is displaced by up to `max_skew_secs`, then the log is
    /// re-sorted by start time.
    Reorder {
        /// Per-flow displacement probability.
        prob: f64,
        /// Maximum displacement in seconds.
        max_skew_secs: u64,
    },
    /// Device reboot bursts: `bursts` times, a random device emits a
    /// burst of `flows_per_burst` short chatter flows (DHCP, NTP,
    /// cloud re-registration) at a random instant.
    RebootBurst {
        /// Number of reboot events injected.
        bursts: usize,
        /// Chatter flows per reboot.
        flows_per_burst: usize,
    },
}

impl FlowFault {
    /// A short stable label, mixed into the fault's derived RNG seed.
    pub fn label(&self) -> &'static str {
        match self {
            FlowFault::Loss { .. } => "loss",
            FlowFault::Reorder { .. } => "reorder",
            FlowFault::RebootBurst { .. } => "reboot",
        }
    }
}

/// A composable, seeded fault plan: trace faults and flow faults applied
/// in order. The plan itself carries no seed — the same plan replayed
/// with the same seed reproduces the same corruption bit-for-bit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Power-trace faults, applied in order.
    pub trace_faults: Vec<TraceFault>,
    /// Flow-log faults, applied in order.
    pub flow_faults: Vec<FlowFault>,
    /// Checkpoint-store faults, applied in order per store write (see
    /// [`crate::StoreFaultInjector`]).
    pub store_faults: Vec<StoreFault>,
}

impl FaultPlan {
    /// A plan over trace faults only.
    pub fn new(trace_faults: Vec<TraceFault>) -> FaultPlan {
        FaultPlan {
            trace_faults,
            ..FaultPlan::default()
        }
    }

    /// A plan over flow faults only.
    pub fn for_flows(flow_faults: Vec<FlowFault>) -> FaultPlan {
        FaultPlan {
            flow_faults,
            ..FaultPlan::default()
        }
    }

    /// A plan over checkpoint-store faults only.
    pub fn for_store(store_faults: Vec<StoreFault>) -> FaultPlan {
        FaultPlan {
            store_faults,
            ..FaultPlan::default()
        }
    }

    /// The standard power-feed corruption profile at a given intensity
    /// `x ∈ [0, 1]` — the knob the `degradation_curves` experiment
    /// sweeps. Composition at intensity `x`:
    ///
    /// * outage windows covering `0.5·x` of the trace (mean 45 samples),
    /// * independent drops at `0.2·x`,
    /// * stuck/duplicated readings at `0.15·x`,
    /// * NaN corruption at `0.1·x`,
    /// * 2 kW spikes at `0.05·x`,
    /// * clock jitter of up to 2 slots once `x ≥ 0.25`.
    ///
    /// Intensity 0 is the identity plan (no faults).
    pub fn power_profile(intensity: f64) -> FaultPlan {
        let x = intensity.clamp(0.0, 1.0);
        if x == 0.0 {
            return FaultPlan::default();
        }
        let mut trace_faults = vec![
            TraceFault::Outage {
                fraction: 0.5 * x,
                mean_len: 45,
            },
            TraceFault::Drop { prob: 0.2 * x },
            TraceFault::Duplicate { prob: 0.15 * x },
            TraceFault::NanCorrupt { prob: 0.1 * x },
            TraceFault::Spike {
                prob: 0.05 * x,
                magnitude_watts: 2_000.0,
            },
        ];
        if x >= 0.25 {
            trace_faults.push(TraceFault::ClockJitter { max_slots: 2 });
        }
        FaultPlan::new(trace_faults)
    }

    /// The standard network-feed corruption profile at intensity
    /// `x ∈ [0, 1]`: flow loss at `0.3·x`, reordering at `0.2·x` with up
    /// to 60 s skew, and `⌈4·x⌉` reboot bursts of 6 chatter flows.
    pub fn network_profile(intensity: f64) -> FaultPlan {
        let x = intensity.clamp(0.0, 1.0);
        if x == 0.0 {
            return FaultPlan::default();
        }
        FaultPlan::for_flows(vec![
            FlowFault::Loss { prob: 0.3 * x },
            FlowFault::Reorder {
                prob: 0.2 * x,
                max_skew_secs: 60,
            },
            FlowFault::RebootBurst {
                bursts: (4.0 * x).ceil() as usize,
                flows_per_burst: 6,
            },
        ])
    }

    /// The standard checkpoint-storage corruption profile at intensity
    /// `x ∈ [0, 1]` — the knob the `recovery_soak` experiment sweeps.
    /// Composition at intensity `x`:
    ///
    /// * transient write failures at `0.3·x` (up to 2 retries needed),
    /// * torn writes at `0.08·x`,
    /// * single-byte bit flips at `0.08·x`,
    /// * stale-generation replays at `0.08·x`.
    ///
    /// Intensity 0 is the identity plan (no faults).
    pub fn store_profile(intensity: f64) -> FaultPlan {
        let x = intensity.clamp(0.0, 1.0);
        if x == 0.0 {
            return FaultPlan::default();
        }
        FaultPlan::for_store(vec![
            StoreFault::Transient {
                prob: 0.3 * x,
                max_failures: 2,
            },
            StoreFault::TornWrite { prob: 0.08 * x },
            StoreFault::BitFlip { prob: 0.08 * x },
            StoreFault::StaleReplay { prob: 0.08 * x },
        ])
    }

    /// `true` when the plan injects nothing.
    pub fn is_identity(&self) -> bool {
        self.trace_faults.is_empty() && self.flow_faults.is_empty() && self.store_faults.is_empty()
    }

    /// Applies the plan's trace faults to a power trace.
    ///
    /// Deterministic in `(trace, plan, seed)`; see the crate docs for
    /// the seed-derivation rule. Records the `faults.injected` and
    /// `faults.trace.gap_samples` counters when the obs layer is on.
    pub fn apply_trace(&self, trace: &PowerTrace, seed: u64) -> FaultyTrace {
        apply_trace_faults(trace, &self.trace_faults, seed)
    }

    /// Applies the plan's flow faults to a network trace's flow log.
    ///
    /// Deterministic in `(trace, plan, seed)`. Records the
    /// `faults.flows.dropped` and `faults.flows.injected` counters when
    /// the obs layer is on.
    pub fn apply_flows(&self, trace: &NetworkTrace, seed: u64) -> FaultedFlows {
        apply_flow_faults(trace, &self.flow_faults, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{Resolution, Timestamp};

    #[test]
    fn profile_is_identity_at_zero_and_grows_with_intensity() {
        assert!(FaultPlan::power_profile(0.0).is_identity());
        assert!(FaultPlan::network_profile(0.0).is_identity());
        let mild = FaultPlan::power_profile(0.1);
        let harsh = FaultPlan::power_profile(0.5);
        assert!(!mild.is_identity());
        // Jitter only joins at x >= 0.25.
        assert_eq!(mild.trace_faults.len() + 1, harsh.trace_faults.len());
        // Out-of-range intensities clamp instead of panicking.
        assert_eq!(FaultPlan::power_profile(7.0), FaultPlan::power_profile(1.0));
    }

    #[test]
    fn labels_are_stable() {
        for (fault, label) in [
            (
                TraceFault::Outage {
                    fraction: 0.1,
                    mean_len: 10,
                },
                "outage",
            ),
            (TraceFault::Drop { prob: 0.1 }, "drop"),
            (TraceFault::NanCorrupt { prob: 0.1 }, "nan"),
        ] {
            assert_eq!(fault.label(), label);
        }
        assert_eq!(FlowFault::Loss { prob: 0.5 }.label(), "loss");
    }

    #[test]
    fn identity_plan_changes_nothing() {
        let trace = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 100, 150.0);
        let out = FaultPlan::default().apply_trace(&trace, 1);
        assert_eq!(out.gap_count(), 0);
        assert_eq!(out.fill(crate::GapFill::Zero), trace);
    }
}
