//! Storage-fault models for durable checkpoint stores.
//!
//! The resident fleet service (`crates/fleetd`) persists evicted and
//! round-synced home checkpoints through a pluggable store. Real storage
//! fails in ways the clean in-memory path never exercises: writes error
//! transiently, land torn, flip bits at rest, or silently lose the
//! latest write so a stale generation survives. [`StoreFault`] models
//! exactly those four defects; [`StoreFaultInjector`] turns a
//! [`FaultPlan`]'s store faults into **order-independent**
//! per-operation decisions, so injection stays deterministic even when
//! shards issue store operations concurrently.
//!
//! # Determinism rules
//!
//! Unlike trace/flow faults (which walk a whole input under one derived
//! RNG stream), store operations interleave across shard workers, so a
//! sequential stream would make injection depend on thread timing.
//! Instead every decision draws from a seed that is a pure function of
//! the *operation identity*:
//!
//! ```text
//! derive_seed(derive_seed(seed, "fault:<i>:<label>"), "home:<h>:gen:<g>")
//! ```
//!
//! Whether (and how) fault `i` hits the write of home `h` at generation
//! `g` is therefore the same at any `RAYON_NUM_THREADS`, matching the
//! crate-wide fault determinism contract (`docs/ROBUSTNESS.md`).

use crate::FaultPlan;
use rand::Rng;
use timeseries::rng::{derive_seed, seeded_rng, SeededRng};

/// One fault model applied to a checkpoint store operation.
///
/// Probabilities are in `[0, 1]`; [`FaultPlan::store_profile`] clamps
/// its intensity knob, so profile-built plans are always well-formed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StoreFault {
    /// Transient IO failure on a write: the first `1..=max_failures`
    /// attempts for an affected `(home, generation)` error, after which
    /// the write succeeds — the defect bounded retry loops exist for.
    Transient {
        /// Per-write probability that the operation fails at least once.
        prob: f64,
        /// Most failures injected before the write succeeds (≥ 1).
        max_failures: u32,
    },
    /// Torn write: the frame is truncated at a random byte, as if the
    /// process (or the disk) died mid-write. Detected on load as a
    /// truncation or CRC mismatch.
    TornWrite {
        /// Per-write probability of tearing the frame.
        prob: f64,
    },
    /// Bit rot: one byte of the stored frame is XOR-flipped. The frame
    /// CRC guarantees any single-byte flip is detected on load.
    BitFlip {
        /// Per-write probability of flipping a byte.
        prob: f64,
    },
    /// Stale-generation replay: the write is silently dropped, so the
    /// previous generation's frame survives in its place — the
    /// lost-acknowledged-write defect generation counters exist for.
    StaleReplay {
        /// Per-write probability of dropping the write.
        prob: f64,
    },
}

impl StoreFault {
    /// A short stable label, mixed into the fault's derived RNG seed.
    pub fn label(&self) -> &'static str {
        match self {
            StoreFault::Transient { .. } => "transient",
            StoreFault::TornWrite { .. } => "torn",
            StoreFault::BitFlip { .. } => "bitflip",
            StoreFault::StaleReplay { .. } => "stale",
        }
    }
}

/// Per-operation fault decisions for a checkpoint store, derived from
/// the store faults of a [`FaultPlan`].
///
/// The injector is pure: every method is a function of `(plan, seed,
/// home, generation)` only, so wrapping a store with the same plan and
/// seed reproduces the same injected corruption bit-for-bit regardless
/// of operation interleaving.
///
/// # Examples
///
/// ```
/// use faults::{FaultPlan, StoreFault, StoreFaultInjector};
///
/// let plan = FaultPlan::for_store(vec![StoreFault::BitFlip { prob: 0.5 }]);
/// let inj = StoreFaultInjector::new(&plan, 42);
/// let mut frame = vec![0u8; 64];
/// let hit = inj.corrupt_frame(3, 1, &mut frame).is_some();
/// // Same (home, generation) — same decision, same corruption.
/// let mut again = vec![0u8; 64];
/// assert_eq!(hit, inj.corrupt_frame(3, 1, &mut again).is_some());
/// assert_eq!(frame, again);
/// ```
#[derive(Debug, Clone)]
pub struct StoreFaultInjector {
    faults: Vec<(u64, StoreFault)>,
}

impl StoreFaultInjector {
    /// Builds an injector over `plan.store_faults`, deriving one seed
    /// per fault as `derive_seed(seed, "fault:<index>:<label>")` — the
    /// same discipline as trace/flow faults, so editing one fault never
    /// perturbs the randomness of the others.
    pub fn new(plan: &FaultPlan, seed: u64) -> StoreFaultInjector {
        StoreFaultInjector {
            faults: plan
                .store_faults
                .iter()
                .enumerate()
                .map(|(i, f)| (derive_seed(seed, &format!("fault:{i}:{}", f.label())), *f))
                .collect(),
        }
    }

    /// `true` when the injector holds no faults (every call is a no-op).
    pub fn is_identity(&self) -> bool {
        self.faults.is_empty()
    }

    fn rng_for(fault_seed: u64, home: u64, generation: u64) -> SeededRng {
        seeded_rng(derive_seed(
            fault_seed,
            &format!("home:{home}:gen:{generation}"),
        ))
    }

    /// Number of injected transient failures before the write of
    /// `(home, generation)` succeeds: 0 when no transient fault fires,
    /// otherwise a value in `1..=max_failures`.
    pub fn transient_put_failures(&self, home: u64, generation: u64) -> u32 {
        let mut failures = 0;
        for &(fault_seed, fault) in &self.faults {
            if let StoreFault::Transient { prob, max_failures } = fault {
                let mut rng = Self::rng_for(fault_seed, home, generation);
                if rng.gen::<f64>() < prob {
                    failures += rng.gen_range(1..=max_failures.max(1));
                }
            }
        }
        failures
    }

    /// Whether the write of `(home, generation)` is silently dropped,
    /// leaving the previous generation's frame in place. Records the
    /// `faults.store.stale` counter when it fires.
    pub fn stale_replay(&self, home: u64, generation: u64) -> bool {
        for &(fault_seed, fault) in &self.faults {
            if let StoreFault::StaleReplay { prob } = fault {
                let mut rng = Self::rng_for(fault_seed, home, generation);
                if rng.gen::<f64>() < prob {
                    obs::counter_add("faults.store.stale", 1);
                    return true;
                }
            }
        }
        false
    }

    /// Applies torn-write and bit-flip faults to `frame` in plan order,
    /// returning the label of the last fault that fired (`None` when the
    /// frame is untouched). Records the `faults.store.corrupted` counter
    /// per fired fault. Empty frames are never corrupted (there is no
    /// byte to tear or flip).
    pub fn corrupt_frame(
        &self,
        home: u64,
        generation: u64,
        frame: &mut Vec<u8>,
    ) -> Option<&'static str> {
        let mut applied = None;
        for &(fault_seed, fault) in &self.faults {
            if frame.is_empty() {
                break;
            }
            let mut rng = Self::rng_for(fault_seed, home, generation);
            match fault {
                StoreFault::TornWrite { prob } => {
                    if rng.gen::<f64>() < prob {
                        let cut = rng.gen_range(0..frame.len());
                        frame.truncate(cut);
                        obs::counter_add("faults.store.corrupted", 1);
                        applied = Some(fault.label());
                    }
                }
                StoreFault::BitFlip { prob } => {
                    if rng.gen::<f64>() < prob {
                        let at = rng.gen_range(0..frame.len());
                        let flip = rng.gen_range(1..=255u8);
                        frame[at] ^= flip;
                        obs::counter_add("faults.store.corrupted", 1);
                        applied = Some(fault.label());
                    }
                }
                StoreFault::Transient { .. } | StoreFault::StaleReplay { .. } => {}
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_plan() -> FaultPlan {
        FaultPlan::for_store(vec![
            StoreFault::Transient {
                prob: 0.5,
                max_failures: 3,
            },
            StoreFault::TornWrite { prob: 0.3 },
            StoreFault::BitFlip { prob: 0.3 },
            StoreFault::StaleReplay { prob: 0.3 },
        ])
    }

    #[test]
    fn decisions_are_order_independent_and_deterministic() {
        let a = StoreFaultInjector::new(&full_plan(), 9);
        let b = StoreFaultInjector::new(&full_plan(), 9);
        // Query b in a scrambled order — decisions must not change.
        let keys: Vec<(u64, u64)> = (0..50).map(|i| (i % 7, i / 7)).collect();
        let forward: Vec<u32> = keys
            .iter()
            .map(|&(h, g)| a.transient_put_failures(h, g))
            .collect();
        let backward: Vec<u32> = keys
            .iter()
            .rev()
            .map(|&(h, g)| b.transient_put_failures(h, g))
            .collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "per-op decisions must be pure in (home, generation)"
        );
        assert!(forward.iter().any(|&k| k > 0), "prob 0.5 must fire");
        assert!(forward.iter().all(|&k| k <= 3), "bounded by max_failures");
    }

    #[test]
    fn corruption_fires_and_reproduces_bit_for_bit() {
        let inj = StoreFaultInjector::new(&full_plan(), 11);
        let mut corrupted = 0;
        for home in 0..40u64 {
            let original: Vec<u8> = (0..64u32).map(|i| (i * 7 + home as u32) as u8).collect();
            let mut a = original.clone();
            let mut b = original.clone();
            let hit_a = inj.corrupt_frame(home, 2, &mut a);
            let hit_b = inj.corrupt_frame(home, 2, &mut b);
            assert_eq!(hit_a, hit_b);
            assert_eq!(a, b, "home {home}: corruption must be reproducible");
            if hit_a.is_some() {
                corrupted += 1;
                assert_ne!(a, original, "a fired fault must change the frame");
            }
        }
        assert!(corrupted > 0, "0.3 torn + 0.3 flip over 40 homes must hit");
    }

    #[test]
    fn seeds_decorrelate_and_identity_plan_is_inert() {
        let a = StoreFaultInjector::new(&full_plan(), 1);
        let b = StoreFaultInjector::new(&full_plan(), 2);
        let hits = |inj: &StoreFaultInjector| -> Vec<bool> {
            (0..64u64.pow(2))
                .map(|i| inj.stale_replay(i % 64, i / 64))
                .collect()
        };
        assert_ne!(hits(&a), hits(&b), "different seeds must differ");

        let none = StoreFaultInjector::new(&FaultPlan::default(), 1);
        assert!(none.is_identity());
        let mut frame = vec![1, 2, 3];
        assert!(none.corrupt_frame(0, 0, &mut frame).is_none());
        assert_eq!(frame, vec![1, 2, 3]);
        assert_eq!(none.transient_put_failures(0, 0), 0);
        assert!(!none.stale_replay(0, 0));
    }

    #[test]
    fn empty_frames_are_never_corrupted() {
        let inj = StoreFaultInjector::new(
            &FaultPlan::for_store(vec![StoreFault::TornWrite { prob: 1.0 }]),
            3,
        );
        let mut frame = Vec::new();
        assert!(inj.corrupt_frame(5, 5, &mut frame).is_none());
    }

    #[test]
    fn labels_are_stable() {
        for (fault, label) in [
            (
                StoreFault::Transient {
                    prob: 0.1,
                    max_failures: 1,
                },
                "transient",
            ),
            (StoreFault::TornWrite { prob: 0.1 }, "torn"),
            (StoreFault::BitFlip { prob: 0.1 }, "bitflip"),
            (StoreFault::StaleReplay { prob: 0.1 }, "stale"),
        ] {
            assert_eq!(fault.label(), label);
        }
    }
}
