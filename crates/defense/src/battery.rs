//! Battery-based load flattening (NILL-style; McLaughlin et al., CCS'11).

use crate::traits::{Defended, Defense, DefenseCost};
use serde::{Deserialize, Serialize};
use timeseries::rng::SeededRng;
use timeseries::PowerTrace;

/// A battery that levels the meter toward a slowly-adapting target, erasing
/// the step edges NILM identifies appliances by.
///
/// The controller tracks an exponentially-weighted mean of recent demand as
/// its target level; the battery charges when the home draws less and
/// discharges when it draws more, within its power and state-of-charge
/// limits. Unlike CHPr this costs real money: the battery itself, plus
/// round-trip losses (which appear as extra energy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryLeveler {
    /// Usable capacity, kWh.
    pub capacity_kwh: f64,
    /// Maximum charge/discharge power, watts.
    pub max_power_watts: f64,
    /// One-way efficiency (round trip = square of this).
    pub one_way_efficiency: f64,
    /// EWMA smoothing factor per sample for the target level, in `(0, 1)`.
    pub target_alpha: f64,
}

impl Default for BatteryLeveler {
    fn default() -> Self {
        BatteryLeveler {
            capacity_kwh: 12.0,
            max_power_watts: 5_000.0,
            one_way_efficiency: 0.95,
            target_alpha: 0.01,
        }
    }
}

impl Defense for BatteryLeveler {
    fn apply(&self, meter: &PowerTrace, _rng: &mut SeededRng) -> Defended {
        let _span = obs::span("defense.battery.apply");
        obs::counter_add("defense.battery.samples", meter.len() as u64);
        let res_h = meter.resolution().as_hours();
        let mut soc_kwh = self.capacity_kwh / 2.0;
        let mut target = meter.mean_watts();
        let mut out = Vec::with_capacity(meter.len());
        let mut losses_kwh = 0.0;
        for &w in meter.samples() {
            // Desired battery power: positive = charging (adds to meter).
            let desired = (target - w).clamp(-self.max_power_watts, self.max_power_watts);
            let actual = if desired > 0.0 {
                // Charging: limited by remaining capacity.
                let room_kwh = self.capacity_kwh - soc_kwh;
                let max_w = room_kwh / res_h / self.one_way_efficiency * 1_000.0;
                let p = desired.min(max_w.max(0.0));
                let stored = p * res_h / 1_000.0 * self.one_way_efficiency;
                soc_kwh += stored;
                losses_kwh += p * res_h / 1_000.0 - stored;
                p
            } else {
                // Discharging: limited by stored energy.
                let max_w = soc_kwh * self.one_way_efficiency / res_h * 1_000.0;
                let p = desired.max(-max_w.max(0.0));
                let drawn = -p * res_h / 1_000.0 / self.one_way_efficiency;
                soc_kwh -= drawn;
                losses_kwh += drawn + p * res_h / 1_000.0;
                p
            };
            out.push((w + actual).max(0.0));
            target = (1.0 - self.target_alpha) * target + self.target_alpha * w;
        }
        let trace = PowerTrace::new(meter.start(), meter.resolution(), out)
            .expect("levelled power is finite");
        Defended {
            trace,
            cost: DefenseCost {
                extra_energy_kwh: losses_kwh,
                billing_error_frac: 0.0,
                unserved_hot_water_liters: 0.0,
            },
        }
    }

    fn name(&self) -> &str {
        "battery-leveler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::rng::seeded_rng;
    use timeseries::{detect_edges, Resolution, Timestamp};

    fn bursty_meter() -> PowerTrace {
        PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 1_440, |i| {
            300.0 + if i % 40 < 5 { 1_500.0 } else { 0.0 }
        })
    }

    #[test]
    fn flattening_removes_edges() {
        let meter = bursty_meter();
        let out = BatteryLeveler::default().apply(&meter, &mut seeded_rng(1));
        let before = detect_edges(&meter, 200.0).len();
        let after = detect_edges(&out.trace, 200.0).len();
        assert!(before > 50);
        assert!(after < before / 5, "edges {before} → {after}");
    }

    #[test]
    fn variance_shrinks() {
        let meter = bursty_meter();
        let out = BatteryLeveler::default().apply(&meter, &mut seeded_rng(2));
        let var = |t: &PowerTrace| {
            let m = t.mean_watts();
            t.samples().iter().map(|w| (w - m).powi(2)).sum::<f64>() / t.len() as f64
        };
        assert!(var(&out.trace) < var(&meter) / 4.0);
    }

    #[test]
    fn energy_roughly_conserved_plus_losses() {
        let meter = bursty_meter();
        let out = BatteryLeveler::default().apply(&meter, &mut seeded_rng(3));
        let diff = out.trace.energy_kwh() - meter.energy_kwh();
        // The battery may end at a different SoC than it started, so allow
        // half the capacity either way, but nothing crazy.
        assert!(diff.abs() < 7.0, "energy drift {diff}");
        assert!(out.cost.extra_energy_kwh >= 0.0);
        assert!(
            out.cost.extra_energy_kwh < 3.0,
            "losses {}",
            out.cost.extra_energy_kwh
        );
    }

    #[test]
    fn small_battery_masks_less() {
        let meter = bursty_meter();
        let big = BatteryLeveler::default();
        let small = BatteryLeveler {
            capacity_kwh: 0.2,
            max_power_watts: 300.0,
            ..BatteryLeveler::default()
        };
        let e_big = detect_edges(&big.apply(&meter, &mut seeded_rng(4)).trace, 200.0).len();
        let e_small = detect_edges(&small.apply(&meter, &mut seeded_rng(4)).trace, 200.0).len();
        assert!(e_small > e_big, "small {e_small} vs big {e_big}");
    }

    #[test]
    fn meter_never_negative() {
        let meter = bursty_meter();
        let out = BatteryLeveler::default().apply(&meter, &mut seeded_rng(5));
        assert!(out.trace.samples().iter().all(|&w| w >= 0.0));
    }
}
