//! The user-controllable privacy knob (Section III-E).
//!
//! The paper's "holy grail": one dial trading privacy against cost. The
//! knob sweeps a defense's effort parameter and, for each setting, measures
//! both sides of the tradeoff — how well the NIOM attack still works (MCC)
//! and what the masking costs — producing the curve a user interface would
//! expose.

use crate::chpr::Chpr;
use crate::traits::Defense;
use niom::OccupancyDetector;
use serde::{Deserialize, Serialize};
use timeseries::rng::{derive_seed, seeded_rng};
use timeseries::{LabelSeries, PowerTrace, TraceError};

/// One point on the privacy/utility curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnobPoint {
    /// Knob setting in `[0, 1]` (0 = no masking, 1 = full effort).
    pub effort: f64,
    /// Occupancy-attack MCC after the defense (lower = more private;
    /// 0 ≈ random prediction).
    pub attack_mcc: f64,
    /// Occupancy-attack accuracy after the defense.
    pub attack_accuracy: f64,
    /// Extra energy the defense consumed, kWh.
    pub extra_energy_kwh: f64,
}

/// Sweeps CHPr masking effort to trace the privacy/utility curve.
#[derive(Debug, Clone)]
pub struct PrivacyKnob {
    /// The CHPr template whose effort is swept.
    pub chpr: Chpr,
    /// Effort settings to evaluate.
    pub settings: Vec<f64>,
}

impl Default for PrivacyKnob {
    fn default() -> Self {
        PrivacyKnob {
            chpr: Chpr::default(),
            settings: vec![0.0, 0.25, 0.5, 0.75, 1.0],
        }
    }
}

impl PrivacyKnob {
    /// Evaluates the curve: for each effort setting, defend `meter` and
    /// re-run `attack` against ground-truth `occupancy`.
    ///
    /// Settings are evaluated concurrently. Each setting draws from its own
    /// RNG stream derived as `derive_seed(seed, "setting:<index>")`, so the
    /// curve is a pure function of `(self, meter, occupancy, attack, seed)`
    /// — independent of both thread count and the number or order of other
    /// settings in the sweep.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if `occupancy` does not match `meter`.
    pub fn sweep(
        &self,
        meter: &PowerTrace,
        occupancy: &LabelSeries,
        attack: &(dyn OccupancyDetector + Sync),
        seed: u64,
    ) -> Result<Vec<KnobPoint>, TraceError> {
        let indexed: Vec<(usize, f64)> = self.settings.iter().copied().enumerate().collect();
        rayon::parallel_map(indexed, |(i, effort)| {
            let mut rng = seeded_rng(derive_seed(seed, &format!("setting:{i}")));
            let defended = self.chpr.with_effort(effort).apply(meter, &mut rng);
            let inferred = attack.detect(&defended.trace);
            let c = occupancy.confusion(&inferred)?;
            Ok(KnobPoint {
                effort,
                attack_mcc: c.mcc(),
                attack_accuracy: c.accuracy(),
                extra_energy_kwh: defended.cost.extra_energy_kwh,
            })
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use niom::ThresholdDetector;
    use timeseries::{Resolution, Timestamp};

    fn home_with_truth() -> (PowerTrace, LabelSeries) {
        let meter = PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 3 * 1440, |i| {
            let minute = i % 1440;
            if (1_020..1_320).contains(&minute) {
                160.0 + if i % 11 < 3 { 1_500.0 } else { 150.0 }
            } else {
                160.0 + 15.0 * ((i as f64) * 0.4).sin()
            }
        });
        let occupancy =
            LabelSeries::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 3 * 1440, |i| {
                let minute = i % 1440;
                (1_020..1_320).contains(&minute) || !(420..1_020).contains(&minute)
            });
        (meter, occupancy)
    }

    #[test]
    fn more_effort_less_mcc() {
        let (meter, occ) = home_with_truth();
        let knob = PrivacyKnob {
            settings: vec![0.0, 1.0],
            ..PrivacyKnob::default()
        };
        let points = knob
            .sweep(&meter, &occ, &ThresholdDetector::default(), 1)
            .unwrap();
        assert_eq!(points.len(), 2);
        assert!(
            points[1].attack_mcc < points[0].attack_mcc,
            "full effort {:.3} should beat none {:.3}",
            points[1].attack_mcc,
            points[0].attack_mcc
        );
    }

    #[test]
    fn points_independent_of_sweep_composition() {
        // Per-setting seed derivation: evaluating a setting alone gives
        // the same point as evaluating it inside a larger sweep at the
        // same index position.
        let (meter, occ) = home_with_truth();
        let full = PrivacyKnob {
            settings: vec![0.5, 1.0],
            ..PrivacyKnob::default()
        };
        let solo = PrivacyKnob {
            settings: vec![0.5],
            ..PrivacyKnob::default()
        };
        let attack = ThresholdDetector::default();
        let a = full.sweep(&meter, &occ, &attack, 9).unwrap();
        let b = solo.sweep(&meter, &occ, &attack, 9).unwrap();
        assert_eq!(a[0], b[0]);
        // And the whole sweep is reproducible.
        assert_eq!(a, full.sweep(&meter, &occ, &attack, 9).unwrap());
    }

    #[test]
    fn curve_is_serializable() {
        let p = KnobPoint {
            effort: 0.5,
            attack_mcc: 0.1,
            attack_accuracy: 0.6,
            extra_energy_kwh: 2.0,
        };
        let json = serde_json::to_string(&p).unwrap();
        assert!(json.contains("attack_mcc"));
    }

    #[test]
    fn misaligned_truth_rejected() {
        let (meter, _) = home_with_truth();
        let wrong = LabelSeries::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 10, |_| true);
        let knob = PrivacyKnob::default();
        assert!(knob
            .sweep(&meter, &wrong, &ThresholdDetector::default(), 2)
            .is_err());
    }
}
