//! Naive report-only obfuscation baselines: noise injection and smoothing.
//!
//! Unlike CHPr and battery levelling, these do not change the home's real
//! load — they falsify what the meter *reports*. That makes them free in
//! energy but costly in billing fidelity, and they serve as the weak
//! baselines in the defense ablation benches (the paper notes obfuscation
//! is "a blunt instrument").

use crate::traits::{Defended, Defense, DefenseCost};
use serde::{Deserialize, Serialize};
use timeseries::rng::{laplace, SeededRng};
use timeseries::PowerTrace;

/// Adds zero-mean Laplace noise to each reported sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseInjector {
    /// Laplace scale parameter, watts.
    pub scale_watts: f64,
}

impl NoiseInjector {
    /// Creates an injector with the given Laplace scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale_watts` is not finite and positive.
    pub fn new(scale_watts: f64) -> Self {
        assert!(
            scale_watts.is_finite() && scale_watts > 0.0,
            "scale must be positive"
        );
        NoiseInjector { scale_watts }
    }
}

impl Defense for NoiseInjector {
    fn apply(&self, meter: &PowerTrace, rng: &mut SeededRng) -> Defended {
        let trace = meter.map(|w| (w + laplace(rng, 0.0, self.scale_watts)).max(0.0));
        let billing_error_frac = if meter.energy_kwh() > 0.0 {
            (trace.energy_kwh() - meter.energy_kwh()).abs() / meter.energy_kwh()
        } else {
            0.0
        };
        Defended {
            trace,
            cost: DefenseCost {
                extra_energy_kwh: 0.0,
                billing_error_frac,
                ..Default::default()
            },
        }
    }

    fn name(&self) -> &str {
        "noise-injector"
    }
}

/// Replaces each reported sample with a trailing moving average.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Smoother {
    /// Moving-average window, samples.
    pub window: usize,
}

impl Smoother {
    /// Creates a smoother with the given window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be non-empty");
        Smoother { window }
    }
}

impl Defense for Smoother {
    fn apply(&self, meter: &PowerTrace, _rng: &mut SeededRng) -> Defended {
        let s = meter.samples();
        let mut out = Vec::with_capacity(s.len());
        let mut acc = 0.0;
        for i in 0..s.len() {
            acc += s[i];
            if i >= self.window {
                acc -= s[i - self.window];
            }
            out.push(acc / (i + 1).min(self.window) as f64);
        }
        let trace = PowerTrace::new(meter.start(), meter.resolution(), out)
            .expect("averages of finite samples are finite");
        // Total energy is nearly preserved; bill distortion is the residual.
        let billing_error_frac = if meter.energy_kwh() > 0.0 {
            (trace.energy_kwh() - meter.energy_kwh()).abs() / meter.energy_kwh()
        } else {
            0.0
        };
        Defended {
            trace,
            cost: DefenseCost {
                extra_energy_kwh: 0.0,
                billing_error_frac,
                ..Default::default()
            },
        }
    }

    fn name(&self) -> &str {
        "smoother"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::rng::seeded_rng;
    use timeseries::{detect_edges, Resolution, Timestamp};

    fn step_meter() -> PowerTrace {
        PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 600, |i| {
            if i % 60 < 10 {
                2_000.0
            } else {
                200.0
            }
        })
    }

    #[test]
    fn noise_preserves_mean_roughly() {
        let meter = step_meter();
        let out = NoiseInjector::new(100.0).apply(&meter, &mut seeded_rng(1));
        assert!((out.trace.mean_watts() - meter.mean_watts()).abs() < 40.0);
        assert!(out.cost.billing_error_frac < 0.1);
    }

    #[test]
    fn smoothing_removes_edges() {
        let meter = step_meter();
        let out = Smoother::new(30).apply(&meter, &mut seeded_rng(2));
        assert!(detect_edges(&out.trace, 300.0).len() < detect_edges(&meter, 300.0).len() / 2);
        assert!(out.cost.billing_error_frac < 0.12);
    }

    #[test]
    fn smoother_identity_with_window_one() {
        let meter = step_meter();
        let out = Smoother::new(1).apply(&meter, &mut seeded_rng(3));
        assert_eq!(out.trace, meter);
    }

    #[test]
    fn noise_never_negative() {
        let meter = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 500, 50.0);
        let out = NoiseInjector::new(300.0).apply(&meter, &mut seeded_rng(4));
        assert!(out.trace.samples().iter().all(|&w| w >= 0.0));
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn zero_window_rejected() {
        Smoother::new(0);
    }
}
