//! Differentially-private meter reporting: calibrated Laplace noise on
//! the NILM-visible aggregates.
//!
//! The NILM/NIOM attack surface is the *windowed* meter signal — every
//! detector in this workspace reduces the trace to non-overlapping
//! window statistics before inferring anything. [`DpNoise`] therefore
//! noises exactly that surface: one Laplace draw per reporting window,
//! calibrated so the window's *mean power* is ε-differentially private
//! with respect to a bounded change in any single reading
//! (sensitivity [`DpNoise::sensitivity_watts`]). The draw is added to
//! every sample of the window, so within-window shape is preserved but
//! the aggregate an attacker keys on carries the full noise.
//!
//! Unlike the load-shaping defenses (CHPr, battery), this is a
//! report-only mechanism — free in energy, costly in billing fidelity —
//! but unlike the naive [`NoiseInjector`](crate::NoiseInjector) baseline
//! its guarantee is *retraining-proof*: no attacker, however adaptive,
//! can beat the DP bound by fitting a better model to defended traces
//! (Wang et al., arXiv 2011.06205). The tournament experiment
//! (`crates/tournament`) pits it against exactly such an attacker.
//!
//! # Epsilon policy
//!
//! `epsilon` is the privacy budget *per reporting window*. Smaller is
//! stronger. Two special cases are part of the contract:
//!
//! * `epsilon == f64::INFINITY` — no privacy: the defense is the exact
//!   identity and consumes **zero** RNG draws, so a pipeline with the
//!   knob parked at ∞ is byte-identical to one with no DP stage at all.
//! * `epsilon <= 0` or NaN — rejected at construction; a nonsensical
//!   budget must not silently mean "no noise".

use crate::traits::{Defended, Defense, DefenseCost};
use serde::{Deserialize, Serialize};
use timeseries::rng::{laplace, SeededRng};
use timeseries::PowerTrace;

/// Report-only DP defense: per-window Laplace noise on the meter feed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpNoise {
    /// Privacy budget per reporting window; `f64::INFINITY` disables
    /// the mechanism entirely (exact identity, no RNG consumed).
    pub epsilon: f64,
    /// Reporting-window length in samples (the aggregate being
    /// protected is this window's mean power).
    pub window: usize,
    /// Bound on one reading's magnitude, watts — the sensitivity of the
    /// window *sum* to one reading; the mean's sensitivity is this
    /// divided by `window`.
    pub sensitivity_watts: f64,
}

impl DpNoise {
    /// Reporting window matching the NIOM detectors' default (15
    /// one-minute samples).
    pub const DEFAULT_WINDOW: usize = 15;
    /// Default per-reading bound: a 4kW whole-home swing.
    pub const DEFAULT_SENSITIVITY_WATTS: f64 = 4_000.0;

    /// Creates the mechanism with the default window and sensitivity.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is NaN or not positive (`f64::INFINITY` is
    /// allowed and means "off").
    pub fn new(epsilon: f64) -> Self {
        Self::with_window(
            epsilon,
            Self::DEFAULT_WINDOW,
            Self::DEFAULT_SENSITIVITY_WATTS,
        )
    }

    /// Creates the mechanism with an explicit window and sensitivity.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is NaN or not positive, `window` is zero, or
    /// `sensitivity_watts` is not finite and positive.
    pub fn with_window(epsilon: f64, window: usize, sensitivity_watts: f64) -> Self {
        assert!(
            !epsilon.is_nan() && epsilon > 0.0,
            "epsilon must be positive (INFINITY = off)"
        );
        assert!(window > 0, "window must be non-empty");
        assert!(
            sensitivity_watts.is_finite() && sensitivity_watts > 0.0,
            "sensitivity must be positive"
        );
        DpNoise {
            epsilon,
            window,
            sensitivity_watts,
        }
    }

    /// The Laplace scale (watts) applied to each window's mean power:
    /// `sensitivity / (window * epsilon)`. Zero at `epsilon == INFINITY`.
    pub fn noise_scale_watts(&self) -> f64 {
        if self.epsilon.is_infinite() {
            0.0
        } else {
            self.sensitivity_watts / (self.window as f64 * self.epsilon)
        }
    }
}

impl Defense for DpNoise {
    fn apply(&self, meter: &PowerTrace, rng: &mut SeededRng) -> Defended {
        obs::gauge_set(
            "defense.dp.epsilon",
            if self.epsilon.is_infinite() {
                -1.0
            } else {
                self.epsilon
            },
        );
        if self.epsilon.is_infinite() {
            // Contract: ∞ is the exact no-DP path — clone the trace and
            // touch neither the RNG nor the noise counters.
            return Defended {
                trace: meter.clone(),
                cost: DefenseCost::default(),
            };
        }
        let scale = self.noise_scale_watts();
        let samples = meter.samples();
        let mut out = Vec::with_capacity(samples.len());
        let mut windows = 0u64;
        let mut abs_distortion_wmin = 0.0f64; // watt-minutes... units of sample-watts
        for chunk in samples.chunks(self.window) {
            let draw = laplace(rng, 0.0, scale);
            windows += 1;
            for &w in chunk {
                let noised = (w + draw).max(0.0);
                abs_distortion_wmin += (noised - w).abs();
                out.push(noised);
            }
        }
        obs::counter_add("defense.dp.windows_noised", windows);
        let trace = PowerTrace::new(meter.start(), meter.resolution(), out)
            .expect("clamped finite samples stay finite");
        // Billing distortion as *per-window absolute* error, not the net
        // (which cancels in expectation and would hide the cost): the sum
        // of |noised - true| over samples, relative to total energy.
        let total_wmin: f64 = samples.iter().sum();
        let billing_error_frac = if total_wmin > 0.0 {
            abs_distortion_wmin / total_wmin
        } else {
            0.0
        };
        Defended {
            trace,
            cost: DefenseCost {
                extra_energy_kwh: 0.0,
                billing_error_frac,
                ..Default::default()
            },
        }
    }

    fn name(&self) -> &str {
        "dp-noise"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::rng::seeded_rng;
    use timeseries::{Resolution, Timestamp};

    fn meter() -> PowerTrace {
        PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, 900, |i| {
            if i % 90 < 25 {
                1_800.0
            } else {
                150.0
            }
        })
    }

    #[test]
    fn infinite_epsilon_is_exact_identity_and_consumes_no_rng() {
        use rand::RngCore;
        let meter = meter();
        let mut rng = seeded_rng(9);
        let mut untouched = rng.clone();
        let out = DpNoise::new(f64::INFINITY).apply(&meter, &mut rng);
        assert_eq!(out.trace, meter);
        assert_eq!(out.cost, DefenseCost::default());
        assert_eq!(
            rng.next_u64(),
            untouched.next_u64(),
            "identity path must not advance the RNG"
        );
    }

    #[test]
    fn noise_scale_is_calibrated() {
        let dp = DpNoise::with_window(2.0, 10, 4_000.0);
        assert_eq!(dp.noise_scale_watts(), 200.0);
        assert_eq!(DpNoise::new(f64::INFINITY).noise_scale_watts(), 0.0);
    }

    #[test]
    fn stronger_epsilon_distorts_billing_more() {
        let meter = meter();
        let strong = DpNoise::new(0.25).apply(&meter, &mut seeded_rng(3));
        let weak = DpNoise::new(8.0).apply(&meter, &mut seeded_rng(3));
        assert!(
            strong.cost.billing_error_frac > weak.cost.billing_error_frac,
            "{} <= {}",
            strong.cost.billing_error_frac,
            weak.cost.billing_error_frac
        );
        assert!(weak.cost.billing_error_frac > 0.0);
    }

    #[test]
    fn noised_trace_keeps_geometry_and_stays_nonnegative() {
        let meter = meter();
        let out = DpNoise::new(0.5)
            .try_apply(&meter, &mut seeded_rng(5))
            .expect("valid input");
        assert_eq!(out.trace.len(), meter.len());
        assert!(out.trace.samples().iter().all(|&w| w >= 0.0));
        assert_ne!(out.trace, meter);
    }

    #[test]
    fn whole_window_shares_one_draw() {
        // A constant trace shifts by a constant within each window.
        let meter = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 60, 500.0);
        let out = DpNoise::with_window(1.0, 15, 4_000.0).apply(&meter, &mut seeded_rng(7));
        for chunk in out.trace.samples().chunks(15) {
            assert!(chunk.iter().all(|&w| w == chunk[0]), "{chunk:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let meter = meter();
        let a = DpNoise::new(1.0).apply(&meter, &mut seeded_rng(11));
        let b = DpNoise::new(1.0).apply(&meter, &mut seeded_rng(11));
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        DpNoise::new(0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn nan_epsilon_rejected() {
        DpNoise::new(f64::NAN);
    }

    #[test]
    fn serde_round_trip() {
        let dp = DpNoise::new(2.0);
        let json = serde_json::to_string(&dp).unwrap();
        let back: DpNoise = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dp);
    }
}
