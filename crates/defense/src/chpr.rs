//! Combined Heat and Privacy (CHPr): masking occupancy with a water heater
//! (Chen et al., PerCom'14).

use crate::traits::{Defended, Defense, DefenseCost};
use crate::waterheater::WaterHeater;
use rand::Rng;
use timeseries::rng::SeededRng;
use timeseries::{PowerTrace, Summary, WindowStats};

/// The CHPr controller.
///
/// NIOM detects occupancy from elevated, bursty demand, so an empty home
/// betrays itself by going quiet. CHPr watches the home's recent demand
/// and, whenever it has been quiet for a while, fires the water-heater
/// element in occupancy-mimicking bursts — banking the heating the tank
/// needed anyway (after showers, and against standing losses) into the
/// statistically most revealing moments. Burst times and lengths are
/// randomized so the injected pattern cannot be filtered out.
///
/// The tank's thermal band bounds the deception: bursts stop at the safety
/// maximum, and comfort heating (tank below minimum) always runs — which
/// itself masks, since must-heat bursts are indistinguishable from privacy
/// bursts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chpr {
    /// The water heater to modulate.
    pub heater: WaterHeater,
    /// Demand σ (watts) below which a window counts as quiet.
    pub quiet_sigma_watts: f64,
    /// Window (samples) over which quietness is judged.
    pub quiet_window: usize,
    /// Target gap between masking bursts during quiet periods, seconds
    /// (jittered ±20 % so the injected pattern is not strictly periodic).
    /// Chosen so every NIOM-scale window of a quiet period contains at
    /// least one burst.
    pub mean_burst_gap_secs: f64,
    /// Burst length range, seconds.
    pub burst_secs: (f64, f64),
    /// Mean daily hot-water demand, litres (drawn while occupants shower
    /// etc.; CHPr itself does not know occupancy, the draws simply arrive).
    pub daily_draw_liters: f64,
}

impl Default for Chpr {
    fn default() -> Self {
        Chpr {
            heater: WaterHeater::fifty_gallon(),
            quiet_sigma_watts: 250.0,
            quiet_window: 15,
            mean_burst_gap_secs: 1_200.0,
            burst_secs: (60.0, 75.0),
            daily_draw_liters: 190.0,
        }
    }
}

impl Chpr {
    /// Scales masking effort: `fraction` in `[0, 1]` multiplies the burst
    /// rate (1 = full CHPr, 0 = water heater runs as a plain thermostat).
    /// Used by the privacy knob.
    pub fn with_effort(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "effort must be in [0,1]");
        if fraction <= f64::EPSILON {
            self.mean_burst_gap_secs = f64::INFINITY;
        } else {
            self.mean_burst_gap_secs = 1_200.0 / fraction;
        }
        self
    }
}

impl Defense for Chpr {
    fn apply(&self, meter: &PowerTrace, rng: &mut SeededRng) -> Defended {
        let _span = obs::span("defense.chpr.apply");
        obs::counter_add("defense.chpr.samples", meter.len() as u64);
        let res = meter.resolution().as_secs() as f64;
        let n = meter.len();
        let mut heater = self.heater;
        let mut heater_watts = vec![0.0f64; n];
        let mut unserved = 0.0;

        // Quietness per window, from the original meter.
        let mut quiet = vec![false; n];
        for (start, summary) in WindowStats::new(meter, self.quiet_window) {
            let q = is_quiet(&summary, self.quiet_sigma_watts);
            let end = (start + self.quiet_window).min(n);
            quiet[start..end].fill(q);
        }

        // Hot-water draws: morning and evening events, deterministic-ish
        // within the rng stream.
        let per_day = (86_400.0 / res) as usize;
        let days = n.div_ceil(per_day.max(1));
        let mut draws = vec![0.0f64; n];
        for d in 0..days {
            for (hour, frac) in [(7.0, 0.45), (18.5, 0.35), (21.0, 0.20)] {
                let jitter: f64 = rng.gen_range(-0.5..0.5);
                let idx = ((d as f64 * 86_400.0 + (hour + jitter) * 3_600.0) / res) as usize;
                // Spread the draw over ~10 minutes.
                let span = (600.0 / res).ceil() as usize;
                let liters = self.daily_draw_liters * frac / span as f64;
                for k in 0..span {
                    if let Some(slot) = draws.get_mut(idx + k) {
                        *slot += liters;
                    }
                }
            }
        }

        // Online control loop. Burst scheduling is jittered-periodic:
        // Poisson gaps cluster and leave whole windows unmasked, which is
        // exactly the signal NIOM needs.
        let gap = |rng: &mut SeededRng| {
            if self.mean_burst_gap_secs.is_finite() {
                self.mean_burst_gap_secs * rng.gen_range(0.8..1.2)
            } else {
                f64::INFINITY
            }
        };
        let mut next_burst_in = gap(rng);
        let mut burst_left = 0.0f64;
        for i in 0..n {
            let mut power = 0.0;
            if heater.needs_heat() {
                // Comfort heating is mandatory (and masks for free).
                power = heater.element_watts();
            } else if burst_left > 0.0 && heater.has_headroom() {
                power = heater.element_watts();
                burst_left -= res;
            } else if quiet[i] && heater.has_headroom() {
                next_burst_in -= res;
                if next_burst_in <= 0.0 {
                    burst_left = rng.gen_range(self.burst_secs.0..=self.burst_secs.1);
                    power = heater.element_watts();
                    burst_left -= res;
                    next_burst_in = gap(rng);
                }
            }
            unserved += heater.step(res, power, draws[i]);
            heater_watts[i] = power;
        }

        let heater_trace = PowerTrace::new(meter.start(), meter.resolution(), heater_watts)
            .expect("element power is finite");
        let trace = meter
            .checked_add(&heater_trace)
            .expect("aligned by construction");
        // CHPr shifts heating the home needed anyway; the *extra* energy is
        // only what standing losses grow by holding the tank hotter. We
        // report the full heater energy minus a thermostat baseline
        // estimate: draws + nominal standing loss.
        let baseline_kwh = self.daily_draw_liters * days as f64 * 4_186.0 * (55.0 - 12.0) / 3.6e6
            + 0.08 * 24.0 * days as f64; // ~80 W standing loss
        let extra = (heater_trace.energy_kwh() - baseline_kwh).max(0.0);
        Defended {
            trace,
            cost: DefenseCost {
                extra_energy_kwh: extra,
                billing_error_frac: 0.0,
                unserved_hot_water_liters: unserved,
            },
        }
    }

    fn name(&self) -> &str {
        "chpr"
    }
}

fn is_quiet(summary: &Summary, sigma_threshold: f64) -> bool {
    summary.stddev() < sigma_threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::rng::seeded_rng;
    use timeseries::{Resolution, Timestamp};

    /// A day with an obviously-empty stretch (flat 150 W background).
    fn quiet_home(days: usize) -> PowerTrace {
        PowerTrace::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, days * 1440, |i| {
            let minute = i % 1440;
            if (1_020..1_320).contains(&minute) {
                // Evening activity.
                150.0 + if i % 13 < 3 { 1_400.0 } else { 100.0 }
            } else {
                150.0 + 20.0 * ((i as f64) * 0.3).sin()
            }
        })
    }

    #[test]
    fn bursts_fill_quiet_periods() {
        let meter = quiet_home(3);
        let out = Chpr::default().apply(&meter, &mut seeded_rng(1));
        // Daytime quiet stretch now contains multi-kW samples.
        let mut masked_bursts = 0;
        for day in 0..3 {
            for minute in 200..1_000 {
                if out.trace.watts(day * 1440 + minute) > 3_000.0 {
                    masked_bursts += 1;
                }
            }
        }
        assert!(masked_bursts > 30, "bursts {masked_bursts}");
    }

    #[test]
    fn defended_trace_only_adds_load() {
        let meter = quiet_home(2);
        let out = Chpr::default().apply(&meter, &mut seeded_rng(2));
        for i in 0..meter.len() {
            assert!(out.trace.watts(i) >= meter.watts(i) - 1e-9);
        }
    }

    #[test]
    fn hot_water_served() {
        let meter = quiet_home(7);
        let out = Chpr::default().apply(&meter, &mut seeded_rng(3));
        assert_eq!(
            out.cost.unserved_hot_water_liters, 0.0,
            "ran out of hot water"
        );
    }

    #[test]
    fn masking_energy_is_modest() {
        let meter = quiet_home(7);
        let out = Chpr::default().apply(&meter, &mut seeded_rng(4));
        // The heater can't inject more than its thermal budget; extra
        // energy beyond baseline water heating stays bounded.
        assert!(
            out.cost.extra_energy_kwh < 30.0,
            "extra {}",
            out.cost.extra_energy_kwh
        );
    }

    #[test]
    fn zero_effort_is_thermostat_only() {
        let meter = quiet_home(2);
        let chpr = Chpr::default().with_effort(0.0);
        let out = chpr.apply(&meter, &mut seeded_rng(5));
        // Heating still happens (comfort), but far less than full CHPr.
        let full = Chpr::default().apply(&meter, &mut seeded_rng(5));
        let added_zero = out.trace.energy_kwh() - meter.energy_kwh();
        let added_full = full.trace.energy_kwh() - meter.energy_kwh();
        assert!(
            added_zero < added_full * 0.8,
            "zero {added_zero} vs full {added_full}"
        );
    }

    #[test]
    #[should_panic(expected = "effort must be in")]
    fn bad_effort_rejected() {
        Chpr::default().with_effort(1.5);
    }
}
