//! An electric water heater with thermal storage.

use serde::{Deserialize, Serialize};

/// Specific heat of water, J/(kg·K).
const WATER_CP: f64 = 4_186.0;

/// A tank water heater: the thermal battery CHPr modulates.
///
/// State is the mean tank temperature; heating raises it, hot-water draws
/// (replaced by cold inlet water) and standing losses lower it.
///
/// # Examples
///
/// ```
/// use defense::WaterHeater;
///
/// let mut wh = WaterHeater::fifty_gallon();
/// let t0 = wh.temp_c();
/// wh.step(3_600.0, 4_500.0, 0.0); // heat full-bore for an hour
/// assert!(wh.temp_c() > t0 + 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaterHeater {
    tank_liters: f64,
    element_watts: f64,
    temp_c: f64,
    min_temp_c: f64,
    max_temp_c: f64,
    inlet_temp_c: f64,
    /// Standing heat loss, watts per kelvin above ambient.
    loss_w_per_k: f64,
    ambient_c: f64,
    /// Below this mean-tank temperature a draw counts as unserved. Lower
    /// than `min_temp_c` because the perfect-mixing model understates the
    /// outlet temperature of a stratified tank.
    comfort_min_c: f64,
}

impl WaterHeater {
    /// The canonical CHPr device: a 50-gallon (189 L) tank with a 4.5 kW
    /// element, 50–75 °C operating band.
    pub fn fifty_gallon() -> Self {
        WaterHeater {
            tank_liters: 189.0,
            element_watts: 4_500.0,
            temp_c: 55.0,
            min_temp_c: 50.0,
            max_temp_c: 75.0,
            inlet_temp_c: 12.0,
            loss_w_per_k: 2.2,
            ambient_c: 20.0,
            comfort_min_c: 40.0,
        }
    }

    /// Current mean tank temperature, °C.
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// Element rating, watts.
    pub fn element_watts(&self) -> f64 {
        self.element_watts
    }

    /// `true` if the tank is below its comfort minimum (must-heat).
    pub fn needs_heat(&self) -> bool {
        self.temp_c < self.min_temp_c
    }

    /// `true` if the tank can absorb more heat without exceeding its
    /// safety maximum.
    pub fn has_headroom(&self) -> bool {
        self.temp_c < self.max_temp_c
    }

    /// Thermal energy (kWh) the tank can still absorb before hitting the
    /// maximum temperature.
    pub fn headroom_kwh(&self) -> f64 {
        let dt = (self.max_temp_c - self.temp_c).max(0.0);
        self.tank_liters * WATER_CP * dt / 3.6e6
    }

    /// Advances the tank by `dt_secs` with the element drawing
    /// `element_watts` (clamped to the rating) and `draw_liters` of hot
    /// water drawn (replaced by inlet-temperature water).
    ///
    /// Returns the litres of the draw that could *not* be served hot
    /// (tank below the comfort minimum).
    pub fn step(&mut self, dt_secs: f64, element_watts: f64, draw_liters: f64) -> f64 {
        assert!(dt_secs > 0.0, "time step must be positive");
        let p = element_watts.clamp(0.0, self.element_watts);
        let mass = self.tank_liters; // 1 kg per litre
                                     // Heating.
        let mut temp = self.temp_c + p * dt_secs / (mass * WATER_CP);
        // Standing loss.
        temp -= self.loss_w_per_k * (temp - self.ambient_c).max(0.0) * dt_secs / (mass * WATER_CP);
        // Draw: replace hot with inlet water (perfect mixing).
        let unserved = if self.temp_c < self.comfort_min_c {
            draw_liters
        } else {
            0.0
        };
        if draw_liters > 0.0 {
            let frac = (draw_liters / mass).min(1.0);
            temp = temp * (1.0 - frac) + self.inlet_temp_c * frac;
        }
        self.temp_c = temp.min(self.max_temp_c + 1.0);
        unserved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heating_raises_temperature() {
        let mut wh = WaterHeater::fifty_gallon();
        let t0 = wh.temp_c();
        wh.step(600.0, 4_500.0, 0.0);
        // 4.5 kW × 600 s = 2.7 MJ into 189 kg → ≈ 3.4 K.
        assert!(
            (wh.temp_c() - t0 - 3.4).abs() < 0.2,
            "Δ {}",
            wh.temp_c() - t0
        );
    }

    #[test]
    fn standing_loss_cools() {
        let mut wh = WaterHeater::fifty_gallon();
        let t0 = wh.temp_c();
        for _ in 0..24 {
            wh.step(3_600.0, 0.0, 0.0);
        }
        assert!(wh.temp_c() < t0 - 0.5, "temp {}", wh.temp_c());
        assert!(wh.temp_c() > 20.0);
    }

    #[test]
    fn draws_cool_fast() {
        let mut wh = WaterHeater::fifty_gallon();
        let t0 = wh.temp_c();
        let unserved = wh.step(600.0, 0.0, 60.0); // a long shower
        assert!(wh.temp_c() < t0 - 10.0);
        assert_eq!(unserved, 0.0); // tank was hot when the draw started
    }

    #[test]
    fn cold_tank_reports_unserved() {
        let mut wh = WaterHeater::fifty_gallon();
        // Drain it cold (well below the 40 °C comfort floor).
        for _ in 0..10 {
            wh.step(600.0, 0.0, 80.0);
        }
        assert!(wh.needs_heat());
        assert!(wh.temp_c() < 40.0);
        let unserved = wh.step(600.0, 0.0, 30.0);
        assert_eq!(unserved, 30.0);
    }

    #[test]
    fn headroom_accounting() {
        let mut wh = WaterHeater::fifty_gallon();
        assert!(wh.has_headroom());
        let kwh0 = wh.headroom_kwh();
        // 55 → 75 °C on 189 kg ≈ 4.4 kWh.
        assert!((kwh0 - 4.4).abs() < 0.2, "headroom {kwh0}");
        // Saturate the tank.
        for _ in 0..100 {
            wh.step(600.0, 4_500.0, 0.0);
        }
        assert!(!wh.has_headroom());
        assert!(wh.headroom_kwh() < 0.05);
    }

    #[test]
    fn element_power_clamped() {
        let mut a = WaterHeater::fifty_gallon();
        let mut b = WaterHeater::fifty_gallon();
        a.step(600.0, 99_000.0, 0.0);
        b.step(600.0, 4_500.0, 0.0);
        assert!((a.temp_c() - b.temp_c()).abs() < 1e-9);
    }
}
