//! Obfuscation defenses against energy-data privacy attacks.
//!
//! Section III-B of the paper surveys defenses that *actively modify* a
//! home's energy usage so that analytics (NIOM occupancy detection, NILM
//! appliance disaggregation) learn nothing, at varying cost:
//!
//! * [`Chpr`] — **Combined Heat and Privacy** (Chen et al., PerCom'14): an
//!   electric water heater's thermal mass banks the home's hot-water
//!   heating into strategically timed bursts that mask quiet (unoccupied)
//!   periods. "Free", since the water had to be heated anyway. Reproduces
//!   Figure 6 (attack MCC 0.44 → 0.045).
//! * [`BatteryLeveler`] — NILL-style battery load flattening (McLaughlin
//!   et al., CCS'11): a battery absorbs load transitions, erasing the edges
//!   NILM keys on, at the capital cost of the battery.
//! * [`NoiseInjector`] / [`Smoother`] — naive baselines that perturb the
//!   *reported* data only (a cheating meter), included for the ablation
//!   benches.
//! * [`PrivacyKnob`] — the paper's vision of *user-controllable privacy*: a
//!   single dial trading masking effort against cost, producing the
//!   privacy/utility curve.
//! * [`DpNoise`] — ε-differentially-private reporting: calibrated Laplace
//!   noise on the windowed (NILM-visible) aggregates. The one defense
//!   whose guarantee survives an attacker that retrains on defended
//!   traces; see `crates/tournament`.
//! * [`NoDefense`] — the explicit identity, for baseline columns in
//!   attack×defense matrices.
//!
//! All defenses implement [`Defense`]: meter trace in, modified trace plus
//! a [`DefenseCost`] out.

pub mod battery;
pub mod chpr;
pub mod dp;
pub mod knob;
pub mod local;
pub mod obfuscation;
pub mod traits;
pub mod waterheater;

pub use battery::BatteryLeveler;
pub use chpr::Chpr;
pub use dp::DpNoise;
pub use knob::{KnobPoint, PrivacyKnob};
pub use local::{exposure, Architecture, Exposure};
pub use obfuscation::{NoiseInjector, Smoother};
pub use traits::{Defended, Defense, DefenseCost, NoDefense};
pub use waterheater::WaterHeater;
