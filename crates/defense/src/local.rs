//! Local-first IoT architectures (Section III-D).
//!
//! "If the data is kept locally and never sent to third parties, the user
//! stays in control." This module makes that principle quantitative: each
//! [`Architecture`] describes where a smart meter's data lives, and
//! [`exposure`] computes what actually leaves the home — the attack
//! surface the cloud (or anyone who breaches it) gets.

use serde::{Deserialize, Serialize};
use timeseries::PowerTrace;

/// Where IoT data lives and what the cloud receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// The dominant paradigm: raw fine-grained readings stream to the
    /// cloud.
    CloudRaw,
    /// The cloud receives coarse aggregates only (e.g. daily totals).
    CloudDailyTotals,
    /// Local-first: analytics run at home on a hub; the cloud sends down
    /// a model and receives nothing (transfer-learning style).
    LocalOnly,
    /// The cryptographic middle ground: per-interval commitments plus an
    /// opened aggregate bill (see [`crate::Chpr`]'s sibling crate
    /// `privatemeter`).
    CommitmentsOnly,
}

impl Architecture {
    /// All modelled architectures, in decreasing order of exposure.
    pub fn all() -> &'static [Architecture] {
        &[
            Architecture::CloudRaw,
            Architecture::CloudDailyTotals,
            Architecture::CommitmentsOnly,
            Architecture::LocalOnly,
        ]
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Architecture::CloudRaw => "cloud-raw",
            Architecture::CloudDailyTotals => "cloud-daily-totals",
            Architecture::LocalOnly => "local-only",
            Architecture::CommitmentsOnly => "commitments-only",
        };
        f.write_str(s)
    }
}

/// What one architecture exposes to the cloud for a given meter trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exposure {
    /// Plaintext power samples the cloud can analyze.
    pub plaintext_samples: usize,
    /// Finest plaintext resolution available to the cloud, seconds
    /// (`None` when no time series leaves the home at all).
    pub finest_resolution_secs: Option<u32>,
    /// `true` if NIOM-style occupancy analytics are possible on what the
    /// cloud holds (needs sub-hourly plaintext data).
    pub niom_possible: bool,
    /// `true` if NILM-style appliance analytics are possible (needs
    /// minute-scale plaintext data).
    pub nilm_possible: bool,
    /// `true` if the utility can still verify the bill exactly.
    pub exact_billing: bool,
}

/// Computes the cloud-side exposure of `trace` under `arch`.
pub fn exposure(arch: Architecture, trace: &PowerTrace) -> Exposure {
    match arch {
        Architecture::CloudRaw => Exposure {
            plaintext_samples: trace.len(),
            finest_resolution_secs: Some(trace.resolution().as_secs()),
            niom_possible: trace.resolution().as_secs() <= 1_800,
            nilm_possible: trace.resolution().as_secs() <= 300,
            exact_billing: true,
        },
        Architecture::CloudDailyTotals => {
            let days = (trace.duration_secs() / 86_400) as usize;
            Exposure {
                plaintext_samples: days,
                finest_resolution_secs: Some(86_400u32),
                niom_possible: false,
                nilm_possible: false,
                exact_billing: true,
            }
        }
        Architecture::CommitmentsOnly => Exposure {
            plaintext_samples: 1, // the opened aggregate bill
            finest_resolution_secs: None,
            niom_possible: false,
            nilm_possible: false,
            exact_billing: true,
        },
        Architecture::LocalOnly => Exposure {
            plaintext_samples: 0,
            finest_resolution_secs: None,
            niom_possible: false,
            nilm_possible: false,
            // The cloud cannot bill at all; some separate channel must.
            exact_billing: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{Resolution, Timestamp};

    fn week_trace() -> PowerTrace {
        PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 7 * 1440, 400.0)
    }

    #[test]
    fn cloud_raw_exposes_everything() {
        let e = exposure(Architecture::CloudRaw, &week_trace());
        assert_eq!(e.plaintext_samples, 7 * 1440);
        assert!(e.niom_possible && e.nilm_possible && e.exact_billing);
    }

    #[test]
    fn daily_totals_kill_fine_analytics() {
        let e = exposure(Architecture::CloudDailyTotals, &week_trace());
        assert_eq!(e.plaintext_samples, 7);
        assert!(!e.niom_possible && !e.nilm_possible);
        assert!(e.exact_billing);
    }

    #[test]
    fn commitments_expose_one_number() {
        let e = exposure(Architecture::CommitmentsOnly, &week_trace());
        assert_eq!(e.plaintext_samples, 1);
        assert_eq!(e.finest_resolution_secs, None);
        assert!(e.exact_billing);
    }

    #[test]
    fn local_only_exposes_nothing_but_cannot_bill() {
        let e = exposure(Architecture::LocalOnly, &week_trace());
        assert_eq!(e.plaintext_samples, 0);
        assert!(!e.exact_billing);
    }

    #[test]
    fn exposure_strictly_decreases_along_all() {
        let t = week_trace();
        let samples: Vec<usize> = Architecture::all()
            .iter()
            .map(|&a| exposure(a, &t).plaintext_samples)
            .collect();
        assert!(samples.windows(2).all(|w| w[0] >= w[1]), "{samples:?}");
    }

    #[test]
    fn hourly_raw_data_blocks_nilm_but_not_niom() {
        let hourly = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_HOUR, 24, 400.0);
        let e = exposure(Architecture::CloudRaw, &hourly);
        assert!(!e.niom_possible); // 1 h > 30 min threshold
        assert!(!e.nilm_possible);
    }
}
