//! The defense interface and cost accounting.

use serde::{Deserialize, Serialize};
use timeseries::rng::SeededRng;
use timeseries::{PipelineError, PowerTrace};

/// What a defense cost the user, beyond the unmodified home.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DefenseCost {
    /// Extra energy consumed by the defense, kWh (0 for load-shifting
    /// defenses that only move energy in time).
    pub extra_energy_kwh: f64,
    /// Relative billing distortion `|defended - original| / original` in
    /// total energy — nonzero only for defenses that falsify the reported
    /// data rather than shaping real load.
    pub billing_error_frac: f64,
    /// Comfort shortfall: hot-water demand the defense failed to serve,
    /// litres (CHPr only).
    pub unserved_hot_water_liters: f64,
}

/// A defended meter trace plus its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Defended {
    /// The trace the utility (and any attacker) now sees.
    pub trace: PowerTrace,
    /// What it cost.
    pub cost: DefenseCost,
}

/// The explicit no-op defense: reports the meter unchanged at zero cost.
///
/// Exists so attack×defense matrices (`crates/tournament`) can carry an
/// honest baseline column through the same `Box<dyn Defense>` plumbing
/// as the real defenses, and consumes no RNG so a `NoDefense` cell is
/// byte-identical to running the attack on the raw trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoDefense;

impl Defense for NoDefense {
    fn apply(&self, meter: &PowerTrace, _rng: &mut SeededRng) -> Defended {
        Defended {
            trace: meter.clone(),
            cost: DefenseCost::default(),
        }
    }

    fn name(&self) -> &str {
        "none"
    }
}

/// An energy-privacy defense: transforms the meter trace an attacker sees.
pub trait Defense {
    /// Applies the defense to `meter`.
    fn apply(&self, meter: &PowerTrace, rng: &mut SeededRng) -> Defended;

    /// The checked entry point for possibly-degraded feeds: validates the
    /// input and guards the geometry contract (a defense reshapes power,
    /// never the sampling grid) on the way out.
    ///
    /// # Errors
    ///
    /// [`PipelineError::EmptyInput`] on a zero-length trace,
    /// [`PipelineError::Trace`] when the trace fails validation, and
    /// [`PipelineError::Degenerate`] if the implementation changes the
    /// trace geometry.
    fn try_apply(
        &self,
        meter: &PowerTrace,
        rng: &mut SeededRng,
    ) -> Result<Defended, PipelineError> {
        if meter.is_empty() {
            return Err(PipelineError::EmptyInput {
                stage: "defense.apply",
            });
        }
        meter.validate()?;
        let out = self.apply(meter, rng);
        if meter.check_aligned(&out.trace).is_err() {
            return Err(PipelineError::Degenerate {
                stage: "defense.apply",
                reason: format!("{} changed the trace geometry", self.name()),
            });
        }
        Ok(out)
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::rng::seeded_rng;
    use timeseries::{Resolution, Timestamp};

    #[test]
    fn object_safe_and_default_cost() {
        let d: Box<dyn Defense> = Box::new(NoDefense);
        let meter = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 10, 100.0);
        let out = d.apply(&meter, &mut seeded_rng(0));
        assert_eq!(out.trace, meter);
        assert_eq!(out.cost.extra_energy_kwh, 0.0);
        assert_eq!(d.name(), "none");
    }

    #[test]
    fn try_apply_rejects_empty_and_passes_valid() {
        let empty = PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_MINUTE, 0);
        assert_eq!(
            NoDefense.try_apply(&empty, &mut seeded_rng(0)),
            Err(PipelineError::EmptyInput {
                stage: "defense.apply"
            })
        );
        let meter = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 10, 100.0);
        let out = NoDefense.try_apply(&meter, &mut seeded_rng(0)).unwrap();
        assert_eq!(out.trace, meter);
    }

    /// A defense that illegally truncates the trace.
    struct Truncating;

    impl Defense for Truncating {
        fn apply(&self, meter: &PowerTrace, _rng: &mut SeededRng) -> Defended {
            Defended {
                trace: meter.slice(0..meter.len() / 2),
                cost: DefenseCost::default(),
            }
        }
        fn name(&self) -> &str {
            "truncating"
        }
    }

    #[test]
    fn try_apply_catches_geometry_changes() {
        let meter = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_MINUTE, 10, 100.0);
        match Truncating.try_apply(&meter, &mut seeded_rng(0)) {
            Err(PipelineError::Degenerate { stage, .. }) => assert_eq!(stage, "defense.apply"),
            other => panic!("expected Degenerate, got {other:?}"),
        }
    }
}
