//! Integration: Figure 6 — CHPr drives the NIOM occupancy attack's MCC
//! from clearly-informative down to near-random.

use defense::{Chpr, Defense};
use homesim::{Home, HomeConfig};
use niom::{OccupancyDetector, ThresholdDetector};
use timeseries::rng::seeded_rng;

#[test]
fn chpr_collapses_attack_mcc() {
    let home = Home::simulate(&HomeConfig::new(60).days(7));
    let attack = ThresholdDetector::default();

    let before = home
        .occupancy
        .confusion(&attack.detect(&home.meter))
        .unwrap()
        .mcc();
    let defended = Chpr::default().apply(&home.meter, &mut seeded_rng(1));
    let c = home
        .occupancy
        .confusion(&attack.detect(&defended.trace))
        .unwrap();
    eprintln!(
        "confusion after: tp {} fp {} tn {} fn {}",
        c.tp, c.fp, c.tn, c.fn_
    );
    let after = c.mcc();

    eprintln!(
        "fig6: mcc before {before:.3} after {after:.3}, extra {:.1} kWh, unserved {:.0} L",
        defended.cost.extra_energy_kwh, defended.cost.unserved_hot_water_liters
    );
    assert!(before > 0.4, "attack should work undefended: {before:.3}");
    assert!(
        after < 0.2,
        "CHPr should push MCC toward random: {after:.3}"
    );
    assert!(
        after < before / 3.0,
        "at least a 3x reduction: {before:.3} -> {after:.3}"
    );
}
