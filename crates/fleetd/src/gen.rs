//! Deterministic synthetic reading generator for fleet-scale runs.
//!
//! `fleet_scale`'s resident ladder needs per-home chunks that are (a) a
//! pure function of `(home seed, round)` so serial and parallel
//! admission see identical bytes, (b) cheap enough that generation never
//! dominates the measured admission path, and (c) shaped like the
//! paper's home traces — a base load with appliance bursts (Fig. 2's
//! occupancy signal) and occasional transport gaps for the fill
//! automaton. A splitmix64 stream per `(seed, round)` delivers all
//! three without touching the heavier `homesim` catalogue.

use stream::Sample;

/// One splitmix64 step — the same mixer `timeseries::seeded_rng` seeds
/// with, used here directly for a branch-free per-sample stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Fills `out` with `samples` readings for round `round` of the home
/// seeded `home_seed` — deterministic in `(home_seed, round)`, clearing
/// any previous contents so the buffer can be reused across rounds.
///
/// The trace is a 80–160 W base load, a ~20% duty-cycle appliance burst
/// of 1.2–2.4 kW (the occupancy-revealing events the NIOM detector keys
/// on), and a ~2% gap rate exercising the stream's causal fill.
///
/// # Examples
///
/// ```
/// let mut chunk = Vec::new();
/// fleetd::synthetic_chunk(7, 0, 30, &mut chunk);
/// assert_eq!(chunk.len(), 30);
/// let mut again = Vec::new();
/// fleetd::synthetic_chunk(7, 0, 30, &mut again);
/// // Pure function of (seed, round) — compare bits, since the NaN
/// // wattage of a gap sample defeats PartialEq.
/// let bits = |s: &stream::Sample| (s.watts.to_bits(), s.gap);
/// assert!(chunk.iter().map(bits).eq(again.iter().map(bits)));
/// ```
pub fn synthetic_chunk(home_seed: u64, round: u64, samples: usize, out: &mut Vec<Sample>) {
    out.clear();
    out.reserve(samples);
    let mut state = home_seed ^ round.wrapping_mul(0xd6e8_feb8_6659_fd93);
    for _ in 0..samples {
        let bits = splitmix64(&mut state);
        let u = unit(bits);
        // Low 7 bits pick gaps (~2%) and bursts (~20%) independently of
        // the wattage draw so the three signals don't correlate.
        let sel = bits & 0x7f;
        if sel < 3 {
            out.push(Sample::gap());
        } else {
            let base = 80.0 + 80.0 * u;
            let watts = if sel < 29 {
                base + 1_200.0 + 1_200.0 * u
            } else {
                base
            };
            out.push(Sample::valid(watts));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(chunk: &[Sample]) -> Vec<(u64, bool)> {
        chunk.iter().map(|s| (s.watts.to_bits(), s.gap)).collect()
    }

    #[test]
    fn rounds_and_homes_decorrelate() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        synthetic_chunk(1, 0, 100, &mut a);
        synthetic_chunk(1, 1, 100, &mut b);
        assert_ne!(bits(&a), bits(&b), "rounds must differ");
        synthetic_chunk(2, 0, 100, &mut b);
        assert_ne!(bits(&a), bits(&b), "homes must differ");
        synthetic_chunk(1, 0, 100, &mut b);
        assert_eq!(bits(&a), bits(&b), "same (seed, round) must repeat");
    }

    #[test]
    fn reuses_buffer_and_emits_all_signal_kinds() {
        let mut chunk = vec![Sample::valid(0.0); 5];
        synthetic_chunk(42, 3, 1_000, &mut chunk);
        assert_eq!(chunk.len(), 1_000);
        let gaps = chunk.iter().filter(|s| s.gap).count();
        let bursts = chunk.iter().filter(|s| !s.gap && s.watts > 1_000.0).count();
        let base = chunk.iter().filter(|s| !s.gap && s.watts < 200.0).count();
        assert!(gaps > 0 && bursts > 0 && base > 0, "{gaps}/{bursts}/{base}");
        assert!((bursts as f64) / 1_000.0 > 0.1 && (bursts as f64) / 1_000.0 < 0.35);
    }
}
