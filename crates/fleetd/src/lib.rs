//! Long-lived, sharded resident fleet service over the streaming
//! occupancy detectors.
//!
//! The paper's architecture (Sec. II, Fig. 1) assumes an always-on
//! service sitting between a fleet of homes and the cloud — the smart
//! gateway mediating what leaves each house. Every experiment in this
//! workspace instead rebuilds the world per run and holds all homes in
//! memory at once. This crate is the missing resident process: a
//! [`FleetService`] owns a fixed array of [shards](FleetdConfig::shards),
//! each shard owns the compact per-home streaming state
//! ([`stream::ThresholdStream`] — the NIOM occupancy detector of
//! Sec. III-B running incrementally), readings are admitted in rounds of
//! chunks, and homes beyond the configured residency cap are evicted to
//! a compact serialized checkpoint and rehydrated on their next reading.
//!
//! # Determinism rules
//!
//! The service inherits the workspace's fleet determinism contract
//! (`docs/FLEET.md`):
//!
//! * Home → shard assignment is `home % shards`, a pure function of the
//!   configuration — never of thread count.
//! * Shards are data-parallel and independent: a round admits each
//!   shard's homes on one worker, in home order, so per-shard state and
//!   eviction decisions are identical at any `RAYON_NUM_THREADS`.
//! * Eviction is a per-shard policy (lowest home index first, once the
//!   shard exceeds its share of [`FleetdConfig::resident_cap`]) over
//!   checkpoints proven byte-identical on restore — so the digest of a
//!   capped fleet equals the digest of an always-resident one
//!   (`fleet.resident-evict-identical`).
//!
//! # Memory model
//!
//! Resident bytes are measured, not estimated:
//! [`StreamState::state_bytes`](stream::StreamState::state_bytes) sums
//! each resident home's struct plus owned heap; cold homes cost exactly
//! their encoded [`codec`] checkpoint length. [`FleetService::memory`]
//! reports both, and `fleet_scale` pins `bytes/home` as a conformance
//! claim (`fleet.resident-bytes-per-home`).
//!
//! # Durability and crash recovery
//!
//! The cold tier is a pluggable [`store::CheckpointStore`]: in-memory
//! by default ([`StoreConfig::Memory`]), or file-backed with atomic
//! writes, CRC32-framed generation-stamped records, and a per-round
//! committed manifest ([`StoreConfig::Durable`]) so a crashed service
//! [`recover`](FleetService::recover)s byte-identically. Storage
//! defects (modelled by [`faults::StoreFault`]) surface as typed
//! [`StoreError`]s and are retried, rebuilt in degraded mode, or
//! quarantined per [`RecoveryPolicy`] — see `docs/FLEET.md`.
//!
//! # Observability
//!
//! Admission and lifecycle emit `fleetd.*` counters/gauges into the
//! global [`obs`] registry, scrapeable as Prometheus text via
//! [`MetricsServer`] (or dumped with [`write_prometheus`]) — see
//! `docs/OBSERVABILITY.md` for the exposition format.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
mod extrap;
mod gen;
mod metrics;
mod service;
pub mod store;

pub use extrap::{extrapolate, top_rung, Extrapolation, Observation};
pub use gen::synthetic_chunk;
pub use metrics::{write_prometheus, MetricsServer, ServeError};
pub use service::{
    FleetDigest, FleetService, FleetdConfig, MemoryStats, RecoverError, RecoveryPolicy,
    RecoveryReport, StoreConfig,
};
pub use store::{CheckpointStore, DurableStore, FaultyStore, MemoryStore, StoreError};
