//! Scrapeable metrics endpoint over the global [`obs`] registry.
//!
//! A resident service is only operable if its counters are reachable
//! from outside the process. [`MetricsServer`] binds a loopback TCP
//! listener and serves the registry's Prometheus text rendering
//! ([`obs::MetricsReport::to_prometheus_text`]) at `GET /metrics`, one
//! short-lived connection per scrape — the standard pull model, sized
//! for a per-host scraper, not the public internet. For batch runs
//! without a scraper, [`write_prometheus`] dumps the same rendering to
//! a file (the `fleet_scale --prom` sidecar).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default per-connection read timeout of the accept loop.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Why serving one scrape connection failed.
#[derive(Debug)]
pub enum ServeError {
    /// The client connected but sent no complete request within the
    /// read timeout — the slow-loris shape that used to wedge the
    /// single-threaded accept loop forever.
    Timeout,
    /// Any other socket failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Timeout => write!(f, "client sent no request within the read timeout"),
            ServeError::Io(e) => write!(f, "scrape connection failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ServeError::Timeout,
            _ => ServeError::Io(e),
        }
    }
}

/// A background thread serving `GET /metrics` on a loopback port.
///
/// # Examples
///
/// ```
/// obs::enable();
/// obs::counter_add("demo.scrape.hits", 1);
/// let server = fleetd::MetricsServer::bind().unwrap();
/// let body = fleetd::MetricsServer::scrape(server.addr()).unwrap();
/// assert!(body.contains("demo_scrape_hits"));
/// server.shutdown();
/// obs::disable();
/// ```
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `127.0.0.1:0` (an OS-assigned free port) and starts
    /// serving scrapes on a background thread, with the default
    /// 2-second read timeout per connection.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (e.g. no loopback available).
    pub fn bind() -> std::io::Result<MetricsServer> {
        Self::bind_with_read_timeout(DEFAULT_READ_TIMEOUT)
    }

    /// [`bind`](Self::bind) with an explicit per-connection read
    /// timeout: a client that connects and never sends a complete
    /// request is dropped with [`ServeError::Timeout`] after
    /// `read_timeout` instead of wedging the single-threaded accept
    /// loop forever. Timed-out connections are counted on the
    /// `fleetd.scrape_timeouts` obs counter.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with_read_timeout(read_timeout: Duration) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    if let Err(ServeError::Timeout) = serve_one(stream, read_timeout) {
                        obs::counter_add("fleetd.scrape_timeouts", 1);
                    }
                }
            }
        });
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound loopback address (`curl http://<addr>/metrics`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins its thread. Called on drop as well;
    /// explicit shutdown just surfaces it in the control flow.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }

    /// One-shot client: fetches `GET /metrics` from `addr` and returns
    /// the body. This is what an external scraper (or the tests) do.
    ///
    /// # Errors
    ///
    /// Connection/read failures, or a non-200 response status.
    pub fn scrape(addr: SocketAddr) -> std::io::Result<String> {
        let mut conn = TcpStream::connect(addr)?;
        write!(
            conn,
            "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
        )?;
        let mut reader = BufReader::new(conn);
        let mut status = String::new();
        reader.read_line(&mut status)?;
        if !status.starts_with("HTTP/1.1 200") {
            return Err(std::io::Error::other(format!(
                "scrape failed: {}",
                status.trim_end()
            )));
        }
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line)?;
            if line == "\r\n" || line.is_empty() {
                break;
            }
        }
        let mut body = String::new();
        std::io::Read::read_to_string(&mut reader, &mut body)?;
        Ok(body)
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_one(stream: TcpStream, read_timeout: Duration) -> Result<(), ServeError> {
    // A zero Duration would mean "no timeout" to the OS — clamp to the
    // smallest effective value instead so the loop stays unwedgeable.
    stream.set_read_timeout(Some(read_timeout.max(Duration::from_millis(1))))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the header block: closing with unread bytes pending would
    // RST the connection under the client's feet.
    let mut line = String::new();
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        if line == "\r\n" || line.is_empty() {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let (status, body) = if request_line.starts_with("GET /metrics ") {
        ("200 OK", obs::snapshot().to_prometheus_text())
    } else {
        (
            "404 Not Found",
            String::from("only GET /metrics is served\n"),
        )
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    Ok(())
}

/// Dumps the global registry's Prometheus text rendering to `path` —
/// the file-dump alternative to running a [`MetricsServer`].
///
/// # Errors
///
/// Propagates the underlying file write failure.
pub fn write_prometheus(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, obs::snapshot().to_prometheus_text())
}
