//! The sharded resident fleet service.
//!
//! A [`FleetService`] owns a fixed number of shards; each home belongs
//! to shard `home % shards` forever. A shard holds its homes in one of
//! two tiers: **resident** (a live [`ThresholdStream`] whose size is
//! measured by [`StreamState::state_bytes`]) or **cold** (a CRC-framed,
//! generation-stamped [`codec`](crate::codec) checkpoint held in the
//! shard's pluggable [`CheckpointStore`]). Admission rounds feed every
//! home a chunk, rehydrating cold homes on demand and evicting back
//! down to the residency cap afterwards — so steady-state memory is
//! O(resident cap) live streams plus O(homes) compact checkpoints, not
//! O(homes) live streams.
//!
//! # Durability and recovery
//!
//! With [`StoreConfig::Durable`], every round additionally write-syncs
//! each resident home's frame and commits a fleet [`Manifest`], so a
//! crashed service can be [`recover`](FleetService::recover)ed from
//! disk and continue byte-identically to an uninterrupted run. Store
//! defects surface as typed [`StoreError`]s: transient write failures
//! are retried with bounded backoff (`fleet.store_retries`), and
//! unrecoverable records are either replayed from re-admitted readings
//! ([`RecoveryPolicy::Rebuild`], `fleet.store_rebuilds`) or excluded
//! with their error preserved ([`RecoveryPolicy::Quarantine`],
//! `fleet.store_quarantined`) — the storage-side mirror of the PR 4
//! supervisor's panic quarantine. `docs/FLEET.md` documents the full
//! lifecycle.

use crate::codec;
use crate::store::{
    self, shard_dir, CheckpointStore, DurableStore, FaultyStore, Manifest, MemoryStore, StoreError,
};
use faults::{FaultPlan, StoreFaultInjector};
use niom::ThresholdDetector;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use stream::{Sample, StreamFill, StreamSpec, StreamState, ThresholdStream};
use timeseries::rng::derive_seed;
use timeseries::{LabelSeries, Resolution, Timestamp};

/// Where the fleet keeps its cold-tier checkpoint frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreConfig {
    /// Frames live in process memory (today's behavior; survives
    /// nothing, costs no IO).
    Memory,
    /// Frames live in per-shard directories under `root`, written
    /// atomically, with a round-committed [`Manifest`] — the
    /// crash-recoverable mode.
    Durable {
        /// Fleet root directory (created, or wiped by
        /// [`FleetService::new`], reopened by
        /// [`FleetService::recover`]).
        root: PathBuf,
    },
}

/// What to do with a home whose stored checkpoint is unrecoverable
/// (corrupt frame, stale generation, lost file, persistent IO error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Degraded-mode rebuild: re-derive the home's stream by replaying
    /// its readings for every completed round through the same
    /// generator — byte-identical to the lost state because admission
    /// is a pure function of `(root_seed, home, round)`.
    Rebuild,
    /// Exclude the home from admission and digests, preserving the
    /// typed [`StoreError`] in the quarantine report (the PR 4
    /// supervisor semantics, applied to storage).
    Quarantine,
}

/// Configuration of a resident fleet service.
#[derive(Debug, Clone)]
pub struct FleetdConfig {
    /// Occupancy detector every home runs (Sec. III-B).
    pub detector: ThresholdDetector,
    /// Trace geometry shared by all homes.
    pub spec: StreamSpec,
    /// Causal gap-fill policy for transport gaps in admitted chunks.
    pub fill: StreamFill,
    /// Number of shards. Home → shard assignment is `home % shards`, so
    /// this is part of the deterministic identity of a run — it must
    /// never be derived from thread count.
    pub shards: usize,
    /// Fleet-wide residency cap: at most this many homes keep a live
    /// stream between rounds (each shard keeps its `cap / shards`
    /// share, at least one). `None` keeps every home resident.
    pub resident_cap: Option<usize>,
    /// Root seed from which per-home seeds derive
    /// (`derive_seed(root, "home:<i>")` — the fleet engine's scheme).
    pub root_seed: u64,
    /// Cold-tier backend.
    pub store: StoreConfig,
    /// Policy for unrecoverable checkpoints.
    pub recovery: RecoveryPolicy,
    /// Bounded retries per store write on transient errors.
    pub max_store_retries: u32,
    /// Base backoff between retries, doubled per attempt. Zero (the
    /// default) keeps tests and experiments fast; outputs never depend
    /// on it.
    pub retry_backoff_ms: u64,
    /// Injected storage faults (identity by default). The injector is
    /// seeded `derive_seed(root_seed, "store-faults")` and keys every
    /// decision on `(home, generation)`, so faulted runs stay
    /// deterministic at any thread count.
    pub store_faults: FaultPlan,
}

impl Default for FleetdConfig {
    fn default() -> FleetdConfig {
        FleetdConfig {
            detector: ThresholdDetector::default(),
            spec: StreamSpec::new(Timestamp::ZERO, Resolution::ONE_MINUTE),
            fill: StreamFill::Zero,
            shards: 64,
            resident_cap: None,
            root_seed: 7,
            store: StoreConfig::Memory,
            recovery: RecoveryPolicy::Rebuild,
            max_store_retries: 4,
            retry_backoff_ms: 0,
            store_faults: FaultPlan::default(),
        }
    }
}

impl FleetdConfig {
    fn shard_cap(&self) -> Option<usize> {
        self.resident_cap
            .map(|cap| (cap.div_ceil(self.shards)).max(1))
    }

    fn durable_root(&self) -> Option<&PathBuf> {
        match &self.store {
            StoreConfig::Memory => None,
            StoreConfig::Durable { root } => Some(root),
        }
    }

    /// Builds shard `idx`'s store stack: the configured backend, fault-
    /// wrapped when the plan injects store faults.
    fn make_store(&self, idx: usize) -> std::io::Result<Box<dyn CheckpointStore>> {
        let base: Box<dyn CheckpointStore> = match &self.store {
            StoreConfig::Memory => Box::new(MemoryStore::new()),
            StoreConfig::Durable { root } => Box::new(DurableStore::open(shard_dir(root, idx))?),
        };
        if self.store_faults.store_faults.is_empty() {
            return Ok(base);
        }
        let injector = StoreFaultInjector::new(
            &self.store_faults,
            derive_seed(self.root_seed, "store-faults"),
        );
        Ok(Box::new(FaultyStore::new(base, injector)))
    }
}

/// Point-in-time memory accounting of the fleet, split by tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Homes currently holding a live stream.
    pub resident_homes: usize,
    /// Homes currently evicted to an encoded checkpoint frame.
    pub cold_homes: usize,
    /// Bytes of live stream state ([`StreamState::state_bytes`] summed).
    pub resident_bytes: usize,
    /// Bytes of encoded cold checkpoint frames (header + CRC included).
    pub cold_bytes: usize,
}

impl MemoryStats {
    /// Total tracked bytes across both tiers.
    pub fn total_bytes(&self) -> usize {
        self.resident_bytes + self.cold_bytes
    }

    /// Mean tracked bytes per home (0 for an empty fleet).
    pub fn bytes_per_home(&self) -> f64 {
        let homes = self.resident_homes + self.cold_homes;
        if homes == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 / homes as f64
    }
}

/// Order-independent-free digest of every home's finalized occupancy
/// series: homes are folded in index order, so two services that
/// processed the same readings — at any thread count, with any eviction
/// history — produce the same digest iff every home's output is
/// byte-identical. Quarantined homes are excluded (and reduce
/// [`FleetDigest::homes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetDigest {
    /// Homes folded into the digest.
    pub homes: usize,
    /// Samples admitted across the fleet (gap-withheld ones included).
    pub samples: u64,
    /// Occupied labels across every home's finalized series.
    pub positives: u64,
    /// FNV-1a fold over `(home index, series length, labels)`.
    pub digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_byte(h: u64, b: u8) -> u64 {
    (h ^ b as u64).wrapping_mul(FNV_PRIME)
}

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = fnv_byte(h, b);
    }
    h
}

/// What [`FleetService::recover`] found in the durable store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Homes whose frame validated at the manifest generation.
    pub recovered: usize,
    /// Homes scheduled for degraded-mode rebuild (replayed on their
    /// next admission, or by [`FleetService::scrub`]).
    pub scheduled_rebuilds: usize,
    /// Homes quarantined with their typed error, home order.
    pub quarantined: Vec<(usize, StoreError)>,
}

/// Why [`FleetService::recover`] could not reopen a fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// The config's store is [`StoreConfig::Memory`] — nothing to
    /// recover from.
    NotDurable,
    /// The manifest is missing, unreadable, or fails validation.
    Manifest(String),
    /// A shard store could not be opened.
    Io(String),
    /// The manifest disagrees with the config on a field that is part
    /// of the fleet's deterministic identity.
    ConfigMismatch {
        /// Disagreeing field (`"shards"`, `"root_seed"`).
        field: &'static str,
        /// Value recorded in the manifest.
        manifest: u64,
        /// Value in the supplied config.
        config: u64,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::NotDurable => write!(f, "config has no durable store to recover from"),
            RecoverError::Manifest(detail) => write!(f, "manifest unusable: {detail}"),
            RecoverError::Io(detail) => write!(f, "shard store unusable: {detail}"),
            RecoverError::ConfigMismatch {
                field,
                manifest,
                config,
            } => write!(
                f,
                "config {field} = {config} but durable fleet was written with {manifest}"
            ),
        }
    }
}

impl std::error::Error for RecoverError {}

/// One shard: the resident tier, the pluggable cold store, the
/// quarantine ledger, and lifecycle counters. A home is in exactly one
/// of: resident, cold (a store frame), scheduled-for-rebuild, or
/// quarantined.
#[derive(Debug)]
struct Shard {
    resident: BTreeMap<usize, ThresholdStream>,
    cold: Box<dyn CheckpointStore>,
    rebuild: BTreeSet<usize>,
    quarantined: BTreeMap<usize, StoreError>,
    samples: u64,
    evictions: u64,
    rehydrations: u64,
    rebuilds: u64,
    retries: u64,
}

impl Shard {
    fn new(cold: Box<dyn CheckpointStore>) -> Shard {
        Shard {
            resident: BTreeMap::new(),
            cold,
            rebuild: BTreeSet::new(),
            quarantined: BTreeMap::new(),
            samples: 0,
            evictions: 0,
            rehydrations: 0,
            rebuilds: 0,
            retries: 0,
        }
    }

    /// Re-derives `home`'s stream by replaying every completed round
    /// (`0..rounds`) through the admission generator — the degraded-
    /// mode rebuild. Byte-identical to the lost state because chunk
    /// generation is a pure function of `(root_seed, home, round)`.
    fn replay<F>(home: usize, rounds: u64, cfg: &FleetdConfig, gen: &F) -> ThresholdStream
    where
        F: Fn(u64, u64, &mut Vec<Sample>),
    {
        let mut stream = ThresholdStream::new(cfg.detector.clone(), cfg.spec).with_fill(cfg.fill);
        let seed = derive_seed(cfg.root_seed, &format!("home:{home}"));
        let mut chunk = Vec::new();
        for round in 0..rounds {
            gen(seed, round, &mut chunk);
            stream.feed(&chunk);
        }
        stream
    }

    fn quarantine(&mut self, home: usize, err: StoreError) {
        obs::counter_add("fleet.store_quarantined", 1);
        self.cold.remove(home);
        self.resident.remove(&home);
        self.rebuild.remove(&home);
        self.quarantined.insert(home, err);
    }

    /// Writes `frame` with bounded retries on transient errors.
    fn put_with_retry(
        cold: &mut Box<dyn CheckpointStore>,
        retries: &mut u64,
        cfg: &FleetdConfig,
        home: usize,
        generation: u64,
        frame: &[u8],
    ) -> Result<(), StoreError> {
        let mut attempt = 0;
        loop {
            match cold.put(home, generation, frame) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt < cfg.max_store_retries => {
                    attempt += 1;
                    *retries += 1;
                    obs::counter_add("fleet.store_retries", 1);
                    if cfg.retry_backoff_ms > 0 {
                        let shift = (attempt - 1).min(6);
                        std::thread::sleep(std::time::Duration::from_millis(
                            cfg.retry_backoff_ms << shift,
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Makes `home` resident for the admission of `round` (loading,
    /// rebuilding, or starting fresh). Returns `false` iff the home
    /// ended up quarantined.
    fn make_resident<F>(&mut self, home: usize, round: u64, cfg: &FleetdConfig, gen: &F) -> bool
    where
        F: Fn(u64, u64, &mut Vec<Sample>),
    {
        if self.resident.contains_key(&home) {
            return true;
        }
        if self.rebuild.remove(&home) {
            self.rebuilds += 1;
            obs::counter_add("fleet.store_rebuilds", 1);
            self.resident
                .insert(home, Self::replay(home, round, cfg, gen));
            return true;
        }
        let verdict = match self.cold.get(home) {
            Ok(Some(bytes)) => store::validate_frame(&bytes, home, round).map(Some),
            // Rounds are sequential from 0 and every home is fed every
            // round, so a missing frame after round 0 is a lost record.
            Ok(None) if round == 0 => Ok(None),
            Ok(None) => Err(StoreError::Missing { home }),
            Err(e) => Err(e),
        };
        match verdict {
            Ok(Some(cp)) => {
                self.rehydrations += 1;
                self.cold.remove(home);
                self.resident.insert(
                    home,
                    ThresholdStream::from_compact(cfg.detector.clone(), cfg.spec, &cp),
                );
                true
            }
            Ok(None) => {
                self.resident.insert(
                    home,
                    ThresholdStream::new(cfg.detector.clone(), cfg.spec).with_fill(cfg.fill),
                );
                true
            }
            Err(err) => match cfg.recovery {
                RecoveryPolicy::Rebuild => {
                    self.rebuilds += 1;
                    obs::counter_add("fleet.store_rebuilds", 1);
                    self.cold.remove(home);
                    self.resident
                        .insert(home, Self::replay(home, round, cfg, gen));
                    true
                }
                RecoveryPolicy::Quarantine => {
                    self.quarantine(home, err);
                    false
                }
            },
        }
    }

    /// Evicts lowest-index homes until at most `cap` remain resident,
    /// framing each at `write_gen`. A home whose frame cannot be
    /// written even after retries has lost its durable copy *and* its
    /// live stream — it is quarantined with the write error.
    fn evict_to(&mut self, cap: usize, write_gen: u64, cfg: &FleetdConfig) {
        while self.resident.len() > cap {
            let (&home, _) = self.resident.iter().next().expect("len > cap >= 0");
            let stream = self.resident.remove(&home).expect("key just observed");
            let frame = store::encode_frame(
                home as u64,
                write_gen,
                &codec::encode(&stream.compact_checkpoint()),
            );
            match Self::put_with_retry(
                &mut self.cold,
                &mut self.retries,
                cfg,
                home,
                write_gen,
                &frame,
            ) {
                Ok(()) => self.evictions += 1,
                Err(err) => self.quarantine(home, err),
            }
        }
    }

    /// Write-syncs every resident home's frame at `write_gen` (durable
    /// mode only): after this, the store holds a current frame for
    /// every non-quarantined home, which is what makes the round
    /// recoverable.
    fn sync_resident(&mut self, write_gen: u64, cfg: &FleetdConfig) {
        let homes: Vec<usize> = self.resident.keys().copied().collect();
        for home in homes {
            let frame = store::encode_frame(
                home as u64,
                write_gen,
                &codec::encode(&self.resident[&home].compact_checkpoint()),
            );
            if let Err(err) = Self::put_with_retry(
                &mut self.cold,
                &mut self.retries,
                cfg,
                home,
                write_gen,
                &frame,
            ) {
                self.quarantine(home, err);
            }
        }
    }

    /// Feeds this round's chunk to every non-quarantined home of the
    /// shard, in home order, then enforces the residency cap and (in
    /// durable mode) write-syncs the survivors.
    fn admit_round<F>(&mut self, shard_homes: &[usize], round: u64, cfg: &FleetdConfig, gen: &F)
    where
        F: Fn(u64, u64, &mut Vec<Sample>),
    {
        let write_gen = round + 1;
        let mut chunk = Vec::new();
        for &home in shard_homes {
            if self.quarantined.contains_key(&home) {
                continue;
            }
            if !self.make_resident(home, round, cfg, gen) {
                continue;
            }
            gen(
                derive_seed(cfg.root_seed, &format!("home:{home}")),
                round,
                &mut chunk,
            );
            let report = self
                .resident
                .get_mut(&home)
                .expect("made resident")
                .feed(&chunk);
            self.samples += report.items as u64;
        }
        if let Some(cap) = cfg.shard_cap() {
            self.evict_to(cap, write_gen, cfg);
        }
        if cfg.durable_root().is_some() {
            self.sync_resident(write_gen, cfg);
        }
    }

    /// Validates every cold, non-quarantined home's frame at
    /// `expected_gen`, applying the recovery policy to anything
    /// unrecoverable (including homes scheduled for rebuild). Returns
    /// `(rebuilt, newly_quarantined)`.
    fn scrub<F>(
        &mut self,
        shard_homes: &[usize],
        expected_gen: u64,
        cfg: &FleetdConfig,
        gen: &F,
    ) -> (usize, usize)
    where
        F: Fn(u64, u64, &mut Vec<Sample>),
    {
        let (mut rebuilt, mut newly_quarantined) = (0, 0);
        for &home in shard_homes {
            if self.resident.contains_key(&home) || self.quarantined.contains_key(&home) {
                continue;
            }
            let verdict = match self.cold.get(home) {
                Ok(Some(bytes)) => store::validate_frame(&bytes, home, expected_gen).map(|_| ()),
                Ok(None) if expected_gen == 0 && !self.rebuild.contains(&home) => Ok(()),
                Ok(None) => Err(StoreError::Missing { home }),
                Err(e) => Err(e),
            };
            let Err(err) = verdict else {
                self.rebuild.remove(&home);
                continue;
            };
            match cfg.recovery {
                RecoveryPolicy::Rebuild => {
                    // Rebuild into resident state rather than re-writing
                    // the frame: store-fault decisions are deterministic
                    // per (home, generation), so a re-put at the same
                    // generation would be corrupted identically. Degraded
                    // mode holds the home in memory — possibly above the
                    // residency cap — until the next round evicts it at a
                    // fresh generation.
                    let stream = Self::replay(home, expected_gen, cfg, gen);
                    self.cold.remove(home);
                    self.resident.insert(home, stream);
                    self.rebuild.remove(&home);
                    self.rebuilds += 1;
                    obs::counter_add("fleet.store_rebuilds", 1);
                    rebuilt += 1;
                }
                RecoveryPolicy::Quarantine => {
                    self.quarantine(home, err);
                    newly_quarantined += 1;
                }
            }
        }
        (rebuilt, newly_quarantined)
    }

    /// `(index, finalized series)` for every non-quarantined home of
    /// the shard, resident or cold, in index order. Cold homes are
    /// decoded into a transient stream; the shard is not mutated.
    ///
    /// # Panics
    ///
    /// Panics if a cold frame fails validation at `expected_gen` —
    /// run [`FleetService::scrub`] (or recover) first when store faults
    /// may have corrupted frames since the last admission.
    fn finalize_homes(&self, expected_gen: u64, cfg: &FleetdConfig) -> Vec<(usize, LabelSeries)> {
        let mut out: Vec<(usize, LabelSeries)> = self
            .resident
            .iter()
            .map(|(&home, s)| (home, s.finalize()))
            .chain(
                self.cold
                    .contents()
                    .into_iter()
                    .filter(|(home, _)| {
                        !self.resident.contains_key(home) && !self.quarantined.contains_key(home)
                    })
                    .map(|(home, _)| {
                        let bytes = self
                            .cold
                            .get(home)
                            .expect("listed frame must be readable")
                            .expect("listed frame must exist");
                        let cp = match store::validate_frame(&bytes, home, expected_gen) {
                            Ok(cp) => cp,
                            Err(e) => panic!(
                                "cold frame for home {home} unrecoverable ({e}); \
                                 scrub or recover the fleet before finalizing"
                            ),
                        };
                        let s = ThresholdStream::from_compact(cfg.detector.clone(), cfg.spec, &cp);
                        (home, s.finalize())
                    }),
            )
            .collect();
        out.sort_unstable_by_key(|&(home, _)| home);
        out
    }
}

/// A long-lived, sharded fleet of streaming occupancy detectors — see
/// the [crate docs](crate) and `docs/FLEET.md` for the architecture and
/// the recovery lifecycle.
///
/// # Examples
///
/// Admit three rounds to a small capped fleet and check the digest
/// against an always-resident run:
///
/// ```
/// use fleetd::{synthetic_chunk, FleetService, FleetdConfig};
///
/// let capped = FleetdConfig { resident_cap: Some(8), ..FleetdConfig::default() };
/// let mut a = FleetService::new(capped, 100);
/// let mut b = FleetService::new(FleetdConfig::default(), 100);
/// for round in 0..3 {
///     a.admit_round(round, 30);
///     b.admit_round(round, 30);
/// }
/// assert!(a.memory().cold_homes > 0);
/// assert_eq!(a.digest(), b.digest()); // eviction is invisible to output
/// ```
#[derive(Debug)]
pub struct FleetService {
    cfg: FleetdConfig,
    homes: usize,
    shards: Vec<Shard>,
    rounds: u64,
}

impl FleetService {
    /// Creates a service managing homes `0..homes`. No stream state is
    /// allocated until a home's first admitted chunk.
    ///
    /// A durable config **initializes a fresh fleet**: any existing
    /// state under the root directory is removed and a zero-round
    /// manifest committed. Use [`recover`](Self::recover) to resume an
    /// interrupted fleet instead.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards` is zero, or if a durable root cannot be
    /// created and written.
    pub fn new(cfg: FleetdConfig, homes: usize) -> FleetService {
        assert!(cfg.shards > 0, "a fleet needs at least one shard");
        if let Some(root) = cfg.durable_root() {
            if root.exists() {
                std::fs::remove_dir_all(root).expect("stale fleet root must be removable");
            }
        }
        let shards = (0..cfg.shards)
            .map(|i| Shard::new(cfg.make_store(i).expect("fleet store must be writable")))
            .collect();
        let svc = FleetService {
            cfg,
            homes,
            shards,
            rounds: 0,
        };
        svc.commit_manifest();
        svc
    }

    /// Reopens a durable fleet from its manifest and per-shard frames,
    /// validating every home's record at the committed generation.
    ///
    /// Frames that fail validation (torn, bit-flipped, stale, or from a
    /// round whose manifest commit never landed) follow
    /// `cfg.recovery`: rebuild scheduling or quarantine, itemized in
    /// the returned [`RecoveryReport`]. The recovered service continues
    /// with `admit_round(rounds(), ..)` and produces output
    /// byte-identical to a never-interrupted run.
    ///
    /// # Errors
    ///
    /// [`RecoverError`] if the config is not durable, the manifest is
    /// missing or invalid, a shard store cannot be opened, or the
    /// manifest disagrees with the config's `shards`/`root_seed`.
    pub fn recover(cfg: FleetdConfig) -> Result<(FleetService, RecoveryReport), RecoverError> {
        let _span = obs::span("fleetd.recover");
        let root = cfg.durable_root().ok_or(RecoverError::NotDurable)?.clone();
        let manifest = Manifest::read(&root)
            .map_err(RecoverError::Manifest)?
            .ok_or_else(|| RecoverError::Manifest("no manifest file".into()))?;
        for (field, found, want) in [
            ("shards", manifest.shards, cfg.shards as u64),
            ("root_seed", manifest.root_seed, cfg.root_seed),
        ] {
            if found != want {
                return Err(RecoverError::ConfigMismatch {
                    field,
                    manifest: found,
                    config: want,
                });
            }
        }
        if manifest.shard_samples.len() != cfg.shards {
            return Err(RecoverError::Manifest(format!(
                "manifest has {} shard sample counters for {} shards",
                manifest.shard_samples.len(),
                cfg.shards
            )));
        }
        let homes = manifest.homes as usize;
        let rounds = manifest.rounds;
        let mut shards = Vec::with_capacity(cfg.shards);
        for i in 0..cfg.shards {
            let mut shard = Shard::new(
                cfg.make_store(i)
                    .map_err(|e| RecoverError::Io(e.to_string()))?,
            );
            shard.samples = manifest.shard_samples[i];
            shards.push(shard);
        }
        // Validate every home's frame at the committed generation, in
        // parallel by shard; the verdicts are pure functions of the
        // stored bytes, so the report is thread-count independent.
        let cfg_ref = &cfg;
        let shards = rayon::parallel_map(
            shards.into_iter().enumerate().collect(),
            |(i, mut shard)| {
                let shard_homes: Vec<usize> = (i..homes).step_by(cfg_ref.shards).collect();
                for home in shard_homes {
                    let verdict = match shard.cold.get(home) {
                        Ok(Some(bytes)) => store::validate_frame(&bytes, home, rounds).map(|_| ()),
                        Ok(None) if rounds == 0 => Ok(()),
                        Ok(None) => Err(StoreError::Missing { home }),
                        Err(e) => Err(e),
                    };
                    let Err(err) = verdict else { continue };
                    match cfg_ref.recovery {
                        RecoveryPolicy::Rebuild => {
                            shard.cold.remove(home);
                            shard.rebuild.insert(home);
                        }
                        RecoveryPolicy::Quarantine => shard.quarantine(home, err),
                    }
                }
                shard
            },
        );
        let mut report = RecoveryReport::default();
        for shard in &shards {
            report.scheduled_rebuilds += shard.rebuild.len();
            report
                .quarantined
                .extend(shard.quarantined.iter().map(|(&h, e)| (h, e.clone())));
            report.recovered += shard.cold.contents().len();
        }
        report.quarantined.sort_unstable_by_key(|&(home, _)| home);
        obs::gauge_set("fleetd.recovered_homes", report.recovered as f64);
        Ok((
            FleetService {
                cfg,
                homes,
                shards,
                rounds,
            },
            report,
        ))
    }

    /// The service's configuration.
    pub fn config(&self) -> &FleetdConfig {
        &self.cfg
    }

    /// Homes managed (resident + cold + never-admitted + quarantined).
    pub fn homes(&self) -> usize {
        self.homes
    }

    /// Admission rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    fn shard_homes(&self, shard: usize) -> Vec<usize> {
        (shard..self.homes).step_by(self.cfg.shards).collect()
    }

    /// Admits one round of [`synthetic_chunk`](crate::synthetic_chunk)
    /// readings (`samples_per_home` each), shards in parallel.
    pub fn admit_round(&mut self, round: u64, samples_per_home: usize) {
        self.admit_round_with(round, &|seed, round, out| {
            crate::gen::synthetic_chunk(seed, round, samples_per_home, out)
        });
    }

    /// Serial reference for [`admit_round`](Self::admit_round): the
    /// determinism tests assert both leave identical state.
    pub fn admit_round_serial(&mut self, round: u64, samples_per_home: usize) {
        self.admit_round_with_serial(round, &|seed, round, out| {
            crate::gen::synthetic_chunk(seed, round, samples_per_home, out)
        });
    }

    /// Admits one round with a caller-supplied chunk generator, run as
    /// `gen(home_seed, round, &mut chunk)` per home. Shards run in
    /// parallel; within a shard homes are fed in index order, so fleet
    /// state after the round is independent of thread count. Rounds are
    /// sequential from 0 — in degraded mode the generator is also what
    /// replays a lost home's completed rounds, so it must be the same
    /// function every round.
    pub fn admit_round_with<F>(&mut self, round: u64, gen: &F)
    where
        F: Fn(u64, u64, &mut Vec<Sample>) + Sync,
    {
        let _span = obs::span("fleetd.admit");
        let cfg = self.cfg.clone();
        let homes = self.homes;
        let taken = std::mem::take(&mut self.shards);
        self.shards =
            rayon::parallel_map(taken.into_iter().enumerate().collect(), |(i, mut shard)| {
                let shard_homes: Vec<usize> = (i..homes).step_by(cfg.shards).collect();
                shard.admit_round(&shard_homes, round, &cfg, gen);
                shard
            });
        self.finish_round();
    }

    /// Serial reference for [`admit_round_with`](Self::admit_round_with).
    pub fn admit_round_with_serial<F>(&mut self, round: u64, gen: &F)
    where
        F: Fn(u64, u64, &mut Vec<Sample>),
    {
        let _span = obs::span("fleetd.admit");
        let cfg = self.cfg.clone();
        for i in 0..self.shards.len() {
            let shard_homes = self.shard_homes(i);
            self.shards[i].admit_round(&shard_homes, round, &cfg, gen);
        }
        self.finish_round();
    }

    /// Validates every cold home's frame at the current round counter,
    /// rebuilding or quarantining anything unrecoverable per the
    /// recovery policy. Returns `(rebuilt, newly_quarantined)`. Run
    /// this before digesting a fleet whose final round may have written
    /// corrupted frames (injected store faults), and after a
    /// [`recover`](Self::recover) that scheduled rebuilds if no further
    /// rounds will be admitted.
    pub fn scrub_with<F>(&mut self, gen: &F) -> (usize, usize)
    where
        F: Fn(u64, u64, &mut Vec<Sample>) + Sync,
    {
        let _span = obs::span("fleetd.scrub");
        let cfg = self.cfg.clone();
        let homes = self.homes;
        let rounds = self.rounds;
        let taken = std::mem::take(&mut self.shards);
        let mut rebuilt = 0;
        let mut quarantined = 0;
        let results =
            rayon::parallel_map(taken.into_iter().enumerate().collect(), |(i, mut shard)| {
                let shard_homes: Vec<usize> = (i..homes).step_by(cfg.shards).collect();
                let counts = shard.scrub(&shard_homes, rounds, &cfg, gen);
                (shard, counts)
            });
        self.shards = results
            .into_iter()
            .map(|(shard, (r, q))| {
                rebuilt += r;
                quarantined += q;
                shard
            })
            .collect();
        (rebuilt, quarantined)
    }

    /// [`scrub_with`](Self::scrub_with) over the default
    /// [`synthetic_chunk`](crate::synthetic_chunk) generator at
    /// `samples_per_home` per round (must match what
    /// [`admit_round`](Self::admit_round) was called with).
    pub fn scrub(&mut self, samples_per_home: usize) -> (usize, usize) {
        self.scrub_with(&|seed, round, out| {
            crate::gen::synthetic_chunk(seed, round, samples_per_home, out)
        })
    }

    fn commit_manifest(&self) {
        let Some(root) = self.cfg.durable_root() else {
            return;
        };
        Manifest {
            homes: self.homes as u64,
            shards: self.cfg.shards as u64,
            rounds: self.rounds,
            root_seed: self.cfg.root_seed,
            shard_samples: self.shards.iter().map(|s| s.samples).collect(),
        }
        .write(root)
        .expect("fleet manifest must be writable");
    }

    fn finish_round(&mut self) {
        self.rounds += 1;
        self.commit_manifest();
        let mem = self.memory();
        obs::counter_add("fleetd.rounds", 1);
        obs::gauge_set(
            "fleetd.samples",
            self.shards.iter().map(|s| s.samples).sum::<u64>() as f64,
        );
        obs::gauge_set(
            "fleetd.evictions",
            self.shards.iter().map(|s| s.evictions).sum::<u64>() as f64,
        );
        obs::gauge_set(
            "fleetd.rehydrations",
            self.shards.iter().map(|s| s.rehydrations).sum::<u64>() as f64,
        );
        obs::gauge_set("fleetd.resident_homes", mem.resident_homes as f64);
        obs::gauge_set("fleetd.resident_bytes", mem.resident_bytes as f64);
        obs::gauge_set("fleetd.cold_bytes", mem.cold_bytes as f64);
        obs::gauge_set("fleetd.quarantined_homes", self.quarantined_count() as f64);
    }

    /// Evicts every resident home to its checkpoint frame — the
    /// steady-state floor of the memory model. Frames are written at
    /// the current round counter, so a following
    /// [`recover`](Self::recover) sees them as current.
    pub fn evict_all(&mut self) {
        let cfg = self.cfg.clone();
        let write_gen = self.rounds;
        for shard in &mut self.shards {
            shard.evict_to(0, write_gen, &cfg);
        }
    }

    /// Measures both memory tiers. Resident streams are measured by
    /// [`StreamState::state_bytes`]; cold homes by stored frame length
    /// (in durable mode resident homes also have a synced frame, which
    /// is not double-counted here — it is disk, not memory).
    pub fn memory(&self) -> MemoryStats {
        let mut stats = MemoryStats::default();
        for shard in &self.shards {
            stats.resident_homes += shard.resident.len();
            stats.resident_bytes += shard
                .resident
                .values()
                .map(|s| s.state_bytes())
                .sum::<usize>();
            for (home, len) in shard.cold.contents() {
                if !shard.resident.contains_key(&home) && !shard.quarantined.contains_key(&home) {
                    stats.cold_homes += 1;
                    stats.cold_bytes += len;
                }
            }
        }
        stats
    }

    /// Samples admitted across the fleet so far.
    pub fn samples(&self) -> u64 {
        self.shards.iter().map(|s| s.samples).sum()
    }

    /// Checkpoints evicted so far (a home can be evicted many times).
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.evictions).sum()
    }

    /// Cold checkpoints decoded back to live streams so far.
    pub fn rehydrations(&self) -> u64 {
        self.shards.iter().map(|s| s.rehydrations).sum()
    }

    /// Store writes retried after a transient error so far.
    pub fn store_retries(&self) -> u64 {
        self.shards.iter().map(|s| s.retries).sum()
    }

    /// Homes rebuilt in degraded mode so far.
    pub fn store_rebuilds(&self) -> u64 {
        self.shards.iter().map(|s| s.rebuilds).sum()
    }

    /// Quarantined homes with their typed errors, in home order — the
    /// storage analogue of the supervisor's quarantine report, and
    /// deterministic at any thread count.
    pub fn quarantined(&self) -> Vec<(usize, StoreError)> {
        let mut out: Vec<(usize, StoreError)> = self
            .shards
            .iter()
            .flat_map(|s| s.quarantined.iter().map(|(&h, e)| (h, e.clone())))
            .collect();
        out.sort_unstable_by_key(|&(home, _)| home);
        out
    }

    /// Number of quarantined homes.
    pub fn quarantined_count(&self) -> usize {
        self.shards.iter().map(|s| s.quarantined.len()).sum()
    }

    /// Finalizes one home's occupancy series without mutating the fleet
    /// (`None` if the home was never admitted a chunk or is
    /// quarantined).
    pub fn finalize_home(&self, home: usize) -> Option<LabelSeries> {
        if home >= self.homes {
            return None;
        }
        let shard = &self.shards[home % self.cfg.shards];
        if shard.quarantined.contains_key(&home) {
            return None;
        }
        if let Some(s) = shard.resident.get(&home) {
            return Some(s.finalize());
        }
        let bytes = shard.cold.get(home).ok()??;
        let cp = store::validate_frame(&bytes, home, self.rounds).ok()?;
        Some(
            ThresholdStream::from_compact(self.cfg.detector.clone(), self.cfg.spec, &cp).finalize(),
        )
    }

    /// Finalizes every admitted, non-quarantined home (in parallel,
    /// shard by shard) and folds the outputs into a [`FleetDigest`] in
    /// home-index order.
    pub fn digest(&self) -> FleetDigest {
        let _span = obs::span("fleetd.digest");
        let cfg = &self.cfg;
        let rounds = self.rounds;
        let per_shard = rayon::parallel_map(self.shards.iter().collect(), |shard| {
            shard
                .finalize_homes(rounds, cfg)
                .into_iter()
                .map(|(home, series)| {
                    let mut h = FNV_OFFSET;
                    h = fnv_u64(h, home as u64);
                    h = fnv_u64(h, series.len() as u64);
                    for &b in series.labels() {
                        h = fnv_byte(h, b as u8);
                    }
                    let positives = series.labels().iter().filter(|&&b| b).count() as u64;
                    (home, h, positives)
                })
                .collect::<Vec<_>>()
        });
        let mut all: Vec<(usize, u64, u64)> = per_shard.into_iter().flatten().collect();
        all.sort_unstable_by_key(|&(home, _, _)| home);
        let mut digest = FNV_OFFSET;
        let mut positives = 0;
        for &(home, h, p) in &all {
            digest = fnv_u64(digest, home as u64);
            digest = fnv_u64(digest, h);
            positives += p;
        }
        FleetDigest {
            homes: all.len(),
            samples: self.samples(),
            positives,
            digest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cfg: FleetdConfig, homes: usize, rounds: u64, serial: bool) -> FleetService {
        let mut svc = FleetService::new(cfg, homes);
        for round in 0..rounds {
            if serial {
                svc.admit_round_serial(round, 30);
            } else {
                svc.admit_round(round, 30);
            }
        }
        svc
    }

    #[test]
    fn parallel_equals_serial() {
        let a = run(FleetdConfig::default(), 333, 3, false);
        let b = run(FleetdConfig::default(), 333, 3, true);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.memory(), b.memory());
    }

    #[test]
    fn capped_fleet_evicts_and_stays_bounded() {
        let cfg = FleetdConfig {
            resident_cap: Some(64),
            ..FleetdConfig::default()
        };
        let svc = run(cfg, 500, 3, false);
        let mem = svc.memory();
        assert!(mem.resident_homes <= 64, "{mem:?}");
        assert_eq!(mem.resident_homes + mem.cold_homes, 500);
        assert!(svc.evictions() > 0);
        assert!(svc.rehydrations() > 0, "rounds 2+ must rehydrate");
    }

    #[test]
    fn eviction_is_invisible_to_output() {
        let capped = FleetdConfig {
            resident_cap: Some(32),
            ..FleetdConfig::default()
        };
        let a = run(capped, 300, 4, false);
        let b = run(FleetdConfig::default(), 300, 4, false);
        assert_eq!(a.digest(), b.digest());
        for home in [0, 1, 63, 64, 150, 299] {
            assert_eq!(a.finalize_home(home), b.finalize_home(home), "home {home}");
        }
    }

    #[test]
    fn digest_tracks_every_home() {
        let svc = run(FleetdConfig::default(), 130, 2, false);
        let d = svc.digest();
        assert_eq!(d.homes, 130);
        assert_eq!(d.samples, 130 * 2 * 30);
        assert!(svc.finalize_home(130).is_none());
    }

    #[test]
    fn evict_all_reaches_cold_floor() {
        let mut svc = run(FleetdConfig::default(), 100, 2, false);
        let before = svc.digest();
        svc.evict_all();
        let mem = svc.memory();
        assert_eq!(mem.resident_homes, 0);
        assert_eq!(mem.cold_homes, 100);
        assert!(mem.resident_bytes == 0 && mem.cold_bytes > 0);
        assert_eq!(svc.digest(), before, "evict_all must not change output");
    }

    #[test]
    fn recover_refuses_memory_configs_and_mismatches() {
        assert_eq!(
            FleetService::recover(FleetdConfig::default()).err(),
            Some(RecoverError::NotDurable)
        );
    }
}
