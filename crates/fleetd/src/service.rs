//! The sharded resident fleet service.
//!
//! A [`FleetService`] owns a fixed number of shards; each home belongs
//! to shard `home % shards` forever. A shard holds its homes in one of
//! two tiers: **resident** (a live [`ThresholdStream`] whose size is
//! measured by [`StreamState::state_bytes`]) or **cold** (the
//! [`codec`](crate::codec)-encoded compact checkpoint, costing exactly
//! its byte length). Admission rounds feed every home a chunk,
//! rehydrating cold homes on demand and evicting back down to the
//! residency cap afterwards — so steady-state memory is O(resident cap)
//! live streams plus O(homes) compact checkpoints, not O(homes) live
//! streams.

use crate::codec;
use niom::ThresholdDetector;
use std::collections::BTreeMap;
use stream::{Sample, StreamFill, StreamSpec, StreamState, ThresholdStream};
use timeseries::rng::derive_seed;
use timeseries::{LabelSeries, Resolution, Timestamp};

/// Configuration of a resident fleet service.
#[derive(Debug, Clone)]
pub struct FleetdConfig {
    /// Occupancy detector every home runs (Sec. III-B).
    pub detector: ThresholdDetector,
    /// Trace geometry shared by all homes.
    pub spec: StreamSpec,
    /// Causal gap-fill policy for transport gaps in admitted chunks.
    pub fill: StreamFill,
    /// Number of shards. Home → shard assignment is `home % shards`, so
    /// this is part of the deterministic identity of a run — it must
    /// never be derived from thread count.
    pub shards: usize,
    /// Fleet-wide residency cap: at most this many homes keep a live
    /// stream between rounds (each shard keeps its `cap / shards`
    /// share, at least one). `None` keeps every home resident.
    pub resident_cap: Option<usize>,
    /// Root seed from which per-home seeds derive
    /// (`derive_seed(root, "home:<i>")` — the fleet engine's scheme).
    pub root_seed: u64,
}

impl Default for FleetdConfig {
    fn default() -> FleetdConfig {
        FleetdConfig {
            detector: ThresholdDetector::default(),
            spec: StreamSpec::new(Timestamp::ZERO, Resolution::ONE_MINUTE),
            fill: StreamFill::Zero,
            shards: 64,
            resident_cap: None,
            root_seed: 7,
        }
    }
}

impl FleetdConfig {
    fn shard_cap(&self) -> Option<usize> {
        self.resident_cap
            .map(|cap| (cap.div_ceil(self.shards)).max(1))
    }
}

/// Point-in-time memory accounting of the fleet, split by tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Homes currently holding a live stream.
    pub resident_homes: usize,
    /// Homes currently evicted to an encoded checkpoint.
    pub cold_homes: usize,
    /// Bytes of live stream state ([`StreamState::state_bytes`] summed).
    pub resident_bytes: usize,
    /// Bytes of encoded cold checkpoints.
    pub cold_bytes: usize,
}

impl MemoryStats {
    /// Total tracked bytes across both tiers.
    pub fn total_bytes(&self) -> usize {
        self.resident_bytes + self.cold_bytes
    }

    /// Mean tracked bytes per home (0 for an empty fleet).
    pub fn bytes_per_home(&self) -> f64 {
        let homes = self.resident_homes + self.cold_homes;
        if homes == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 / homes as f64
    }
}

/// Order-independent-free digest of every home's finalized occupancy
/// series: homes are folded in index order, so two services that
/// processed the same readings — at any thread count, with any eviction
/// history — produce the same digest iff every home's output is
/// byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetDigest {
    /// Homes folded into the digest.
    pub homes: usize,
    /// Samples admitted across the fleet (gap-withheld ones included).
    pub samples: u64,
    /// Occupied labels across every home's finalized series.
    pub positives: u64,
    /// FNV-1a fold over `(home index, series length, labels)`.
    pub digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_byte(h: u64, b: u8) -> u64 {
    (h ^ b as u64).wrapping_mul(FNV_PRIME)
}

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = fnv_byte(h, b);
    }
    h
}

/// One shard: the resident and cold tiers of its homes, plus lifecycle
/// counters. Homes in `resident` and `cold` are always disjoint.
#[derive(Debug, Clone, Default)]
struct Shard {
    resident: BTreeMap<usize, ThresholdStream>,
    cold: BTreeMap<usize, Vec<u8>>,
    samples: u64,
    evictions: u64,
    rehydrations: u64,
}

impl Shard {
    /// Moves home `home` into the resident tier (decoding its cold
    /// checkpoint or starting a fresh stream) and returns it.
    fn rehydrate(&mut self, home: usize, cfg: &FleetdConfig) -> &mut ThresholdStream {
        if !self.resident.contains_key(&home) {
            let stream = match self.cold.remove(&home) {
                Some(bytes) => {
                    self.rehydrations += 1;
                    let cp = codec::decode(&bytes).expect("cold store holds valid checkpoints");
                    ThresholdStream::from_compact(cfg.detector.clone(), cfg.spec, &cp)
                }
                None => ThresholdStream::new(cfg.detector.clone(), cfg.spec).with_fill(cfg.fill),
            };
            self.resident.insert(home, stream);
        }
        self.resident.get_mut(&home).expect("just inserted")
    }

    /// Evicts lowest-index homes until at most `cap` remain resident.
    fn evict_to(&mut self, cap: usize) {
        while self.resident.len() > cap {
            let (&home, _) = self.resident.iter().next().expect("len > cap >= 0");
            let stream = self.resident.remove(&home).expect("key just observed");
            self.cold
                .insert(home, codec::encode(&stream.compact_checkpoint()));
            self.evictions += 1;
        }
    }

    /// Feeds this round's chunk to every home of the shard, in home
    /// order, then enforces the residency cap.
    fn admit_round<F>(&mut self, shard_homes: &[usize], round: u64, cfg: &FleetdConfig, gen: &F)
    where
        F: Fn(u64, u64, &mut Vec<Sample>),
    {
        let mut chunk = Vec::new();
        for &home in shard_homes {
            gen(
                derive_seed(cfg.root_seed, &format!("home:{home}")),
                round,
                &mut chunk,
            );
            let report = self.rehydrate(home, cfg).feed(&chunk);
            self.samples += report.items as u64;
        }
        if let Some(cap) = cfg.shard_cap() {
            self.evict_to(cap);
        }
    }

    /// `(index, finalized series)` for every home of the shard, resident
    /// or cold, in index order. Cold homes are decoded into a transient
    /// stream; the shard is not mutated.
    fn finalize_homes(&self, cfg: &FleetdConfig) -> Vec<(usize, LabelSeries)> {
        let mut out: Vec<(usize, LabelSeries)> = self
            .resident
            .iter()
            .map(|(&home, s)| (home, s.finalize()))
            .chain(self.cold.iter().map(|(&home, bytes)| {
                let cp = codec::decode(bytes).expect("cold store holds valid checkpoints");
                let s = ThresholdStream::from_compact(cfg.detector.clone(), cfg.spec, &cp);
                (home, s.finalize())
            }))
            .collect();
        out.sort_unstable_by_key(|&(home, _)| home);
        out
    }
}

/// A long-lived, sharded fleet of streaming occupancy detectors — see
/// the [crate docs](crate) and `docs/FLEET.md` for the architecture.
///
/// # Examples
///
/// Admit three rounds to a small capped fleet and check the digest
/// against an always-resident run:
///
/// ```
/// use fleetd::{synthetic_chunk, FleetService, FleetdConfig};
///
/// let capped = FleetdConfig { resident_cap: Some(8), ..FleetdConfig::default() };
/// let mut a = FleetService::new(capped, 100);
/// let mut b = FleetService::new(FleetdConfig::default(), 100);
/// for round in 0..3 {
///     a.admit_round(round, 30);
///     b.admit_round(round, 30);
/// }
/// assert!(a.memory().cold_homes > 0);
/// assert_eq!(a.digest(), b.digest()); // eviction is invisible to output
/// ```
#[derive(Debug, Clone)]
pub struct FleetService {
    cfg: FleetdConfig,
    homes: usize,
    shards: Vec<Shard>,
    rounds: u64,
}

impl FleetService {
    /// Creates a service managing homes `0..homes`. No stream state is
    /// allocated until a home's first admitted chunk.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards` is zero.
    pub fn new(cfg: FleetdConfig, homes: usize) -> FleetService {
        assert!(cfg.shards > 0, "a fleet needs at least one shard");
        let shards = vec![Shard::default(); cfg.shards];
        FleetService {
            cfg,
            homes,
            shards,
            rounds: 0,
        }
    }

    /// The service's configuration.
    pub fn config(&self) -> &FleetdConfig {
        &self.cfg
    }

    /// Homes managed (resident + cold + never-admitted).
    pub fn homes(&self) -> usize {
        self.homes
    }

    /// Admission rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    fn shard_homes(&self, shard: usize) -> Vec<usize> {
        (shard..self.homes).step_by(self.cfg.shards).collect()
    }

    /// Admits one round of [`synthetic_chunk`](crate::synthetic_chunk)
    /// readings (`samples_per_home` each), shards in parallel.
    pub fn admit_round(&mut self, round: u64, samples_per_home: usize) {
        self.admit_round_with(round, &|seed, round, out| {
            crate::gen::synthetic_chunk(seed, round, samples_per_home, out)
        });
    }

    /// Serial reference for [`admit_round`](Self::admit_round): the
    /// determinism tests assert both leave identical state.
    pub fn admit_round_serial(&mut self, round: u64, samples_per_home: usize) {
        self.admit_round_with_serial(round, &|seed, round, out| {
            crate::gen::synthetic_chunk(seed, round, samples_per_home, out)
        });
    }

    /// Admits one round with a caller-supplied chunk generator, run as
    /// `gen(home_seed, round, &mut chunk)` per home. Shards run in
    /// parallel; within a shard homes are fed in index order, so fleet
    /// state after the round is independent of thread count.
    pub fn admit_round_with<F>(&mut self, round: u64, gen: &F)
    where
        F: Fn(u64, u64, &mut Vec<Sample>) + Sync,
    {
        let _span = obs::span("fleetd.admit");
        let cfg = self.cfg.clone();
        let homes = self.homes;
        let taken = std::mem::take(&mut self.shards);
        self.shards =
            rayon::parallel_map(taken.into_iter().enumerate().collect(), |(i, mut shard)| {
                let shard_homes: Vec<usize> = (i..homes).step_by(cfg.shards).collect();
                shard.admit_round(&shard_homes, round, &cfg, gen);
                shard
            });
        self.finish_round();
    }

    /// Serial reference for [`admit_round_with`](Self::admit_round_with).
    pub fn admit_round_with_serial<F>(&mut self, round: u64, gen: &F)
    where
        F: Fn(u64, u64, &mut Vec<Sample>),
    {
        let _span = obs::span("fleetd.admit");
        let cfg = self.cfg.clone();
        for i in 0..self.shards.len() {
            let shard_homes = self.shard_homes(i);
            self.shards[i].admit_round(&shard_homes, round, &cfg, gen);
        }
        self.finish_round();
    }

    fn finish_round(&mut self) {
        self.rounds += 1;
        let mem = self.memory();
        obs::counter_add("fleetd.rounds", 1);
        obs::gauge_set(
            "fleetd.samples",
            self.shards.iter().map(|s| s.samples).sum::<u64>() as f64,
        );
        obs::gauge_set(
            "fleetd.evictions",
            self.shards.iter().map(|s| s.evictions).sum::<u64>() as f64,
        );
        obs::gauge_set(
            "fleetd.rehydrations",
            self.shards.iter().map(|s| s.rehydrations).sum::<u64>() as f64,
        );
        obs::gauge_set("fleetd.resident_homes", mem.resident_homes as f64);
        obs::gauge_set("fleetd.resident_bytes", mem.resident_bytes as f64);
        obs::gauge_set("fleetd.cold_bytes", mem.cold_bytes as f64);
    }

    /// Evicts every resident home to its compact checkpoint — the
    /// steady-state floor of the memory model.
    pub fn evict_all(&mut self) {
        for shard in &mut self.shards {
            shard.evict_to(0);
        }
    }

    /// Measures both memory tiers. Resident streams are measured by
    /// [`StreamState::state_bytes`]; cold homes by encoded length.
    pub fn memory(&self) -> MemoryStats {
        let mut stats = MemoryStats::default();
        for shard in &self.shards {
            stats.resident_homes += shard.resident.len();
            stats.cold_homes += shard.cold.len();
            stats.resident_bytes += shard
                .resident
                .values()
                .map(|s| s.state_bytes())
                .sum::<usize>();
            stats.cold_bytes += shard.cold.values().map(Vec::len).sum::<usize>();
        }
        stats
    }

    /// Samples admitted across the fleet so far.
    pub fn samples(&self) -> u64 {
        self.shards.iter().map(|s| s.samples).sum()
    }

    /// Checkpoints evicted so far (a home can be evicted many times).
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.evictions).sum()
    }

    /// Cold checkpoints decoded back to live streams so far.
    pub fn rehydrations(&self) -> u64 {
        self.shards.iter().map(|s| s.rehydrations).sum()
    }

    /// Finalizes one home's occupancy series without mutating the fleet
    /// (`None` if the home was never admitted a chunk).
    pub fn finalize_home(&self, home: usize) -> Option<LabelSeries> {
        if home >= self.homes {
            return None;
        }
        let shard = &self.shards[home % self.cfg.shards];
        if let Some(s) = shard.resident.get(&home) {
            return Some(s.finalize());
        }
        let bytes = shard.cold.get(&home)?;
        let cp = codec::decode(bytes).expect("cold store holds valid checkpoints");
        Some(
            ThresholdStream::from_compact(self.cfg.detector.clone(), self.cfg.spec, &cp).finalize(),
        )
    }

    /// Finalizes every admitted home (in parallel, shard by shard) and
    /// folds the outputs into a [`FleetDigest`] in home-index order.
    pub fn digest(&self) -> FleetDigest {
        let _span = obs::span("fleetd.digest");
        let cfg = &self.cfg;
        let per_shard = rayon::parallel_map(self.shards.iter().collect(), |shard| {
            shard
                .finalize_homes(cfg)
                .into_iter()
                .map(|(home, series)| {
                    let mut h = FNV_OFFSET;
                    h = fnv_u64(h, home as u64);
                    h = fnv_u64(h, series.len() as u64);
                    for &b in series.labels() {
                        h = fnv_byte(h, b as u8);
                    }
                    let positives = series.labels().iter().filter(|&&b| b).count() as u64;
                    (home, h, positives)
                })
                .collect::<Vec<_>>()
        });
        let mut all: Vec<(usize, u64, u64)> = per_shard.into_iter().flatten().collect();
        all.sort_unstable_by_key(|&(home, _, _)| home);
        let mut digest = FNV_OFFSET;
        let mut positives = 0;
        for &(home, h, p) in &all {
            digest = fnv_u64(digest, home as u64);
            digest = fnv_u64(digest, h);
            positives += p;
        }
        FleetDigest {
            homes: all.len(),
            samples: self.samples(),
            positives,
            digest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cfg: FleetdConfig, homes: usize, rounds: u64, serial: bool) -> FleetService {
        let mut svc = FleetService::new(cfg, homes);
        for round in 0..rounds {
            if serial {
                svc.admit_round_serial(round, 30);
            } else {
                svc.admit_round(round, 30);
            }
        }
        svc
    }

    #[test]
    fn parallel_equals_serial() {
        let a = run(FleetdConfig::default(), 333, 3, false);
        let b = run(FleetdConfig::default(), 333, 3, true);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.memory(), b.memory());
    }

    #[test]
    fn capped_fleet_evicts_and_stays_bounded() {
        let cfg = FleetdConfig {
            resident_cap: Some(64),
            ..FleetdConfig::default()
        };
        let svc = run(cfg, 500, 3, false);
        let mem = svc.memory();
        assert!(mem.resident_homes <= 64, "{mem:?}");
        assert_eq!(mem.resident_homes + mem.cold_homes, 500);
        assert!(svc.evictions() > 0);
        assert!(svc.rehydrations() > 0, "rounds 2+ must rehydrate");
    }

    #[test]
    fn eviction_is_invisible_to_output() {
        let capped = FleetdConfig {
            resident_cap: Some(32),
            ..FleetdConfig::default()
        };
        let a = run(capped, 300, 4, false);
        let b = run(FleetdConfig::default(), 300, 4, false);
        assert_eq!(a.digest(), b.digest());
        for home in [0, 1, 63, 64, 150, 299] {
            assert_eq!(a.finalize_home(home), b.finalize_home(home), "home {home}");
        }
    }

    #[test]
    fn digest_tracks_every_home() {
        let svc = run(FleetdConfig::default(), 130, 2, false);
        let d = svc.digest();
        assert_eq!(d.homes, 130);
        assert_eq!(d.samples, 130 * 2 * 30);
        assert!(svc.finalize_home(130).is_none());
    }

    #[test]
    fn evict_all_reaches_cold_floor() {
        let mut svc = run(FleetdConfig::default(), 100, 2, false);
        let before = svc.digest();
        svc.evict_all();
        let mem = svc.memory();
        assert_eq!(mem.resident_homes, 0);
        assert_eq!(mem.cold_homes, 100);
        assert!(mem.resident_bytes == 0 && mem.cold_bytes > 0);
        assert_eq!(svc.digest(), before, "evict_all must not change output");
    }
}
