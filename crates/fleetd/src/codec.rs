//! Compact binary codec for evicted per-home checkpoints.
//!
//! An evicted home is exactly one encoded
//! [`stream::WindowCheckpoint`]: the fill automaton
//! (one tagged scalar), the open-window samples, and one 48-byte record
//! per closed window. The format is little-endian, versioned by a
//! 4-byte magic, and round-trips exactly (`decode(encode(cp)) == cp`,
//! including NaN payloads bit-for-bit) — the property the eviction
//! identity claim leans on.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   4 bytes  "FDC1"
//! fill    1 + 8    tag (0 passthrough, 1 zero, 2 hold-pending, 3 hold-last)
//!                  + u64 count or f64 watts payload (zero if unused)
//! next    8        u64 open-window start index
//! open    4 + 8n   u32 count + f64 samples
//! closed  4 + 48n  u32 count + (u64 start, f64 mean/variance/range/min/max)
//! ```

use stream::{FillCheckpoint, WindowCheckpoint};
use timeseries::Summary;

/// First four bytes of every encoded checkpoint.
pub const MAGIC: [u8; 4] = *b"FDC1";

/// Why a byte buffer failed to decode as a checkpoint.
///
/// Every variant carries the byte offset it is anchored at (see
/// [`CodecError::offset`]) so recovery logs can name *where* a stored
/// record went bad, not just that it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Buffer ended before the structure it promised; `offset` is the
    /// position of the field that could not be read.
    Truncated {
        /// Byte position at which more input was required.
        offset: usize,
    },
    /// The buffer doesn't start with [`MAGIC`].
    BadMagic,
    /// Unknown fill-automaton tag at `offset`.
    BadFillTag {
        /// The unrecognized tag byte.
        tag: u8,
        /// Byte position of the tag.
        offset: usize,
    },
    /// Bytes remain after a complete checkpoint ending at `offset`.
    TrailingBytes {
        /// Byte position where the checkpoint ended.
        offset: usize,
        /// Number of surplus bytes.
        trailing: usize,
    },
}

impl CodecError {
    /// Byte offset the error is anchored at: where input ran out, where
    /// the bad tag sits, or where surplus bytes begin (0 for a bad
    /// magic).
    pub fn offset(&self) -> usize {
        match *self {
            CodecError::Truncated { offset } => offset,
            CodecError::BadMagic => 0,
            CodecError::BadFillTag { offset, .. } => offset,
            CodecError::TrailingBytes { offset, .. } => offset,
        }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { offset } => {
                write!(f, "checkpoint buffer truncated at byte {offset}")
            }
            CodecError::BadMagic => write!(f, "checkpoint magic mismatch at byte 0"),
            CodecError::BadFillTag { tag, offset } => {
                write!(f, "unknown fill tag {tag} at byte {offset}")
            }
            CodecError::TrailingBytes { offset, trailing } => {
                write!(
                    f,
                    "{trailing} trailing bytes after checkpoint end at byte {offset}"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes a checkpoint into the compact binary layout.
///
/// # Examples
///
/// ```
/// use stream::{FillCheckpoint, WindowCheckpoint};
///
/// let cp = WindowCheckpoint {
///     fill: FillCheckpoint::Passthrough,
///     next_start: 30,
///     open: vec![120.0, 350.5],
///     closed: Vec::new(),
/// };
/// let bytes = fleetd::codec::encode(&cp);
/// assert_eq!(fleetd::codec::decode(&bytes).unwrap(), cp);
/// ```
pub fn encode(cp: &WindowCheckpoint) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(cp));
    out.extend_from_slice(&MAGIC);
    let (tag, payload): (u8, u64) = match cp.fill {
        FillCheckpoint::Passthrough => (0, 0),
        FillCheckpoint::Zero => (1, 0),
        FillCheckpoint::HoldPending(n) => (2, n),
        FillCheckpoint::HoldLast(w) => (3, w.to_bits()),
    };
    out.push(tag);
    out.extend_from_slice(&payload.to_le_bytes());
    out.extend_from_slice(&cp.next_start.to_le_bytes());
    out.extend_from_slice(&(cp.open.len() as u32).to_le_bytes());
    for &x in &cp.open {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.extend_from_slice(&(cp.closed.len() as u32).to_le_bytes());
    for &(start, s) in &cp.closed {
        out.extend_from_slice(&start.to_le_bytes());
        for v in [s.mean, s.variance, s.range, s.min, s.max] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Exact byte length [`encode`] produces for `cp` — the cold-store cost
/// of evicting this home.
pub fn encoded_len(cp: &WindowCheckpoint) -> usize {
    4 + 9 + 8 + 4 + 8 * cp.open.len() + 4 + 48 * cp.closed.len()
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .at
            .checked_add(n)
            .ok_or(CodecError::Truncated { offset: self.at })?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated { offset: self.at });
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Deserializes a buffer produced by [`encode`].
///
/// # Errors
///
/// [`CodecError`] on truncation, magic mismatch, an unknown fill tag, or
/// trailing bytes. Never panics on malformed input.
pub fn decode(bytes: &[u8]) -> Result<WindowCheckpoint, CodecError> {
    let mut r = Reader { buf: bytes, at: 0 };
    if r.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let tag_at = r.at;
    let tag = r.u8()?;
    let payload = r.u64()?;
    let fill = match tag {
        0 => FillCheckpoint::Passthrough,
        1 => FillCheckpoint::Zero,
        2 => FillCheckpoint::HoldPending(payload),
        3 => FillCheckpoint::HoldLast(f64::from_bits(payload)),
        tag => {
            return Err(CodecError::BadFillTag {
                tag,
                offset: tag_at,
            })
        }
    };
    let next_start = r.u64()?;
    let open_len = r.u32()? as usize;
    let mut open = Vec::with_capacity(open_len.min(bytes.len() / 8));
    for _ in 0..open_len {
        open.push(r.f64()?);
    }
    let closed_len = r.u32()? as usize;
    let mut closed = Vec::with_capacity(closed_len.min(bytes.len() / 48));
    for _ in 0..closed_len {
        let start = r.u64()?;
        let mean = r.f64()?;
        let variance = r.f64()?;
        let range = r.f64()?;
        let min = r.f64()?;
        let max = r.f64()?;
        closed.push((
            start,
            Summary {
                mean,
                variance,
                range,
                min,
                max,
            },
        ));
    }
    if r.at != bytes.len() {
        return Err(CodecError::TrailingBytes {
            offset: r.at,
            trailing: bytes.len() - r.at,
        });
    }
    Ok(WindowCheckpoint {
        fill,
        next_start,
        open,
        closed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> WindowCheckpoint {
        WindowCheckpoint {
            fill: FillCheckpoint::HoldLast(432.5),
            next_start: 45,
            open: vec![120.0, f64::NAN, 0.0, -1.5],
            closed: vec![
                (
                    0,
                    Summary {
                        mean: 1.0,
                        variance: 2.0,
                        range: 3.0,
                        min: 4.0,
                        max: 5.0,
                    },
                ),
                (
                    15,
                    Summary {
                        mean: -1.0,
                        variance: 0.0,
                        range: f64::INFINITY,
                        min: f64::MIN,
                        max: f64::MAX,
                    },
                ),
            ],
        }
    }

    fn bit_eq(a: &WindowCheckpoint, b: &WindowCheckpoint) -> bool {
        // PartialEq is false under NaN; compare payload bits instead.
        encode(a) == encode(b)
    }

    #[test]
    fn round_trips_exactly() {
        for fill in [
            FillCheckpoint::Passthrough,
            FillCheckpoint::Zero,
            FillCheckpoint::HoldPending(7),
            FillCheckpoint::HoldLast(99.25),
        ] {
            let cp = WindowCheckpoint {
                fill,
                ..sample_checkpoint()
            };
            let bytes = encode(&cp);
            assert_eq!(bytes.len(), encoded_len(&cp));
            assert!(bit_eq(&decode(&bytes).unwrap(), &cp), "{fill:?}");
        }
    }

    #[test]
    fn empty_checkpoint_is_29_bytes() {
        let cp = WindowCheckpoint {
            fill: FillCheckpoint::Zero,
            next_start: 0,
            open: Vec::new(),
            closed: Vec::new(),
        };
        assert_eq!(encode(&cp).len(), 29);
    }

    #[test]
    fn malformed_buffers_error_not_panic() {
        let good = encode(&sample_checkpoint());
        assert_eq!(decode(&[]), Err(CodecError::Truncated { offset: 0 }));
        assert_eq!(decode(b"NOPE"), Err(CodecError::BadMagic));
        for cut in 0..good.len() {
            let err = decode(&good[..cut]).expect_err("every prefix must fail");
            assert!(err.offset() <= cut, "cut {cut}: {err}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            decode(&trailing),
            Err(CodecError::TrailingBytes {
                offset: good.len(),
                trailing: 1
            })
        );
        let mut bad_tag = good.clone();
        bad_tag[4] = 9;
        assert_eq!(
            decode(&bad_tag),
            Err(CodecError::BadFillTag { tag: 9, offset: 4 })
        );
    }

    #[test]
    fn huge_declared_lengths_do_not_preallocate() {
        // A 4 GiB open-window count on a 30-byte buffer must fail fast
        // (Truncated), not try to reserve 32 GiB.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(0);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode(&bytes),
            Err(CodecError::Truncated {
                offset: bytes.len()
            })
        );
    }
}
