//! Perf-model extrapolation: from one measured run to "1M homes needs
//! N cores".
//!
//! The resident admission path is embarrassingly parallel across shards
//! and was measured byte-identical at every thread count, so a linear
//! per-core model is honest: measured samples/sec on `threads` workers
//! gives a per-core rate, and a target fleet's required ingest rate
//! divides by it. The model deliberately ignores memory bandwidth and
//! NUMA effects — it extrapolates the measured regime, it doesn't
//! simulate a bigger one — which is why `fleet_scale` reports the
//! observation alongside the projection.

/// One measured resident-fleet data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Homes in the measured fleet.
    pub homes: usize,
    /// Admission throughput actually measured, samples/sec.
    pub samples_per_sec: f64,
    /// Worker threads the measurement ran on.
    pub threads: usize,
}

/// The projected capacity answer — see [`extrapolate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extrapolation {
    /// Measured throughput divided by measured threads.
    pub per_core_samples_per_sec: f64,
    /// Ingest rate the target fleet generates, samples/sec.
    pub required_samples_per_sec: f64,
    /// `required / per_core` — fractional cores of this machine's type.
    pub projected_cores: f64,
    /// [`projected_cores`](Extrapolation::projected_cores) rounded up to
    /// whole cores (minimum 1 for a non-empty target).
    pub projected_cores_ceil: usize,
    /// How many times over the *measured* configuration could serve the
    /// target (`> 1.0` means it already can).
    pub headroom: f64,
}

/// Projects how many cores a `target_homes` fleet needs when each home
/// emits `samples_per_home_per_sec` readings, given one measured
/// [`Observation`].
///
/// # Panics
///
/// Panics if the observation has zero threads or a non-positive
/// measured rate — a degenerate measurement can't anchor a projection.
///
/// # Examples
///
/// ```
/// use fleetd::{extrapolate, Observation};
///
/// // Measured: 8 threads admit 8M samples/sec. Target: 1M homes at
/// // one reading per home per second.
/// let obs = Observation { homes: 100_000, samples_per_sec: 8.0e6, threads: 8 };
/// let x = extrapolate(&obs, 1_000_000, 1.0);
/// assert_eq!(x.per_core_samples_per_sec, 1.0e6);
/// assert_eq!(x.required_samples_per_sec, 1.0e6);
/// assert_eq!(x.projected_cores_ceil, 1);
/// assert_eq!(x.headroom, 8.0); // the measured 8-thread box is 8x over
/// ```
pub fn extrapolate(
    obs: &Observation,
    target_homes: usize,
    samples_per_home_per_sec: f64,
) -> Extrapolation {
    assert!(obs.threads > 0, "observation needs at least one thread");
    assert!(
        obs.samples_per_sec > 0.0,
        "observation needs a positive measured rate"
    );
    let per_core = obs.samples_per_sec / obs.threads as f64;
    let required = target_homes as f64 * samples_per_home_per_sec;
    let projected = required / per_core;
    let ceil = if required <= 0.0 {
        0
    } else {
        (projected.ceil() as usize).max(1)
    };
    Extrapolation {
        per_core_samples_per_sec: per_core,
        required_samples_per_sec: required,
        projected_cores: projected,
        projected_cores_ceil: ceil,
        headroom: if required > 0.0 {
            obs.samples_per_sec / required
        } else {
            f64::INFINITY
        },
    }
}

/// Picks the ladder rung a projection should anchor on: the observation
/// with the most homes, on the grounds that the biggest measured fleet
/// is closest to the target regime. Ties keep the later entry (the
/// ladder's rerun of the same size supersedes the earlier one). Returns
/// `None` for an empty ladder.
///
/// The ladder does not have to be sorted or monotone — `fleet_scale`
/// builds it in run order, and a future rung shuffle must not silently
/// change which measurement anchors the north-star projection.
pub fn top_rung(ladder: &[Observation]) -> Option<&Observation> {
    let mut best: Option<&Observation> = None;
    for obs in ladder {
        if best.is_none_or(|b| obs.homes >= b.homes) {
            best = Some(obs);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_linearly_in_target() {
        let obs = Observation {
            homes: 10_000,
            samples_per_sec: 2.0e6,
            threads: 4,
        };
        let small = extrapolate(&obs, 100_000, 0.5);
        let big = extrapolate(&obs, 1_000_000, 0.5);
        assert!((big.projected_cores / small.projected_cores - 10.0).abs() < 1e-9);
        assert_eq!(small.per_core_samples_per_sec, big.per_core_samples_per_sec);
    }

    #[test]
    fn empty_target_needs_nothing() {
        let obs = Observation {
            homes: 10,
            samples_per_sec: 1.0e3,
            threads: 1,
        };
        let x = extrapolate(&obs, 0, 1.0);
        assert_eq!(x.projected_cores_ceil, 0);
        assert_eq!(x.headroom, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "positive measured rate")]
    fn degenerate_observation_is_rejected() {
        let obs = Observation {
            homes: 10,
            samples_per_sec: 0.0,
            threads: 1,
        };
        let _ = extrapolate(&obs, 10, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_thread_observation_is_rejected() {
        let obs = Observation {
            homes: 10,
            samples_per_sec: 1.0e3,
            threads: 0,
        };
        let _ = extrapolate(&obs, 10, 1.0);
    }

    #[test]
    fn zero_per_home_rate_is_an_idle_target() {
        // A target fleet that never emits needs no cores, like an empty
        // one — required rate 0 must not round up to one core.
        let obs = Observation {
            homes: 10,
            samples_per_sec: 1.0e3,
            threads: 2,
        };
        let x = extrapolate(&obs, 1_000_000, 0.0);
        assert_eq!(x.required_samples_per_sec, 0.0);
        assert_eq!(x.projected_cores, 0.0);
        assert_eq!(x.projected_cores_ceil, 0);
        assert_eq!(x.headroom, f64::INFINITY);
    }

    #[test]
    fn tiny_positive_requirement_still_needs_one_core() {
        let obs = Observation {
            homes: 10,
            samples_per_sec: 1.0e6,
            threads: 1,
        };
        let x = extrapolate(&obs, 1, 1.0);
        assert!(x.projected_cores < 1e-5);
        assert_eq!(x.projected_cores_ceil, 1);
    }

    fn rung(homes: usize, rate: f64) -> Observation {
        Observation {
            homes,
            samples_per_sec: rate,
            threads: 4,
        }
    }

    #[test]
    fn top_rung_single_tier_ladder() {
        let ladder = [rung(10_000, 1.0e6)];
        assert_eq!(top_rung(&ladder), Some(&ladder[0]));
        assert_eq!(top_rung(&[]), None);
    }

    #[test]
    fn top_rung_ignores_ladder_order() {
        // Non-monotone ladder: the biggest fleet wins regardless of
        // position, and a tied rerun supersedes the earlier entry.
        let ladder = [
            rung(100_000, 2.0e6),
            rung(1_000_000, 3.0e6),
            rung(10_000, 9.0e6),
            rung(1_000_000, 4.0e6),
        ];
        let top = top_rung(&ladder).unwrap();
        assert_eq!(top.homes, 1_000_000);
        assert_eq!(top.samples_per_sec, 4.0e6);
    }
}
