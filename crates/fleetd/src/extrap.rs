//! Perf-model extrapolation: from one measured run to "1M homes needs
//! N cores".
//!
//! The resident admission path is embarrassingly parallel across shards
//! and was measured byte-identical at every thread count, so a linear
//! per-core model is honest: measured samples/sec on `threads` workers
//! gives a per-core rate, and a target fleet's required ingest rate
//! divides by it. The model deliberately ignores memory bandwidth and
//! NUMA effects — it extrapolates the measured regime, it doesn't
//! simulate a bigger one — which is why `fleet_scale` reports the
//! observation alongside the projection.

/// One measured resident-fleet data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Homes in the measured fleet.
    pub homes: usize,
    /// Admission throughput actually measured, samples/sec.
    pub samples_per_sec: f64,
    /// Worker threads the measurement ran on.
    pub threads: usize,
}

/// The projected capacity answer — see [`extrapolate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extrapolation {
    /// Measured throughput divided by measured threads.
    pub per_core_samples_per_sec: f64,
    /// Ingest rate the target fleet generates, samples/sec.
    pub required_samples_per_sec: f64,
    /// `required / per_core` — fractional cores of this machine's type.
    pub projected_cores: f64,
    /// [`projected_cores`](Extrapolation::projected_cores) rounded up to
    /// whole cores (minimum 1 for a non-empty target).
    pub projected_cores_ceil: usize,
    /// How many times over the *measured* configuration could serve the
    /// target (`> 1.0` means it already can).
    pub headroom: f64,
}

/// Projects how many cores a `target_homes` fleet needs when each home
/// emits `samples_per_home_per_sec` readings, given one measured
/// [`Observation`].
///
/// # Panics
///
/// Panics if the observation has zero threads or a non-positive
/// measured rate — a degenerate measurement can't anchor a projection.
///
/// # Examples
///
/// ```
/// use fleetd::{extrapolate, Observation};
///
/// // Measured: 8 threads admit 8M samples/sec. Target: 1M homes at
/// // one reading per home per second.
/// let obs = Observation { homes: 100_000, samples_per_sec: 8.0e6, threads: 8 };
/// let x = extrapolate(&obs, 1_000_000, 1.0);
/// assert_eq!(x.per_core_samples_per_sec, 1.0e6);
/// assert_eq!(x.required_samples_per_sec, 1.0e6);
/// assert_eq!(x.projected_cores_ceil, 1);
/// assert_eq!(x.headroom, 8.0); // the measured 8-thread box is 8x over
/// ```
pub fn extrapolate(
    obs: &Observation,
    target_homes: usize,
    samples_per_home_per_sec: f64,
) -> Extrapolation {
    assert!(obs.threads > 0, "observation needs at least one thread");
    assert!(
        obs.samples_per_sec > 0.0,
        "observation needs a positive measured rate"
    );
    let per_core = obs.samples_per_sec / obs.threads as f64;
    let required = target_homes as f64 * samples_per_home_per_sec;
    let projected = required / per_core;
    let ceil = if required <= 0.0 {
        0
    } else {
        (projected.ceil() as usize).max(1)
    };
    Extrapolation {
        per_core_samples_per_sec: per_core,
        required_samples_per_sec: required,
        projected_cores: projected,
        projected_cores_ceil: ceil,
        headroom: if required > 0.0 {
            obs.samples_per_sec / required
        } else {
            f64::INFINITY
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_linearly_in_target() {
        let obs = Observation {
            homes: 10_000,
            samples_per_sec: 2.0e6,
            threads: 4,
        };
        let small = extrapolate(&obs, 100_000, 0.5);
        let big = extrapolate(&obs, 1_000_000, 0.5);
        assert!((big.projected_cores / small.projected_cores - 10.0).abs() < 1e-9);
        assert_eq!(small.per_core_samples_per_sec, big.per_core_samples_per_sec);
    }

    #[test]
    fn empty_target_needs_nothing() {
        let obs = Observation {
            homes: 10,
            samples_per_sec: 1.0e3,
            threads: 1,
        };
        let x = extrapolate(&obs, 0, 1.0);
        assert_eq!(x.projected_cores_ceil, 0);
        assert_eq!(x.headroom, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "positive measured rate")]
    fn degenerate_observation_is_rejected() {
        let obs = Observation {
            homes: 10,
            samples_per_sec: 0.0,
            threads: 1,
        };
        let _ = extrapolate(&obs, 10, 1.0);
    }
}
