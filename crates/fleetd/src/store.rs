//! Pluggable, crash-recoverable checkpoint storage for the fleet.
//!
//! The service persists every evicted (and, in durable mode, every
//! round-synced) home as a **frame**: the compact
//! [`codec`](crate::codec) checkpoint wrapped in a magic-versioned
//! header carrying the home index, a **generation counter**, and a
//! CRC32 over the whole record. The frame layer is what makes storage
//! defects *detectable*:
//!
//! * a torn (truncated) write fails CRC or length validation,
//! * any single-byte flip fails CRC (or magic/length) validation,
//! * a silently lost write leaves the previous generation in place,
//!   which the generation counter exposes on load.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    4 bytes  "FDS1"
//! home     8        u64 home index
//! gen      8        u64 generation (rounds completed when written)
//! len      4        u32 payload byte length
//! crc      4        CRC32 (IEEE) over home‖gen‖len‖payload
//! payload  len      codec-encoded WindowCheckpoint ("FDC1", see codec)
//! ```
//!
//! [`CheckpointStore`] abstracts where frames live: [`MemoryStore`]
//! keeps them in process memory (today's behavior), [`DurableStore`]
//! keeps one file per home with atomic temp-file+rename writes, and
//! [`FaultyStore`] wraps any store with the seeded
//! [`faults::StoreFaultInjector`] defect model. The service composes
//! them per shard; `docs/FLEET.md` documents the recovery lifecycle.

use faults::StoreFaultInjector;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// First four bytes of every stored frame.
pub const FRAME_MAGIC: [u8; 4] = *b"FDS1";

/// Frame header bytes preceding the payload.
pub const FRAME_OVERHEAD: usize = 28;

/// Magic of the fleet manifest file ([`Manifest`]).
pub const MANIFEST_MAGIC: [u8; 4] = *b"FDM1";

/// File name of the manifest inside a durable fleet root.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Byte-at-a-time lookup table for [`crc32`], built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `bytes`.
///
/// Table-driven (the table is a compile-time const): every durable
/// eviction and sync checksums a frame, so this sits on the admission
/// hot path. Matches the ubiquitous zlib/`cksum -o 3` definition, so
/// stored frames can be triaged with standard tooling.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Why a byte buffer failed to parse as a stored frame (or manifest).
///
/// Every variant pinpoints the failing byte via [`FrameError::offset`]
/// so recovery logs can say *where* a record went bad, mirroring the
/// offset-carrying [`CodecError`](crate::codec::CodecError).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer ended before the structure it promised; `offset` is where
    /// the missing bytes were needed.
    Truncated {
        /// Byte position at which more input was required.
        offset: usize,
    },
    /// The buffer doesn't start with the expected magic.
    BadMagic,
    /// The stored CRC32 doesn't match the record's contents.
    CrcMismatch {
        /// CRC stored in the record.
        stored: u32,
        /// CRC computed over the record's contents.
        computed: u32,
    },
    /// Bytes remain after a complete record.
    TrailingBytes {
        /// Number of surplus bytes.
        trailing: usize,
    },
}

impl FrameError {
    /// Byte offset the error is anchored at (0 for a bad magic, the CRC
    /// field for a checksum mismatch, the record end for trailing
    /// bytes).
    pub fn offset(&self) -> usize {
        match *self {
            FrameError::Truncated { offset } => offset,
            FrameError::BadMagic => 0,
            FrameError::CrcMismatch { .. } => 24,
            FrameError::TrailingBytes { .. } => FRAME_OVERHEAD,
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { offset } => {
                write!(f, "frame truncated (needed more bytes at offset {offset})")
            }
            FrameError::BadMagic => write!(f, "frame magic mismatch at offset 0"),
            FrameError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "frame crc mismatch (stored {stored:#010x}, computed {computed:#010x})"
                )
            }
            FrameError::TrailingBytes { trailing } => {
                write!(f, "{trailing} trailing bytes after frame payload")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A decoded stored frame: who it belongs to, when it was written, and
/// the codec payload (not yet decoded — see
/// [`validate_frame`] for the full pipeline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Home index the payload belongs to.
    pub home: u64,
    /// Generation counter: admission rounds completed when written.
    pub generation: u64,
    /// Codec-encoded checkpoint bytes.
    pub payload: Vec<u8>,
}

/// Wraps a codec payload in the CRC-framed, generation-stamped layout.
pub fn encode_frame(home: u64, generation: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&home.to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = crc32(&[&out[4..24], payload].concat());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses and CRC-validates a stored frame.
///
/// # Errors
///
/// [`FrameError`] on truncation at any prefix length, wrong magic, any
/// single-byte corruption (caught by the CRC, the length field, or the
/// magic), or trailing bytes. Never panics on malformed input.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, FrameError> {
    if bytes.len() < 4 {
        return Err(FrameError::Truncated {
            offset: bytes.len(),
        });
    }
    if bytes[..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    if bytes.len() < FRAME_OVERHEAD {
        return Err(FrameError::Truncated {
            offset: bytes.len(),
        });
    }
    let home = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
    let generation = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes")) as usize;
    let stored = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
    let end = FRAME_OVERHEAD
        .checked_add(len)
        .ok_or(FrameError::Truncated {
            offset: bytes.len(),
        })?;
    if bytes.len() < end {
        return Err(FrameError::Truncated {
            offset: bytes.len(),
        });
    }
    if bytes.len() > end {
        return Err(FrameError::TrailingBytes {
            trailing: bytes.len() - end,
        });
    }
    let payload = &bytes[FRAME_OVERHEAD..end];
    let computed = crc32(&[&bytes[4..24], payload].concat());
    if computed != stored {
        return Err(FrameError::CrcMismatch { stored, computed });
    }
    Ok(Frame {
        home,
        generation,
        payload: payload.to_vec(),
    })
}

/// Typed failure of a checkpoint-store operation — the storage-side
/// analogue of the supervisor's typed pipeline errors (PR 4): the
/// service retries [transient](StoreError::is_transient) errors with
/// bounded backoff and quarantines or rebuilds homes on the rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Transient IO failure; a bounded retry may succeed.
    Transient {
        /// Operation that failed (`"put"`, `"get"`).
        op: &'static str,
        /// Home the operation targeted.
        home: usize,
        /// 1-based attempt number that failed.
        attempt: u32,
    },
    /// Permanent IO failure (filesystem error surfaced by the OS).
    Io {
        /// Operation that failed.
        op: &'static str,
        /// Home the operation targeted.
        home: usize,
        /// OS error description.
        detail: String,
    },
    /// The stored bytes are unrecoverable: frame or checkpoint
    /// validation failed at `offset`.
    Corrupt {
        /// Home whose record is corrupt.
        home: usize,
        /// Byte offset of the first validation failure.
        offset: usize,
        /// Human-readable description of the failure.
        detail: String,
    },
    /// The frame's generation counter doesn't match the fleet's round
    /// counter: a stale replay (`found < expected`) or a torn round
    /// whose manifest commit never landed (`found > expected`).
    StaleGeneration {
        /// Home whose frame is out of step.
        home: usize,
        /// Generation stamped in the frame.
        found: u64,
        /// Generation the manifest says the fleet is at.
        expected: u64,
    },
    /// The manifest lists the home but the store holds no frame for it.
    Missing {
        /// Home with no stored frame.
        home: usize,
    },
}

impl StoreError {
    /// `true` when a bounded retry of the same operation may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Transient { .. })
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Transient { op, home, attempt } => {
                write!(
                    f,
                    "transient {op} failure for home {home} (attempt {attempt})"
                )
            }
            StoreError::Io { op, home, detail } => {
                write!(f, "{op} failed for home {home}: {detail}")
            }
            StoreError::Corrupt {
                home,
                offset,
                detail,
            } => {
                write!(
                    f,
                    "home {home} checkpoint corrupt at byte {offset}: {detail}"
                )
            }
            StoreError::StaleGeneration {
                home,
                found,
                expected,
            } => {
                write!(
                    f,
                    "home {home} frame at generation {found}, expected {expected}"
                )
            }
            StoreError::Missing { home } => write!(f, "home {home} has no stored frame"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Where a shard keeps the encoded frames of its non-resident homes.
///
/// Implementations store opaque frame bytes keyed by home index; all
/// framing, CRC, and generation semantics live above the trait (in
/// [`encode_frame`]/[`validate_frame`]) so that injected faults corrupt
/// exactly the bytes a real medium would hand back.
pub trait CheckpointStore: Send + Sync + std::fmt::Debug {
    /// Stores `frame` as the current record for `home`, replacing any
    /// previous one. `generation` is the counter stamped inside the
    /// frame, passed alongside so wrappers (fault injectors) can key
    /// per-write decisions without parsing the bytes.
    fn put(&mut self, home: usize, generation: u64, frame: &[u8]) -> Result<(), StoreError>;

    /// Current stored frame for `home`, or `None` if it has none.
    fn get(&self, home: usize) -> Result<Option<Vec<u8>>, StoreError>;

    /// Drops the record for `home` (no-op if absent).
    fn remove(&mut self, home: usize);

    /// `(home, stored byte length)` for every record, in home order.
    fn contents(&self) -> Vec<(usize, usize)>;
}

/// In-process store: frames live in a `BTreeMap`, exactly as the
/// pre-durability service kept its cold tier. Survives nothing, costs
/// nothing, and is the default.
#[derive(Debug, Clone, Default)]
pub struct MemoryStore {
    frames: BTreeMap<usize, Vec<u8>>,
}

impl MemoryStore {
    /// An empty in-memory store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }
}

impl CheckpointStore for MemoryStore {
    fn put(&mut self, home: usize, _generation: u64, frame: &[u8]) -> Result<(), StoreError> {
        self.frames.insert(home, frame.to_vec());
        Ok(())
    }

    fn get(&self, home: usize) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.frames.get(&home).cloned())
    }

    fn remove(&mut self, home: usize) {
        self.frames.remove(&home);
    }

    fn contents(&self) -> Vec<(usize, usize)> {
        self.frames.iter().map(|(&h, f)| (h, f.len())).collect()
    }
}

/// File name of home `home`'s frame inside its shard directory.
pub fn home_file_name(home: usize) -> String {
    format!("home-{home}.ckpt")
}

/// Directory of shard `shard` inside a durable fleet root.
pub fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard}"))
}

/// Full path of home `home`'s frame file under a durable fleet root
/// with `shards` shards — the layout [`DurableStore`]-backed services
/// use, exposed so tests and experiments can corrupt records offline.
pub fn durable_home_path(root: &Path, shards: usize, home: usize) -> PathBuf {
    shard_dir(root, home % shards).join(home_file_name(home))
}

/// File-backed durable store: one frame file per home inside a
/// directory, written atomically (temp file + rename in the same
/// directory) so a crash mid-write can tear at most the temp file,
/// never a committed record.
///
/// Durability model: atomicity is against *process* crashes. Writes are
/// not fsynced — a power failure can still lose recently renamed
/// frames, which the generation counter then reports as stale on
/// recovery rather than silently serving.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    index: BTreeMap<usize, usize>,
}

impl DurableStore {
    /// Opens (creating if needed) the store rooted at `dir`, indexing
    /// any `home-<n>.ckpt` files already present.
    pub fn open(dir: PathBuf) -> std::io::Result<DurableStore> {
        fs::create_dir_all(&dir)?;
        let mut index = BTreeMap::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(home) = name
                .to_str()
                .and_then(|n| n.strip_prefix("home-"))
                .and_then(|n| n.strip_suffix(".ckpt"))
                .and_then(|n| n.parse::<usize>().ok())
            else {
                continue;
            };
            index.insert(home, entry.metadata()?.len() as usize);
        }
        Ok(DurableStore { dir, index })
    }

    /// Directory the store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn io_err(op: &'static str, home: usize, e: std::io::Error) -> StoreError {
        StoreError::Io {
            op,
            home,
            detail: e.to_string(),
        }
    }
}

impl CheckpointStore for DurableStore {
    fn put(&mut self, home: usize, _generation: u64, frame: &[u8]) -> Result<(), StoreError> {
        let tmp = self.dir.join(format!(".tmp-{}", home_file_name(home)));
        let path = self.dir.join(home_file_name(home));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(frame)?;
            drop(f);
            fs::rename(&tmp, &path)
        };
        write().map_err(|e| Self::io_err("put", home, e))?;
        self.index.insert(home, frame.len());
        Ok(())
    }

    fn get(&self, home: usize) -> Result<Option<Vec<u8>>, StoreError> {
        match fs::read(self.dir.join(home_file_name(home))) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(Self::io_err("get", home, e)),
        }
    }

    fn remove(&mut self, home: usize) {
        let _ = fs::remove_file(self.dir.join(home_file_name(home)));
        self.index.remove(&home);
    }

    fn contents(&self) -> Vec<(usize, usize)> {
        self.index.iter().map(|(&h, &len)| (h, len)).collect()
    }
}

/// Wraps any store with the seeded [`StoreFaultInjector`] defect model:
/// writes can fail transiently (first `k` attempts per `(home,
/// generation)`), be silently dropped (stale replay), or land torn /
/// bit-flipped. Reads and the rest of the trait pass straight through —
/// the corrupted bytes themselves are what reads later surface.
#[derive(Debug)]
pub struct FaultyStore {
    inner: Box<dyn CheckpointStore>,
    injector: StoreFaultInjector,
    attempts: BTreeMap<(usize, u64), u32>,
}

impl FaultyStore {
    /// Wraps `inner` with fault decisions drawn from `injector`.
    pub fn new(inner: Box<dyn CheckpointStore>, injector: StoreFaultInjector) -> FaultyStore {
        FaultyStore {
            inner,
            injector,
            attempts: BTreeMap::new(),
        }
    }
}

impl CheckpointStore for FaultyStore {
    fn put(&mut self, home: usize, generation: u64, frame: &[u8]) -> Result<(), StoreError> {
        let failures = self
            .injector
            .transient_put_failures(home as u64, generation);
        let attempt = self.attempts.entry((home, generation)).or_insert(0);
        *attempt += 1;
        if *attempt <= failures {
            return Err(StoreError::Transient {
                op: "put",
                home,
                attempt: *attempt,
            });
        }
        if self.injector.stale_replay(home as u64, generation) {
            // The write is acknowledged but never lands; the previous
            // generation's frame survives in its place.
            return Ok(());
        }
        let mut corrupted = frame.to_vec();
        self.injector
            .corrupt_frame(home as u64, generation, &mut corrupted);
        self.inner.put(home, generation, &corrupted)
    }

    fn get(&self, home: usize) -> Result<Option<Vec<u8>>, StoreError> {
        self.inner.get(home)
    }

    fn remove(&mut self, home: usize) {
        self.inner.remove(home);
    }

    fn contents(&self) -> Vec<(usize, usize)> {
        self.inner.contents()
    }
}

/// Fully validates a stored frame for `home` at `expected_generation`:
/// frame parse + CRC, ownership, generation, then codec decode of the
/// payload. This is the single gate every load in the service goes
/// through, so every storage defect surfaces as a typed [`StoreError`]
/// with a byte offset instead of a panic deep in the codec.
pub fn validate_frame(
    bytes: &[u8],
    home: usize,
    expected_generation: u64,
) -> Result<stream::WindowCheckpoint, StoreError> {
    let frame = decode_frame(bytes).map_err(|e| StoreError::Corrupt {
        home,
        offset: e.offset(),
        detail: e.to_string(),
    })?;
    if frame.home != home as u64 {
        return Err(StoreError::Corrupt {
            home,
            offset: 4,
            detail: format!("frame belongs to home {}", frame.home),
        });
    }
    if frame.generation != expected_generation {
        return Err(StoreError::StaleGeneration {
            home,
            found: frame.generation,
            expected: expected_generation,
        });
    }
    crate::codec::decode(&frame.payload).map_err(|e| StoreError::Corrupt {
        home,
        offset: FRAME_OVERHEAD + e.offset(),
        detail: format!("payload: {e}"),
    })
}

/// The fleet-level commit record of a durable run: written atomically
/// at the end of every round, read back by
/// [`FleetService::recover`](crate::FleetService::recover). A frame is
/// current iff its generation equals the manifest's round counter.
///
/// Layout: `"FDM1"` magic, then `homes`/`shards`/`rounds`/`root_seed`
/// as little-endian u64, a u32 count of per-shard sample counters
/// followed by the counters, and a trailing CRC32 over everything after
/// the magic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Homes the fleet manages (`0..homes`).
    pub homes: u64,
    /// Shard count (part of the fleet's deterministic identity).
    pub shards: u64,
    /// Admission rounds committed.
    pub rounds: u64,
    /// Root seed of the per-home seed derivation.
    pub root_seed: u64,
    /// Per-shard admitted-sample counters, index order.
    pub shard_samples: Vec<u64>,
}

impl Manifest {
    /// Serializes the manifest (magic + fields + CRC32).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC);
        for v in [self.homes, self.shards, self.rounds, self.root_seed] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.shard_samples.len() as u32).to_le_bytes());
        for &s in &self.shard_samples {
            out.extend_from_slice(&s.to_le_bytes());
        }
        let crc = crc32(&out[4..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and CRC-validates a manifest buffer.
    ///
    /// # Errors
    ///
    /// [`FrameError`] on truncation, wrong magic, CRC mismatch, or
    /// trailing bytes; never panics.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, FrameError> {
        if bytes.len() < 4 {
            return Err(FrameError::Truncated {
                offset: bytes.len(),
            });
        }
        if bytes[..4] != MANIFEST_MAGIC {
            return Err(FrameError::BadMagic);
        }
        if bytes.len() < 40 {
            return Err(FrameError::Truncated {
                offset: bytes.len(),
            });
        }
        let word = |i: usize| {
            u64::from_le_bytes(bytes[4 + 8 * i..12 + 8 * i].try_into().expect("8 bytes"))
        };
        let (homes, shards, rounds, root_seed) = (word(0), word(1), word(2), word(3));
        let n = u32::from_le_bytes(bytes[36..40].try_into().expect("4 bytes")) as usize;
        let end = 40usize
            .checked_add(n.checked_mul(8).ok_or(FrameError::Truncated {
                offset: bytes.len(),
            })?)
            .ok_or(FrameError::Truncated {
                offset: bytes.len(),
            })?;
        if bytes.len() < end + 4 {
            return Err(FrameError::Truncated {
                offset: bytes.len(),
            });
        }
        if bytes.len() > end + 4 {
            return Err(FrameError::TrailingBytes {
                trailing: bytes.len() - end - 4,
            });
        }
        let stored = u32::from_le_bytes(bytes[end..end + 4].try_into().expect("4 bytes"));
        let computed = crc32(&bytes[4..end]);
        if stored != computed {
            return Err(FrameError::CrcMismatch { stored, computed });
        }
        let shard_samples = (0..n)
            .map(|i| u64::from_le_bytes(bytes[40 + 8 * i..48 + 8 * i].try_into().expect("8 bytes")))
            .collect();
        Ok(Manifest {
            homes,
            shards,
            rounds,
            root_seed,
            shard_samples,
        })
    }

    /// Atomically writes the manifest under `root` (temp + rename).
    pub fn write(&self, root: &Path) -> std::io::Result<()> {
        fs::create_dir_all(root)?;
        let tmp = root.join(".tmp-MANIFEST");
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&self.encode())?;
        drop(f);
        fs::rename(tmp, root.join(MANIFEST_FILE))
    }

    /// Reads the manifest under `root`: `Ok(None)` when no manifest
    /// file exists, `Err` describing any IO or validation failure.
    pub fn read(root: &Path) -> Result<Option<Manifest>, String> {
        let bytes = match fs::read(root.join(MANIFEST_FILE)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("manifest read failed: {e}")),
        };
        Manifest::decode(&bytes)
            .map(Some)
            .map_err(|e| format!("manifest invalid: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::{FaultPlan, StoreFault};

    fn payload() -> Vec<u8> {
        use stream::{FillCheckpoint, WindowCheckpoint};
        crate::codec::encode(&WindowCheckpoint {
            fill: FillCheckpoint::HoldLast(211.5),
            next_start: 30,
            open: vec![120.0, 0.0, 950.25],
            closed: Vec::new(),
        })
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fleetd-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn frame_round_trips() {
        let p = payload();
        let bytes = encode_frame(17, 3, &p);
        assert_eq!(bytes.len(), FRAME_OVERHEAD + p.len());
        let frame = decode_frame(&bytes).unwrap();
        assert_eq!(frame.home, 17);
        assert_eq!(frame.generation, 3);
        assert_eq!(frame.payload, p);
        let cp = validate_frame(&bytes, 17, 3).unwrap();
        assert_eq!(crate::codec::encode(&cp), p);
    }

    #[test]
    fn every_prefix_truncation_errors_cleanly() {
        let bytes = encode_frame(5, 9, &payload());
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut]).expect_err("prefix must fail");
            assert!(err.offset() <= bytes.len(), "cut {cut}: {err}");
        }
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let bytes = encode_frame(5, 9, &payload());
        for at in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[at] ^= 1 << bit;
                assert!(decode_frame(&bad).is_err(), "flip at byte {at} bit {bit}");
            }
        }
    }

    #[test]
    fn validate_frame_checks_ownership_and_generation() {
        let bytes = encode_frame(5, 9, &payload());
        assert!(matches!(
            validate_frame(&bytes, 6, 9),
            Err(StoreError::Corrupt {
                home: 6,
                offset: 4,
                ..
            })
        ));
        assert!(matches!(
            validate_frame(&bytes, 5, 10),
            Err(StoreError::StaleGeneration {
                home: 5,
                found: 9,
                expected: 10
            })
        ));
        // A valid frame around an invalid payload reports the payload
        // offset past the frame header.
        let bad_payload = encode_frame(5, 9, b"NOPE");
        match validate_frame(&bad_payload, 5, 9) {
            Err(StoreError::Corrupt { offset, .. }) => assert_eq!(offset, FRAME_OVERHEAD),
            other => panic!("expected payload corruption, got {other:?}"),
        }
    }

    #[test]
    fn memory_store_round_trips_and_lists() {
        let mut store = MemoryStore::new();
        let frame = encode_frame(2, 1, &payload());
        store.put(2, 1, &frame).unwrap();
        store.put(7, 1, &encode_frame(7, 1, &payload())).unwrap();
        assert_eq!(store.get(2).unwrap().as_deref(), Some(&frame[..]));
        assert_eq!(store.get(3).unwrap(), None);
        assert_eq!(store.contents(), vec![(2, frame.len()), (7, frame.len())]);
        store.remove(2);
        assert_eq!(store.get(2).unwrap(), None);
    }

    #[test]
    fn durable_store_persists_across_reopen() {
        let dir = tmp_dir("reopen");
        let frame = encode_frame(11, 4, &payload());
        {
            let mut store = DurableStore::open(dir.clone()).unwrap();
            store.put(11, 4, &frame).unwrap();
            store.put(3, 4, &encode_frame(3, 4, &payload())).unwrap();
            store.remove(3);
        }
        let store = DurableStore::open(dir.clone()).unwrap();
        assert_eq!(store.get(11).unwrap().as_deref(), Some(&frame[..]));
        assert_eq!(store.get(3).unwrap(), None);
        assert_eq!(store.contents(), vec![(11, frame.len())]);
        // No stray temp files survive a clean write.
        assert!(fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .starts_with(".tmp")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_store_injects_deterministically() {
        let plan = FaultPlan::for_store(vec![
            StoreFault::Transient {
                prob: 0.6,
                max_failures: 2,
            },
            StoreFault::BitFlip { prob: 0.4 },
        ]);
        let run = || -> (u32, Vec<Option<Vec<u8>>>) {
            let inj = faults::StoreFaultInjector::new(&plan, 5);
            let mut store = FaultyStore::new(Box::new(MemoryStore::new()), inj);
            let mut retries = 0;
            for home in 0..30 {
                let frame = encode_frame(home as u64, 1, &payload());
                loop {
                    match store.put(home, 1, &frame) {
                        Ok(()) => break,
                        Err(e) => {
                            assert!(e.is_transient());
                            retries += 1;
                        }
                    }
                }
            }
            let stored = (0..30).map(|h| store.get(h).unwrap()).collect();
            (retries, stored)
        };
        let (retries_a, stored_a) = run();
        let (retries_b, stored_b) = run();
        assert_eq!(retries_a, retries_b);
        assert_eq!(stored_a, stored_b);
        assert!(retries_a > 0, "0.6 transient over 30 writes must fire");
        let flipped = stored_a
            .iter()
            .filter(|f| decode_frame(f.as_ref().unwrap()).is_err())
            .count();
        assert!(flipped > 0, "0.4 bit flip over 30 writes must corrupt");
    }

    #[test]
    fn stale_replay_keeps_previous_generation() {
        let plan = FaultPlan::for_store(vec![StoreFault::StaleReplay { prob: 1.0 }]);
        let inj = faults::StoreFaultInjector::new(&plan, 1);
        let mut store = FaultyStore::new(Box::new(MemoryStore::new()), inj);
        // Generation-0 write also gets dropped under prob 1.0, so seed
        // the inner store through a fault-free wrapper first.
        let gen0 = encode_frame(4, 0, &payload());
        store.inner.put(4, 0, &gen0).unwrap();
        store.put(4, 1, &encode_frame(4, 1, &payload())).unwrap();
        let bytes = store.get(4).unwrap().unwrap();
        assert_eq!(bytes, gen0, "dropped write must leave generation 0");
        assert!(matches!(
            validate_frame(&bytes, 4, 1),
            Err(StoreError::StaleGeneration {
                found: 0,
                expected: 1,
                ..
            })
        ));
    }

    #[test]
    fn manifest_round_trips_and_validates() {
        let m = Manifest {
            homes: 600,
            shards: 16,
            rounds: 4,
            root_seed: 7,
            shard_samples: (0..16).map(|i| 1000 + i).collect(),
        };
        let bytes = m.encode();
        assert_eq!(Manifest::decode(&bytes).unwrap(), m);
        for cut in 0..bytes.len() {
            assert!(Manifest::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            assert!(Manifest::decode(&bad).is_err(), "flip at {at}");
        }

        let root = tmp_dir("manifest");
        assert_eq!(Manifest::read(&root), Ok(None));
        m.write(&root).unwrap();
        assert_eq!(Manifest::read(&root), Ok(Some(m)));
        let _ = fs::remove_dir_all(&root);
    }
}
