//! Crash-recovery equivalence suite (docs/FLEET.md, recovery
//! lifecycle): a `FleetService` dropped mid-ladder and reopened from
//! its durable store must produce a digest and per-home outputs
//! byte-identical to an uninterrupted run — with and without injected
//! storage faults, at any `RAYON_NUM_THREADS` (CI runs this suite at 1
//! and 8).

use faults::{FaultPlan, StoreFault};
use fleetd::store::{self, durable_home_path};
use fleetd::{FleetService, FleetdConfig, RecoverError, RecoveryPolicy, StoreConfig};
use std::path::{Path, PathBuf};

const HOMES: usize = 400;
const SAMPLES: usize = 25;
const ROUNDS: u64 = 5;
const CRASH_AT: u64 = 3;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("fleetd-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn durable_cfg(root: &Path) -> FleetdConfig {
    FleetdConfig {
        shards: 16,
        resident_cap: Some(150),
        store: StoreConfig::Durable {
            root: root.to_path_buf(),
        },
        ..FleetdConfig::default()
    }
}

fn run_rounds(svc: &mut FleetService, from: u64, to: u64) {
    for round in from..to {
        svc.admit_round(round, SAMPLES);
    }
}

fn full_run(cfg: FleetdConfig) -> FleetService {
    let mut svc = FleetService::new(cfg, HOMES);
    run_rounds(&mut svc, 0, ROUNDS);
    svc
}

#[test]
fn crash_recover_is_byte_identical_to_uninterrupted_run() {
    let root_a = temp_root("uninterrupted");
    let root_b = temp_root("crashed");
    let baseline = full_run(durable_cfg(&root_a));

    // Also prove the store backend itself is invisible to output.
    let memory_baseline = full_run(FleetdConfig {
        shards: 16,
        resident_cap: Some(150),
        ..FleetdConfig::default()
    });
    assert_eq!(baseline.digest(), memory_baseline.digest());

    // "Crash" mid-ladder: drop the service with rounds committed.
    {
        let mut svc = FleetService::new(durable_cfg(&root_b), HOMES);
        run_rounds(&mut svc, 0, CRASH_AT);
    }

    let (mut recovered, report) =
        FleetService::recover(durable_cfg(&root_b)).expect("manifest and frames are intact");
    assert_eq!(report.recovered, HOMES, "every home was write-synced");
    assert_eq!(report.scheduled_rebuilds, 0);
    assert!(report.quarantined.is_empty());
    assert_eq!(recovered.rounds(), CRASH_AT);
    assert_eq!(recovered.samples(), baseline.samples() / ROUNDS * CRASH_AT);

    run_rounds(&mut recovered, CRASH_AT, ROUNDS);
    assert_eq!(recovered.digest(), baseline.digest());
    for home in 0..HOMES {
        assert_eq!(
            recovered.finalize_home(home),
            baseline.finalize_home(home),
            "home {home}"
        );
    }

    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}

#[test]
fn recover_without_further_rounds_preserves_digest() {
    let root = temp_root("cold-floor");
    let mut svc = full_run(durable_cfg(&root));
    svc.evict_all();
    let before = svc.digest();
    drop(svc);

    let (recovered, report) = FleetService::recover(durable_cfg(&root)).expect("intact fleet");
    assert_eq!(report.recovered, HOMES);
    assert_eq!(recovered.rounds(), ROUNDS);
    assert_eq!(recovered.digest(), before);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_round_future_generation_frames_are_rebuilt() {
    let root_a = temp_root("torn-baseline");
    let root_b = temp_root("torn-round");
    let baseline = full_run(durable_cfg(&root_a));

    let cfg = durable_cfg(&root_b);
    {
        let mut svc = FleetService::new(cfg.clone(), HOMES);
        run_rounds(&mut svc, 0, CRASH_AT);
    }
    // Simulate a crash mid-round CRASH_AT: some homes' frames were
    // already overwritten at the next generation, but the manifest
    // commit never landed.
    let torn_homes = [3usize, 97, 250];
    for &home in &torn_homes {
        let path = durable_home_path(&root_b, cfg.shards, home);
        let bytes = std::fs::read(&path).expect("synced frame exists");
        let frame = store::decode_frame(&bytes).expect("frame is valid");
        std::fs::write(
            &path,
            store::encode_frame(home as u64, CRASH_AT + 1, &frame.payload),
        )
        .unwrap();
    }

    let (mut recovered, report) = FleetService::recover(cfg).expect("manifest is intact");
    assert_eq!(report.scheduled_rebuilds, torn_homes.len());
    assert_eq!(report.recovered, HOMES - torn_homes.len());
    assert!(report.quarantined.is_empty());

    run_rounds(&mut recovered, CRASH_AT, ROUNDS);
    assert!(recovered.store_rebuilds() >= torn_homes.len() as u64);
    assert_eq!(recovered.digest(), baseline.digest());
    for &home in &torn_homes {
        assert_eq!(
            recovered.finalize_home(home),
            baseline.finalize_home(home),
            "rebuilt home {home}"
        );
    }

    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}

#[test]
fn offline_corruption_quarantines_exactly_the_corrupted_homes() {
    let root_a = temp_root("quarantine-baseline");
    let root_b = temp_root("quarantine");
    let baseline = full_run(durable_cfg(&root_a));

    let cfg = FleetdConfig {
        recovery: RecoveryPolicy::Quarantine,
        ..durable_cfg(&root_b)
    };
    drop(full_run(cfg.clone()));

    // Corrupt three known homes three different ways: torn write,
    // bit rot, stale-generation replay.
    let torn = 11usize;
    let flipped = 140usize;
    let stale = 333usize;
    let path = |home: usize| durable_home_path(&root_b, cfg.shards, home);
    let torn_bytes = std::fs::read(path(torn)).unwrap();
    std::fs::write(path(torn), &torn_bytes[..torn_bytes.len() / 2]).unwrap();
    let mut flip_bytes = std::fs::read(path(flipped)).unwrap();
    let at = flip_bytes.len() - 3;
    flip_bytes[at] ^= 0x40;
    std::fs::write(path(flipped), &flip_bytes).unwrap();
    let stale_frame = store::decode_frame(&std::fs::read(path(stale)).unwrap()).unwrap();
    std::fs::write(
        path(stale),
        store::encode_frame(stale as u64, ROUNDS - 1, &stale_frame.payload),
    )
    .unwrap();

    let (recovered, report) = FleetService::recover(cfg).expect("manifest is intact");
    let quarantined_homes: Vec<usize> = report.quarantined.iter().map(|&(h, _)| h).collect();
    assert_eq!(quarantined_homes, vec![torn, flipped, stale]);
    assert_eq!(report.recovered, HOMES - 3);
    assert_eq!(recovered.quarantined_count(), 3);
    assert!(matches!(
        report.quarantined[2].1,
        store::StoreError::StaleGeneration {
            found,
            expected,
            ..
        } if found == ROUNDS - 1 && expected == ROUNDS
    ));

    // The survivors are untouched; the quarantined homes are excluded.
    let digest = recovered.digest();
    assert_eq!(digest.homes, HOMES - 3);
    assert!(recovered.finalize_home(torn).is_none());
    for home in [0, 10, 12, 139, 141, 332, 334, HOMES - 1] {
        assert_eq!(
            recovered.finalize_home(home),
            baseline.finalize_home(home),
            "surviving home {home}"
        );
    }

    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}

#[test]
fn transient_store_faults_are_retried_and_output_identical() {
    let root_a = temp_root("transient-clean");
    let root_b = temp_root("transient-faulted");
    let clean = full_run(durable_cfg(&root_a));
    let faulted_cfg = FleetdConfig {
        store_faults: FaultPlan::for_store(vec![StoreFault::Transient {
            prob: 0.4,
            max_failures: 2,
        }]),
        ..durable_cfg(&root_b)
    };
    let faulted = full_run(faulted_cfg.clone());

    assert!(faulted.store_retries() > 0, "0.4 over thousands of writes");
    assert_eq!(faulted.store_rebuilds(), 0);
    assert!(faulted.quarantined().is_empty());
    assert_eq!(faulted.digest(), clean.digest());
    for home in [0, 7, 199, HOMES - 1] {
        assert_eq!(faulted.finalize_home(home), clean.finalize_home(home));
    }

    // Retry counts are part of the deterministic contract too.
    let retries = faulted.store_retries();
    drop(faulted);
    let again = full_run(faulted_cfg);
    assert_eq!(again.store_retries(), retries);

    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}

#[test]
fn full_fault_ladder_rebuilds_to_identical_output() {
    let root_a = temp_root("ladder-clean");
    let root_b = temp_root("ladder-faulted");
    let clean = full_run(durable_cfg(&root_a));
    let faulted_cfg = FleetdConfig {
        store_faults: FaultPlan::store_profile(0.6),
        recovery: RecoveryPolicy::Rebuild,
        ..durable_cfg(&root_b)
    };
    let mut faulted = full_run(faulted_cfg);
    // The final round's writes can be corrupted too; scrub validates
    // every cold frame and rebuilds the casualties before digesting.
    let (rebuilt, quarantined) = faulted.scrub(SAMPLES);
    assert_eq!(quarantined, 0, "rebuild policy never quarantines here");
    assert!(
        faulted.store_rebuilds() > 0,
        "profile 0.6 must corrupt some of the thousands of writes"
    );
    let _ = rebuilt;

    assert_eq!(faulted.digest(), clean.digest());
    for home in [0, 42, 137, 256, HOMES - 1] {
        assert_eq!(
            faulted.finalize_home(home),
            clean.finalize_home(home),
            "home {home}"
        );
    }

    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}

#[test]
fn recover_rejects_mismatched_or_missing_fleets() {
    let missing = temp_root("never-created");
    assert!(matches!(
        FleetService::recover(durable_cfg(&missing)),
        Err(RecoverError::Manifest(_))
    ));

    let root = temp_root("mismatch");
    drop(FleetService::new(durable_cfg(&root), HOMES));
    let wrong_seed = FleetdConfig {
        root_seed: 999,
        ..durable_cfg(&root)
    };
    assert_eq!(
        FleetService::recover(wrong_seed).err(),
        Some(RecoverError::ConfigMismatch {
            field: "root_seed",
            manifest: 7,
            config: 999,
        })
    );
    let wrong_shards = FleetdConfig {
        shards: 8,
        ..durable_cfg(&root)
    };
    assert_eq!(
        FleetService::recover(wrong_shards).err(),
        Some(RecoverError::ConfigMismatch {
            field: "shards",
            manifest: 16,
            config: 8,
        })
    );

    let _ = std::fs::remove_dir_all(&root);
}
