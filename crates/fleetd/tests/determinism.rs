//! Resident-service determinism: parallel admission must leave the
//! fleet byte-identical to serial admission, and eviction/rehydration
//! must be invisible to every home's finalized output. CI runs this
//! binary at `RAYON_NUM_THREADS` 1 and 8.

use fleetd::{FleetService, FleetdConfig};

fn drive(cfg: FleetdConfig, homes: usize, rounds: u64, serial: bool) -> FleetService {
    let mut svc = FleetService::new(cfg, homes);
    for round in 0..rounds {
        if serial {
            svc.admit_round_serial(round, 24);
        } else {
            svc.admit_round(round, 24);
        }
    }
    svc
}

#[test]
fn parallel_digest_equals_serial_at_any_thread_count() {
    for homes in [1, 63, 64, 65, 1_000] {
        let par = drive(FleetdConfig::default(), homes, 3, false);
        let ser = drive(FleetdConfig::default(), homes, 3, true);
        assert_eq!(par.digest(), ser.digest(), "{homes} homes");
        assert_eq!(par.memory(), ser.memory(), "{homes} homes");
    }
}

#[test]
fn capped_parallel_equals_capped_serial() {
    let cfg = FleetdConfig {
        resident_cap: Some(100),
        ..FleetdConfig::default()
    };
    let par = drive(cfg.clone(), 1_000, 4, false);
    let ser = drive(cfg, 1_000, 4, true);
    assert_eq!(par.digest(), ser.digest());
    assert_eq!(par.memory(), ser.memory());
    assert_eq!(par.evictions(), ser.evictions());
    assert_eq!(par.rehydrations(), ser.rehydrations());
}

#[test]
fn capped_fleet_output_is_byte_identical_to_always_resident() {
    let capped = FleetdConfig {
        resident_cap: Some(64),
        ..FleetdConfig::default()
    };
    let evicting = drive(capped, 1_000, 3, false);
    let resident = drive(FleetdConfig::default(), 1_000, 3, false);
    assert!(evicting.evictions() > 0, "cap must actually evict");
    assert_eq!(evicting.digest(), resident.digest());
    // Spot-check whole label series, not just the digest.
    for home in [0, 1, 64, 500, 999] {
        assert_eq!(
            evicting.finalize_home(home),
            resident.finalize_home(home),
            "home {home}"
        );
    }
}

#[test]
fn digest_is_stable_across_repeat_runs() {
    let a = drive(FleetdConfig::default(), 500, 2, false);
    let b = drive(FleetdConfig::default(), 500, 2, false);
    assert_eq!(a.digest(), b.digest());
}
