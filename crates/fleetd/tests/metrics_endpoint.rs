//! End-to-end scrape of the metrics endpoint. Lives in its own test
//! binary because it toggles the process-global obs registry.

use fleetd::{FleetService, FleetdConfig, MetricsServer};
use std::io::{Read, Write};
use std::net::TcpStream;

#[test]
fn serves_fleet_metrics_over_http() {
    obs::enable();
    obs::reset();
    let mut svc = FleetService::new(
        FleetdConfig {
            shards: 8,
            resident_cap: Some(16), // 2 per shard -> exactly 16 resident
            ..FleetdConfig::default()
        },
        200,
    );
    for round in 0..2 {
        svc.admit_round(round, 30);
    }

    let server = MetricsServer::bind().expect("bind loopback");
    let body = MetricsServer::scrape(server.addr()).expect("scrape");

    // The lifecycle counters and gauges of the rounds just admitted.
    assert!(
        body.contains("# TYPE fleetd_rounds counter\nfleetd_rounds 2\n"),
        "{body}"
    );
    assert!(body.contains("# TYPE fleetd_resident_homes gauge\nfleetd_resident_homes 16.0\n"));
    let samples = 200.0 * 2.0 * 30.0;
    assert!(body.contains(&format!("fleetd_samples {samples:?}\n")));
    assert!(body.contains("# TYPE fleetd_admit_seconds summary\n"));
    assert!(body.contains("fleetd_admit_seconds_count 2\n"));

    // A second scrape sees the same deterministic section.
    let again = MetricsServer::scrape(server.addr()).expect("second scrape");
    assert!(again.contains("fleetd_rounds 2\n"));

    // The file dump renders the same registry state.
    let dir = std::env::temp_dir().join("fleetd-prom-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.prom");
    fleetd::write_prometheus(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("fleetd_rounds 2\n"));
    std::fs::remove_file(&path).ok();

    server.shutdown();
    obs::disable();
    obs::reset();
}

#[test]
fn non_metrics_paths_get_404() {
    let server = MetricsServer::bind().expect("bind loopback");
    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    write!(conn, "GET /other HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    server.shutdown();
}

#[test]
fn idle_client_cannot_wedge_the_accept_loop() {
    use std::time::Duration;
    let server =
        MetricsServer::bind_with_read_timeout(Duration::from_millis(100)).expect("bind loopback");
    // A slow-loris client: connects, sends nothing, holds the socket
    // open. Before the read timeout existed this parked the
    // single-threaded accept loop forever.
    let idle = TcpStream::connect(server.addr()).expect("connect");
    // A well-behaved scrape issued afterwards must still be served —
    // succeeding at all proves the loop timed the idle client out.
    MetricsServer::scrape(server.addr()).expect("scrape past the idle client");
    drop(idle);
    server.shutdown();
}

#[test]
fn scrape_content_type_is_prometheus_text() {
    let server = MetricsServer::bind().expect("bind loopback");
    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    write!(conn, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    assert!(response.contains("Content-Type: text/plain; version=0.0.4\r\n"));
    server.shutdown();
}
