//! Property tests for the durable checkpoint frame (`fleetd::store`):
//! encode/decode is a bijection, truncation at every prefix length
//! errors cleanly, and — unlike the raw codec — ANY single-byte flip is
//! detected by the CRC32 frame, never silently round-tripping to a
//! different record.

use fleetd::store::{self, FrameError, FRAME_OVERHEAD};
use proptest::prelude::*;

proptest! {
    #[test]
    fn frame_round_trips(
        home in 0u64..1_000_000,
        generation in 0u64..1_000_000,
        payload in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let bytes = store::encode_frame(home, generation, &payload);
        prop_assert_eq!(bytes.len(), FRAME_OVERHEAD + payload.len());
        let frame = store::decode_frame(&bytes).unwrap();
        prop_assert_eq!(frame.home, home);
        prop_assert_eq!(frame.generation, generation);
        prop_assert_eq!(frame.payload, payload);
    }

    #[test]
    fn every_prefix_truncation_errors(
        home in 0u64..1_000_000,
        generation in 0u64..1_000_000,
        payload in proptest::collection::vec(0u8..=255, 0..96),
    ) {
        let bytes = store::encode_frame(home, generation, &payload);
        for cut in 0..bytes.len() {
            let err = store::decode_frame(&bytes[..cut]).expect_err("prefix must fail");
            prop_assert!(err.offset() <= cut, "cut {}: {}", cut, err);
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected(
        home in 0u64..1_000_000,
        generation in 0u64..1_000_000,
        payload in proptest::collection::vec(0u8..=255, 0..96),
        flip in 1u8..=255,
    ) {
        // Exhaustive over positions: the magic covers bytes 0..4, the
        // CRC covers the header fields and the payload, and the length
        // field is checked against the buffer — so no flipped byte may
        // yield Ok, anywhere in the frame.
        let mut bytes = store::encode_frame(home, generation, &payload);
        for at in 0..bytes.len() {
            bytes[at] ^= flip;
            prop_assert!(
                store::decode_frame(&bytes).is_err(),
                "flip {:#04x} at byte {} went undetected",
                flip,
                at
            );
            bytes[at] ^= flip;
        }
        prop_assert!(store::decode_frame(&bytes).is_ok(), "restore must be clean");
    }

    #[test]
    fn trailing_bytes_are_rejected(
        home in 0u64..1_000,
        generation in 0u64..1_000,
        payload in proptest::collection::vec(0u8..=255, 0..64),
        junk in proptest::collection::vec(0u8..=255, 1..16),
    ) {
        let mut bytes = store::encode_frame(home, generation, &payload);
        let end = bytes.len();
        bytes.extend_from_slice(&junk);
        let junk_len = junk.len();
        prop_assert_eq!(
            store::decode_frame(&bytes).unwrap_err(),
            FrameError::TrailingBytes { trailing: junk_len }
        );
        prop_assert!(store::decode_frame(&bytes[..end]).is_ok());
    }

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = store::decode_frame(&bytes); // Err or Ok, never a panic
    }
}
