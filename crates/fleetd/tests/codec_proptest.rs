//! Property tests for the checkpoint codec: encode/decode is an exact
//! bijection on valid checkpoints, and decode never panics on mangled
//! bytes.

use fleetd::codec;
use proptest::prelude::*;
use stream::{FillCheckpoint, WindowCheckpoint};
use timeseries::Summary;

fn build_checkpoint(
    fill_sel: (u8, u64, f64),
    next_start: u64,
    open: Vec<f64>,
    closed_raw: Vec<(u64, (f64, f64, f64))>,
) -> WindowCheckpoint {
    let (tag, n, w) = fill_sel;
    let fill = match tag % 4 {
        0 => FillCheckpoint::Passthrough,
        1 => FillCheckpoint::Zero,
        2 => FillCheckpoint::HoldPending(n),
        _ => FillCheckpoint::HoldLast(w),
    };
    let closed = closed_raw
        .into_iter()
        .map(|(start, (mean, variance, spread))| {
            (
                start,
                Summary {
                    mean,
                    variance,
                    range: spread.abs(),
                    min: mean - spread.abs() / 2.0,
                    max: mean + spread.abs() / 2.0,
                },
            )
        })
        .collect();
    WindowCheckpoint {
        fill,
        next_start,
        open,
        closed,
    }
}

proptest! {
    #[test]
    fn encode_decode_round_trips(
        fill_sel in (0u8..4, 0u64..1_000, -5e3..5e3f64),
        next_start in 0u64..1_000_000,
        open in proptest::collection::vec(-1e4..1e4f64, 0..32),
        closed_raw in proptest::collection::vec(
            (0u64..1_000_000, (-1e4..1e4f64, 0.0..1e6f64, 0.0..1e4f64)),
            0..64,
        ),
    ) {
        let cp = build_checkpoint(fill_sel, next_start, open, closed_raw);
        let bytes = codec::encode(&cp);
        prop_assert_eq!(bytes.len(), codec::encoded_len(&cp));
        let back = codec::decode(&bytes).unwrap();
        prop_assert_eq!(back, cp);
    }

    #[test]
    fn every_prefix_truncation_errors(
        fill_sel in (0u8..4, 0u64..1_000, -5e3..5e3f64),
        open in proptest::collection::vec(-1e4..1e4f64, 0..16),
        closed_raw in proptest::collection::vec(
            (0u64..1_000_000, (-1e4..1e4f64, 0.0..1e6f64, 0.0..1e4f64)),
            0..8,
        ),
    ) {
        // Exhaustive, not sampled: a checkpoint cut at ANY prefix
        // length must decode to a clean error — no cut point may parse
        // as a different valid checkpoint, and none may panic.
        let cp = build_checkpoint(fill_sel, 0, open, closed_raw);
        let bytes = codec::encode(&cp);
        for cut in 0..bytes.len() {
            let err = codec::decode(&bytes[..cut]).expect_err("prefix must fail");
            prop_assert!(err.offset() <= cut, "cut {}: {}", cut, err);
        }
    }

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = codec::decode(&bytes); // Err or Ok, never a panic
    }

    #[test]
    fn single_byte_corruption_never_panics(
        fill_sel in (0u8..4, 0u64..1_000, -5e3..5e3f64),
        open in proptest::collection::vec(-1e4..1e4f64, 0..16),
        at_frac in 0.0..1.0f64,
        flip in 1u8..=255,
    ) {
        let cp = build_checkpoint(fill_sel, 7, open, Vec::new());
        let mut bytes = codec::encode(&cp);
        let at = ((bytes.len() as f64) * at_frac) as usize % bytes.len();
        bytes[at] ^= flip;
        // The raw codec has no checksum, so a payload flip may decode
        // differently — it must never panic. Detection of every flip is
        // the CRC frame layer's guarantee (store_proptest.rs).
        let _ = codec::decode(&bytes);
    }
}
