//! Runs a small resident fleet and serves its metrics at `/metrics`.
//!
//! ```bash
//! cargo run --release -p fleetd --example serve_metrics
//! # in another terminal, scrape the printed address:
//! curl http://127.0.0.1:<port>/metrics
//! ```
//!
//! The exposition format is documented in `docs/OBSERVABILITY.md`; the
//! service architecture in `docs/FLEET.md`.

use fleetd::{FleetService, FleetdConfig, MetricsServer};

fn main() {
    obs::enable();

    let mut svc = FleetService::new(
        FleetdConfig {
            resident_cap: Some(256),
            ..FleetdConfig::default()
        },
        2_000,
    );
    for round in 0..3 {
        svc.admit_round(round, 30);
    }
    let mem = svc.memory();
    println!(
        "fleet: {} homes ({} resident, {} cold), {:.0} B/home",
        svc.homes(),
        mem.resident_homes,
        mem.cold_homes,
        mem.bytes_per_home()
    );

    let server = MetricsServer::bind().expect("bind loopback");
    println!("serving http://{}/metrics — Ctrl-C to stop", server.addr());
    loop {
        std::thread::park();
    }
}
