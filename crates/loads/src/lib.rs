//! Physically-derived electrical load models for household appliances.
//!
//! The paper's NILM discussion (PowerPlay, Barker et al. IGCC'13) classifies
//! residential loads into a small number of fundamental electrical types,
//! each with a parameterized power profile:
//!
//! * **Resistive** ([`ResistiveLoad`]) — flat draw while on: toasters,
//!   kettles, baseboard heat, water-heater elements.
//! * **Inductive** ([`InductiveLoad`]) — a startup current spike decaying
//!   exponentially to a steady motor draw: compressors, fans, pumps.
//! * **Cyclical** ([`CyclicalLoad`]) — an inductive element duty-cycled by a
//!   thermostat: refrigerators, freezers, dehumidifiers.
//! * **Non-linear** ([`NonLinearLoad`]) — electronics with a fluctuating
//!   draw: TVs, computers, variable-speed devices.
//! * **Composite** ([`CompositeLoad`]) — multi-phase appliances built from
//!   the above: clothes dryers (motor + cycling element), dishwashers,
//!   washing machines.
//!
//! Each model is a *deterministic* function of time since switch-on, so the
//! same model object serves both trace **synthesis** (the home simulator)
//! and model-driven **tracking** (PowerPlay's virtual power meters), exactly
//! as the paper's a-priori-model assumption requires. Meter noise is added
//! by the meter, not the load.
//!
//! [`catalogue`] provides the canonical appliance set used throughout the
//! experiments, including the five devices of Figure 2 (toaster, fridge,
//! freezer, dryer, HRV).

pub mod activation;
pub mod catalogue;
pub mod composite;
pub mod cyclical;
pub mod inductive;
pub mod model;
pub mod nonlinear;
pub mod resistive;
pub mod signature;
pub mod synth;

pub use activation::{merge_overlapping, Activation};
pub use catalogue::{Appliance, ApplianceCategory, Catalogue, UsagePrior};
pub use composite::{CompositeLoad, Phase};
pub use cyclical::CyclicalLoad;
pub use inductive::{InductiveLoad, DEFAULT_SPIKE_TAU_SECS};
pub use model::{LoadKind, LoadModel};
pub use nonlinear::NonLinearLoad;
pub use resistive::ResistiveLoad;
pub use signature::LoadSignature;
pub use synth::{render_activations, render_always_on};
