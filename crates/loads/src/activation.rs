//! Device activations (switch-on events).

use serde::{Deserialize, Serialize};
use timeseries::Timestamp;

/// One switch-on event for a device: when it started and how long it ran.
///
/// # Examples
///
/// ```
/// use loads::Activation;
/// use timeseries::Timestamp;
///
/// let a = Activation::new(Timestamp::from_dhms(0, 7, 30, 0), 240);
/// assert_eq!(a.end(), Timestamp::from_dhms(0, 7, 34, 0));
/// assert!(a.contains(Timestamp::from_dhms(0, 7, 32, 0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Activation {
    /// When the device was switched on.
    pub start: Timestamp,
    /// How long it ran, seconds.
    pub duration_secs: u64,
}

impl Activation {
    /// Creates an activation starting at `start` and running
    /// `duration_secs`.
    ///
    /// # Panics
    ///
    /// Panics if `duration_secs` is zero.
    pub fn new(start: Timestamp, duration_secs: u64) -> Self {
        assert!(duration_secs > 0, "activation must have positive duration");
        Activation {
            start,
            duration_secs,
        }
    }

    /// The timestamp at which the device switches off.
    pub fn end(&self) -> Timestamp {
        self.start + self.duration_secs
    }

    /// `true` if `at` falls inside `[start, end)`.
    pub fn contains(&self, at: Timestamp) -> bool {
        at >= self.start && at < self.end()
    }

    /// `true` if this activation overlaps `other` in time.
    pub fn overlaps(&self, other: &Activation) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// Sorts activations by start time and merges any that overlap or abut,
/// producing a disjoint schedule. Useful when independent behavioural
/// processes produce events for the same physical device.
pub fn merge_overlapping(mut activations: Vec<Activation>) -> Vec<Activation> {
    activations.sort_by_key(|a| a.start);
    let mut merged: Vec<Activation> = Vec::with_capacity(activations.len());
    for a in activations {
        match merged.last_mut() {
            Some(last) if a.start <= last.end() => {
                let new_end = last.end().as_secs().max(a.end().as_secs());
                last.duration_secs = new_end - last.start.as_secs();
            }
            _ => merged.push(a),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_end() {
        let a = Activation::new(Timestamp::from_secs(100), 50);
        assert_eq!(a.end(), Timestamp::from_secs(150));
        assert!(a.contains(Timestamp::from_secs(100)));
        assert!(a.contains(Timestamp::from_secs(149)));
        assert!(!a.contains(Timestamp::from_secs(150)));
        assert!(!a.contains(Timestamp::from_secs(99)));
    }

    #[test]
    fn overlap_detection() {
        let a = Activation::new(Timestamp::from_secs(0), 100);
        let b = Activation::new(Timestamp::from_secs(50), 100);
        let c = Activation::new(Timestamp::from_secs(100), 10);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c)); // abutting, not overlapping
    }

    #[test]
    fn merge_combines_overlaps() {
        let merged = merge_overlapping(vec![
            Activation::new(Timestamp::from_secs(200), 50),
            Activation::new(Timestamp::from_secs(0), 100),
            Activation::new(Timestamp::from_secs(80), 40),
        ]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].start, Timestamp::from_secs(0));
        assert_eq!(merged[0].duration_secs, 120);
        assert_eq!(merged[1].start, Timestamp::from_secs(200));
    }

    #[test]
    fn merge_abutting() {
        let merged = merge_overlapping(vec![
            Activation::new(Timestamp::from_secs(0), 100),
            Activation::new(Timestamp::from_secs(100), 100),
        ]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].duration_secs, 200);
    }

    #[test]
    fn merge_empty() {
        assert!(merge_overlapping(vec![]).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_duration_rejected() {
        Activation::new(Timestamp::ZERO, 0);
    }
}
