//! A-priori load signatures for model-driven tracking.
//!
//! PowerPlay assumes "detailed models of each device being tracked are known
//! a priori". A [`LoadSignature`] is that knowledge in feature form: the
//! step magnitude a device leaves in an aggregate meter trace, whether its
//! start carries an in-rush spike, its thermostat cycle geometry, and its
//! plausible run lengths.

use crate::inductive::{InductiveLoad, DEFAULT_SPIKE_TAU_SECS};
use crate::model::LoadKind;
use serde::{Deserialize, Serialize};

/// The identifiable features of one device, as used by PowerPlay's virtual
/// power meters to claim edges in an aggregate trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSignature {
    /// Device name (matches the catalogue name).
    pub name: String,
    /// Fundamental electrical type.
    pub kind: LoadKind,
    /// Steady-state step this device adds to the aggregate when it turns
    /// on, watts.
    pub on_delta_watts: f64,
    /// In-rush excess above the steady draw at switch-on, watts
    /// (0 for resistive loads).
    pub spike_excess_watts: f64,
    /// Thermostat cycle period for cyclical loads, seconds.
    pub cycle_period_secs: Option<f64>,
    /// Thermostat duty fraction for cyclical loads.
    pub cycle_duty: Option<f64>,
    /// Plausible activation length `(min, max)`, seconds.
    pub duration_bounds_secs: (u64, u64),
}

impl LoadSignature {
    /// Signature of a resistive load.
    pub fn resistive(
        name: impl Into<String>,
        watts: f64,
        duration_bounds_secs: (u64, u64),
    ) -> Self {
        LoadSignature {
            name: name.into(),
            kind: LoadKind::Resistive,
            on_delta_watts: watts,
            spike_excess_watts: 0.0,
            cycle_period_secs: None,
            cycle_duty: None,
            duration_bounds_secs,
        }
    }

    /// Signature of an inductive load.
    pub fn inductive(
        name: impl Into<String>,
        steady_watts: f64,
        spike_watts: f64,
        duration_bounds_secs: (u64, u64),
    ) -> Self {
        LoadSignature {
            name: name.into(),
            kind: LoadKind::Inductive,
            on_delta_watts: steady_watts,
            spike_excess_watts: spike_watts - steady_watts,
            cycle_period_secs: None,
            cycle_duty: None,
            duration_bounds_secs,
        }
    }

    /// Signature of a cyclical load.
    pub fn cyclical(
        name: impl Into<String>,
        on_watts: f64,
        spike_watts: f64,
        period_secs: f64,
        duty: f64,
    ) -> Self {
        let on_len = (period_secs * duty) as u64;
        LoadSignature {
            name: name.into(),
            kind: LoadKind::Cyclical,
            on_delta_watts: on_watts,
            spike_excess_watts: spike_watts - on_watts,
            cycle_period_secs: Some(period_secs),
            cycle_duty: Some(duty),
            duration_bounds_secs: (on_len.saturating_sub(on_len / 2), on_len * 2),
        }
    }

    /// Signature of a composite load, characterized by its dominant step.
    pub fn composite(
        name: impl Into<String>,
        dominant_delta_watts: f64,
        spike_excess_watts: f64,
        duration_bounds_secs: (u64, u64),
    ) -> Self {
        LoadSignature {
            name: name.into(),
            kind: LoadKind::Composite,
            on_delta_watts: dominant_delta_watts,
            spike_excess_watts,
            cycle_period_secs: None,
            cycle_duty: None,
            duration_bounds_secs,
        }
    }

    /// Reconstructs the inner thermostat-cycled element of a cyclical
    /// signature (used by PowerPlay to replay one compressor on-phase).
    /// Returns `None` for non-cyclical signatures.
    pub fn cyclical_element(&self) -> Option<InductiveLoad> {
        self.cycle_period_secs?;
        Some(InductiveLoad::new(
            self.on_delta_watts,
            self.on_delta_watts + self.spike_excess_watts.max(0.0),
            DEFAULT_SPIKE_TAU_SECS,
        ))
    }

    /// How well an observed rising edge of `delta_watts` matches this
    /// signature, as a score in `[0, 1]` (1 = exact match, 0 = outside the
    /// `tolerance` fraction).
    pub fn match_score(&self, delta_watts: f64, tolerance: f64) -> f64 {
        if self.on_delta_watts <= 0.0 {
            return 0.0;
        }
        let rel = (delta_watts - self.on_delta_watts).abs() / self.on_delta_watts;
        if rel >= tolerance {
            0.0
        } else {
            1.0 - rel / tolerance
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistive_signature() {
        let s = LoadSignature::resistive("toaster", 1_500.0, (60, 300));
        assert_eq!(s.kind, LoadKind::Resistive);
        assert_eq!(s.spike_excess_watts, 0.0);
        assert_eq!(s.cycle_period_secs, None);
    }

    #[test]
    fn cyclical_signature_durations() {
        let s = LoadSignature::cyclical("fridge", 120.0, 500.0, 1_500.0, 0.4);
        assert_eq!(s.cycle_period_secs, Some(1_500.0));
        // On-phase is 600 s; bounds bracket it.
        assert_eq!(s.duration_bounds_secs, (300, 1_200));
        assert!((s.spike_excess_watts - 380.0).abs() < 1e-9);
    }

    #[test]
    fn match_score_peaks_at_exact() {
        let s = LoadSignature::resistive("toaster", 1_500.0, (60, 300));
        assert!((s.match_score(1_500.0, 0.2) - 1.0).abs() < 1e-12);
        assert!(s.match_score(1_650.0, 0.2) > 0.0);
        assert_eq!(s.match_score(2_000.0, 0.2), 0.0);
        assert!(s.match_score(1_400.0, 0.2) > s.match_score(1_300.0, 0.2));
    }

    #[test]
    fn cyclical_element_reconstruction() {
        let s = LoadSignature::cyclical("fridge", 120.0, 500.0, 1_500.0, 0.4);
        let e = s.cyclical_element().unwrap();
        assert_eq!(e.steady_watts(), 120.0);
        assert_eq!(e.spike_watts(), 500.0);
        assert!(LoadSignature::resistive("t", 100.0, (1, 2))
            .cyclical_element()
            .is_none());
    }

    #[test]
    fn zero_delta_never_matches() {
        let s = LoadSignature::resistive("weird", 0.0, (1, 2));
        assert_eq!(s.match_score(0.0, 0.5), 0.0);
    }
}
