//! Purely resistive loads.

use crate::model::{LoadKind, LoadModel};
use serde::{Deserialize, Serialize};

/// A purely resistive load: a flat `watts` draw for as long as it is on.
///
/// Models heating elements (toaster, kettle, cooktop, water-heater element)
/// and incandescent lighting.
///
/// # Examples
///
/// ```
/// use loads::{LoadModel, ResistiveLoad};
///
/// let toaster = ResistiveLoad::new(1_500.0);
/// assert_eq!(toaster.power_at(10.0), 1_500.0);
/// assert_eq!(toaster.power_at(-1.0), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResistiveLoad {
    watts: f64,
}

impl ResistiveLoad {
    /// Creates a resistive load drawing `watts` while on.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is not finite and non-negative.
    pub fn new(watts: f64) -> Self {
        assert!(
            watts.is_finite() && watts >= 0.0,
            "watts must be non-negative"
        );
        ResistiveLoad { watts }
    }

    /// The flat draw in watts.
    pub fn watts(&self) -> f64 {
        self.watts
    }
}

impl LoadModel for ResistiveLoad {
    fn kind(&self) -> LoadKind {
        LoadKind::Resistive
    }

    fn nominal_watts(&self) -> f64 {
        self.watts
    }

    fn power_at(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs < 0.0 {
            0.0
        } else {
            self.watts
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_profile() {
        let l = ResistiveLoad::new(1_200.0);
        assert_eq!(l.power_at(0.0), 1_200.0);
        assert_eq!(l.power_at(3_600.0), 1_200.0);
        assert_eq!(l.nominal_watts(), 1_200.0);
        assert_eq!(l.kind(), LoadKind::Resistive);
    }

    #[test]
    fn average_equals_plate() {
        let l = ResistiveLoad::new(900.0);
        assert!((l.average_power(0.0, 60.0) - 900.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        ResistiveLoad::new(-1.0);
    }
}
