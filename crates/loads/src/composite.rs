//! Composite multi-phase loads.

use crate::model::{LoadKind, LoadModel};

/// One phase of a composite load: an inner model that runs for a fixed
/// duration.
#[derive(Debug)]
pub struct Phase {
    /// Length of this phase, seconds.
    pub duration_secs: f64,
    /// The load profile active during this phase.
    pub model: Box<dyn LoadModel>,
}

impl Phase {
    /// Creates a phase running `model` for `duration_secs`.
    ///
    /// # Panics
    ///
    /// Panics if `duration_secs` is not finite and positive.
    pub fn new(duration_secs: f64, model: Box<dyn LoadModel>) -> Self {
        assert!(
            duration_secs.is_finite() && duration_secs > 0.0,
            "phase duration must be positive"
        );
        Phase {
            duration_secs,
            model,
        }
    }
}

/// A composite load: an ordered sequence of phases, each with its own inner
/// model, after which the load draws nothing.
///
/// The canonical example is a clothes dryer — a continuous drum motor
/// overlaid with a thermostat-cycled 5 kW heating element — but washers and
/// dishwashers (fill / wash / heat / spin) use the same structure.
///
/// An optional *overlay* model runs for the whole activation alongside the
/// phases (the dryer's drum motor).
#[derive(Debug)]
pub struct CompositeLoad {
    phases: Vec<Phase>,
    overlay: Option<Box<dyn LoadModel>>,
    total_secs: f64,
}

impl CompositeLoad {
    /// Creates a composite load from its phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(
            !phases.is_empty(),
            "composite load needs at least one phase"
        );
        let total_secs = phases.iter().map(|p| p.duration_secs).sum();
        CompositeLoad {
            phases,
            overlay: None,
            total_secs,
        }
    }

    /// Adds a model that runs concurrently for the entire activation.
    pub fn with_overlay(mut self, overlay: Box<dyn LoadModel>) -> Self {
        self.overlay = Some(overlay);
        self
    }

    /// Total programmed run time, seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_secs
    }

    /// Number of phases.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }
}

impl LoadModel for CompositeLoad {
    fn kind(&self) -> LoadKind {
        LoadKind::Composite
    }

    fn nominal_watts(&self) -> f64 {
        let peak_phase = self
            .phases
            .iter()
            .map(|p| p.model.nominal_watts())
            .fold(0.0, f64::max);
        peak_phase + self.overlay.as_ref().map_or(0.0, |o| o.nominal_watts())
    }

    fn power_at(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs < 0.0 || elapsed_secs >= self.total_secs {
            return 0.0;
        }
        let overlay = self
            .overlay
            .as_ref()
            .map_or(0.0, |o| o.power_at(elapsed_secs));
        let mut offset = 0.0;
        for phase in &self.phases {
            if elapsed_secs < offset + phase.duration_secs {
                return overlay + phase.model.power_at(elapsed_secs - offset);
            }
            offset += phase.duration_secs;
        }
        overlay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cyclical::CyclicalLoad;
    use crate::inductive::InductiveLoad;
    use crate::resistive::ResistiveLoad;

    /// A dryer-like composite: 45 min of a cycling 5 kW element over a
    /// 300 W drum motor.
    fn dryer() -> CompositeLoad {
        let element = CyclicalLoad::new(InductiveLoad::new(5_000.0, 5_000.0, 1.0), 300.0, 0.7, 0.0);
        CompositeLoad::new(vec![Phase::new(2_700.0, Box::new(element))])
            .with_overlay(Box::new(InductiveLoad::new(300.0, 900.0, 3.0)))
    }

    #[test]
    fn dryer_profile() {
        let d = dryer();
        // Early: element on + motor.
        assert!(d.power_at(30.0) > 5_000.0);
        // During the element's off window (t in [210, 300)) only the motor runs.
        let motor_only = d.power_at(250.0);
        assert!(motor_only > 250.0 && motor_only < 400.0, "got {motor_only}");
        // After the program ends, nothing.
        assert_eq!(d.power_at(2_701.0), 0.0);
    }

    #[test]
    fn phase_sequencing() {
        let two_phase = CompositeLoad::new(vec![
            Phase::new(60.0, Box::new(ResistiveLoad::new(100.0))),
            Phase::new(60.0, Box::new(ResistiveLoad::new(900.0))),
        ]);
        assert_eq!(two_phase.power_at(30.0), 100.0);
        assert_eq!(two_phase.power_at(90.0), 900.0);
        assert_eq!(two_phase.power_at(120.0), 0.0);
        assert_eq!(two_phase.total_secs(), 120.0);
        assert_eq!(two_phase.phase_count(), 2);
        assert_eq!(two_phase.nominal_watts(), 900.0);
    }

    #[test]
    fn nominal_includes_overlay() {
        assert!((dryer().nominal_watts() - 5_300.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_rejected() {
        CompositeLoad::new(vec![]);
    }
}
