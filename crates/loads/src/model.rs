//! The core load-model abstraction.

use serde::{Deserialize, Serialize};

/// The fundamental electrical type of a load (Barker et al. IGCC'13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadKind {
    /// Flat draw while on (heating elements, incandescent lighting).
    Resistive,
    /// Startup spike decaying to a steady motor draw.
    Inductive,
    /// A thermostat duty-cycles an inner element.
    Cyclical,
    /// Electronics with a fluctuating draw.
    NonLinear,
    /// A sequence of phases, each its own load.
    Composite,
}

impl std::fmt::Display for LoadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LoadKind::Resistive => "resistive",
            LoadKind::Inductive => "inductive",
            LoadKind::Cyclical => "cyclical",
            LoadKind::NonLinear => "non-linear",
            LoadKind::Composite => "composite",
        };
        f.write_str(s)
    }
}

/// A deterministic power profile: instantaneous draw as a function of time
/// since switch-on.
///
/// Implementations must be pure (no interior mutability), so the same model
/// drives both simulation and PowerPlay's model-based tracking. The trait is
/// object-safe; composite loads store `Box<dyn LoadModel>` phases.
pub trait LoadModel: Send + Sync + std::fmt::Debug {
    /// The fundamental electrical type.
    fn kind(&self) -> LoadKind;

    /// The steady-state (plate) power in watts, ignoring transients. For
    /// cyclical loads this is the *on-phase* power, not the duty-cycle
    /// average.
    fn nominal_watts(&self) -> f64;

    /// Instantaneous draw in watts, `elapsed_secs` seconds after switch-on.
    ///
    /// Must return 0 for negative elapsed times and a finite non-negative
    /// value otherwise.
    fn power_at(&self, elapsed_secs: f64) -> f64;

    /// Average draw over one sampling interval `[from, to)` seconds after
    /// switch-on, by midpoint sub-sampling at 1 Hz (adequate because model
    /// transients are ≥ seconds long).
    fn average_power(&self, from_secs: f64, to_secs: f64) -> f64 {
        if to_secs <= from_secs {
            return 0.0;
        }
        let span = to_secs - from_secs;
        let steps = span.ceil().max(1.0) as usize;
        let dt = span / steps as f64;
        let mut acc = 0.0;
        for i in 0..steps {
            acc += self.power_at(from_secs + (i as f64 + 0.5) * dt);
        }
        acc / steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Ramp;

    impl LoadModel for Ramp {
        fn kind(&self) -> LoadKind {
            LoadKind::Resistive
        }
        fn nominal_watts(&self) -> f64 {
            100.0
        }
        fn power_at(&self, elapsed_secs: f64) -> f64 {
            if elapsed_secs < 0.0 {
                0.0
            } else {
                elapsed_secs
            }
        }
    }

    #[test]
    fn average_power_integrates() {
        // Average of a ramp over [0, 10) is ~5.
        let avg = Ramp.average_power(0.0, 10.0);
        assert!((avg - 5.0).abs() < 1e-9, "avg {avg}");
    }

    #[test]
    fn average_power_empty_interval() {
        assert_eq!(Ramp.average_power(5.0, 5.0), 0.0);
        assert_eq!(Ramp.average_power(5.0, 1.0), 0.0);
    }

    #[test]
    fn kind_display() {
        assert_eq!(LoadKind::Resistive.to_string(), "resistive");
        assert_eq!(LoadKind::NonLinear.to_string(), "non-linear");
    }

    #[test]
    fn object_safety() {
        let b: Box<dyn LoadModel> = Box::new(Ramp);
        assert_eq!(b.kind(), LoadKind::Resistive);
    }
}
