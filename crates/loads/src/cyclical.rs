//! Cyclical (thermostatically duty-cycled) loads.

use crate::inductive::InductiveLoad;
use crate::model::{LoadKind, LoadModel};
use serde::{Deserialize, Serialize};

/// A cyclical load: an inner inductive element switched by a thermostat
/// with a fixed period and duty fraction.
///
/// `power(t)` is the inner element's profile during the first
/// `duty * period` seconds of each period, and 0 for the rest. Refrigerators
/// and freezers are the canonical examples — the background loads whose
/// statistical signature NIOM must filter out.
///
/// The `phase_secs` offset lets the simulator de-synchronize multiple
/// cyclical devices in one home.
///
/// # Examples
///
/// ```
/// use loads::{CyclicalLoad, InductiveLoad, LoadModel};
///
/// // Fridge: 25-minute cycle, on 40% of the time.
/// let fridge = CyclicalLoad::new(InductiveLoad::new(120.0, 500.0, 4.0), 1_500.0, 0.4, 0.0);
/// assert!(fridge.power_at(10.0) > 100.0);     // early in the on phase
/// assert_eq!(fridge.power_at(700.0), 0.0);    // off phase
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CyclicalLoad {
    element: InductiveLoad,
    period_secs: f64,
    duty: f64,
    phase_secs: f64,
}

impl CyclicalLoad {
    /// Creates a cyclical load.
    ///
    /// * `element` — the inner compressor/motor model.
    /// * `period_secs` — full thermostat cycle length.
    /// * `duty` — fraction of each period the element runs, in `(0, 1]`.
    /// * `phase_secs` — offset into the cycle at switch-on.
    ///
    /// # Panics
    ///
    /// Panics if `period_secs` is not positive, `duty` is outside `(0, 1]`,
    /// or `phase_secs` is not finite and non-negative.
    pub fn new(element: InductiveLoad, period_secs: f64, duty: f64, phase_secs: f64) -> Self {
        assert!(
            period_secs.is_finite() && period_secs > 0.0,
            "period must be positive"
        );
        assert!(duty > 0.0 && duty <= 1.0, "duty must be in (0, 1]");
        assert!(
            phase_secs.is_finite() && phase_secs >= 0.0,
            "phase must be non-negative"
        );
        CyclicalLoad {
            element,
            period_secs,
            duty,
            phase_secs,
        }
    }

    /// The inner element model.
    pub fn element(&self) -> &InductiveLoad {
        &self.element
    }

    /// Full cycle length, seconds.
    pub fn period_secs(&self) -> f64 {
        self.period_secs
    }

    /// On fraction of each cycle.
    pub fn duty(&self) -> f64 {
        self.duty
    }

    /// Duty-cycle-averaged draw in watts (ignoring the in-rush excess).
    pub fn average_watts(&self) -> f64 {
        self.element.steady_watts() * self.duty
    }

    /// Returns a copy with a different phase offset.
    pub fn with_phase(mut self, phase_secs: f64) -> Self {
        assert!(
            phase_secs.is_finite() && phase_secs >= 0.0,
            "phase must be non-negative"
        );
        self.phase_secs = phase_secs;
        self
    }
}

impl LoadModel for CyclicalLoad {
    fn kind(&self) -> LoadKind {
        LoadKind::Cyclical
    }

    fn nominal_watts(&self) -> f64 {
        self.element.steady_watts()
    }

    fn power_at(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs < 0.0 {
            return 0.0;
        }
        let t = (elapsed_secs + self.phase_secs) % self.period_secs;
        let on_len = self.duty * self.period_secs;
        if t < on_len {
            self.element.power_at(t)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fridge() -> CyclicalLoad {
        CyclicalLoad::new(InductiveLoad::new(120.0, 500.0, 4.0), 1_500.0, 0.4, 0.0)
    }

    #[test]
    fn on_and_off_phases() {
        let f = fridge();
        // On for the first 600 s of each 1500 s cycle.
        assert!(f.power_at(100.0) > 100.0);
        assert!(f.power_at(599.0) > 100.0);
        assert_eq!(f.power_at(601.0), 0.0);
        assert_eq!(f.power_at(1_499.0), 0.0);
        // Next cycle repeats, including the in-rush.
        assert!(f.power_at(1_500.0) > 400.0);
    }

    #[test]
    fn phase_shifts_cycle() {
        let f = fridge().with_phase(600.0);
        // With a 600 s phase, t=0 lands at the start of the off phase.
        assert_eq!(f.power_at(0.0), 0.0);
        assert!(f.power_at(900.0) > 400.0); // wrapped to cycle start
    }

    #[test]
    fn average_watts() {
        let f = fridge();
        assert!((f.average_watts() - 48.0).abs() < 1e-9);
    }

    #[test]
    fn long_run_average_close_to_duty_average() {
        let f = fridge();
        let avg = f.average_power(0.0, 15_000.0); // ten full cycles
                                                  // In-rush adds a little extra on top of the duty average.
        assert!(avg > 48.0 && avg < 60.0, "avg {avg}");
    }

    #[test]
    #[should_panic(expected = "duty must be in")]
    fn bad_duty_rejected() {
        CyclicalLoad::new(InductiveLoad::new(100.0, 200.0, 1.0), 100.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn bad_period_rejected() {
        CyclicalLoad::new(InductiveLoad::new(100.0, 200.0, 1.0), 0.0, 0.5, 0.0);
    }
}
