//! Non-linear (electronic) loads.

use crate::model::{LoadKind, LoadModel};
use serde::{Deserialize, Serialize};

/// A non-linear electronic load: a base draw plus a bounded deterministic
/// fluctuation (sum of incommensurate sinusoids).
///
/// Models TVs, computers, and game consoles, whose draw varies with content
/// and workload. The fluctuation is deterministic in elapsed time so that
/// synthesis stays reproducible; its irrational frequency ratios keep it
/// from aliasing against the sampling rate.
///
/// # Examples
///
/// ```
/// use loads::{LoadModel, NonLinearLoad};
///
/// let tv = NonLinearLoad::new(150.0, 40.0);
/// let p = tv.power_at(123.0);
/// assert!(p >= 110.0 - 1e9_f64.recip() && p <= 190.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NonLinearLoad {
    base_watts: f64,
    swing_watts: f64,
}

impl NonLinearLoad {
    /// Creates a non-linear load with draw `base ± swing`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are non-finite, negative, or if
    /// `swing_watts > base_watts` (which would allow negative power).
    pub fn new(base_watts: f64, swing_watts: f64) -> Self {
        assert!(
            base_watts.is_finite() && base_watts >= 0.0,
            "base must be non-negative"
        );
        assert!(
            swing_watts.is_finite() && (0.0..=base_watts).contains(&swing_watts),
            "swing must be within [0, base]"
        );
        NonLinearLoad {
            base_watts,
            swing_watts,
        }
    }

    /// The mean draw, watts.
    pub fn base_watts(&self) -> f64 {
        self.base_watts
    }

    /// The fluctuation amplitude, watts.
    pub fn swing_watts(&self) -> f64 {
        self.swing_watts
    }
}

impl LoadModel for NonLinearLoad {
    fn kind(&self) -> LoadKind {
        LoadKind::NonLinear
    }

    fn nominal_watts(&self) -> f64 {
        self.base_watts
    }

    fn power_at(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs < 0.0 {
            return 0.0;
        }
        // Three incommensurate tones, normalized so the sum stays in [-1, 1].
        let t = elapsed_secs;
        let s = (0.011 * t).sin() + (0.0047 * t + 1.3).sin() + (0.00013 * t + 0.7).sin();
        self.base_watts + self.swing_watts * (s / 3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_fluctuation() {
        let l = NonLinearLoad::new(200.0, 50.0);
        for i in 0..10_000 {
            let p = l.power_at(i as f64);
            assert!((150.0..=250.0).contains(&p), "p={p} at t={i}");
        }
    }

    #[test]
    fn varies_over_time() {
        let l = NonLinearLoad::new(200.0, 50.0);
        let a = l.power_at(10.0);
        let b = l.power_at(400.0);
        assert!((a - b).abs() > 1.0, "expected variation, got {a} vs {b}");
    }

    #[test]
    fn deterministic() {
        let l = NonLinearLoad::new(200.0, 50.0);
        assert_eq!(l.power_at(77.0), l.power_at(77.0));
    }

    #[test]
    fn zero_swing_is_flat() {
        let l = NonLinearLoad::new(100.0, 0.0);
        assert_eq!(l.power_at(1.0), 100.0);
        assert_eq!(l.power_at(9_999.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "swing must be within")]
    fn excessive_swing_rejected() {
        NonLinearLoad::new(100.0, 150.0);
    }
}
