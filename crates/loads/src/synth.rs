//! Rendering load models into power traces.

use crate::activation::Activation;
use crate::model::LoadModel;
use timeseries::{PowerTrace, Resolution, Timestamp};

/// Renders a device's ground-truth trace from its activation schedule.
///
/// Each output sample is the model's average power over that sampling
/// interval, summed across any activations covering it (overlapping
/// activations stack, which is physically right for e.g. a two-burner
/// cooktop modelled as repeated activations).
///
/// # Examples
///
/// ```
/// use loads::{render_activations, Activation, ResistiveLoad};
/// use timeseries::{Resolution, Timestamp};
///
/// let toaster = ResistiveLoad::new(1_500.0);
/// let trace = render_activations(
///     &toaster,
///     &[Activation::new(Timestamp::from_secs(120), 180)],
///     Timestamp::ZERO,
///     Resolution::ONE_MINUTE,
///     10,
/// );
/// assert_eq!(trace.watts(0), 0.0);
/// assert_eq!(trace.watts(2), 1_500.0);
/// assert_eq!(trace.watts(5), 0.0);
/// ```
pub fn render_activations(
    model: &dyn LoadModel,
    activations: &[Activation],
    start: Timestamp,
    resolution: Resolution,
    len: usize,
) -> PowerTrace {
    let res = resolution.as_secs() as u64;
    let mut samples = vec![0.0; len];
    for act in activations {
        let act_start = act.start.as_secs();
        let act_end = act.end().as_secs();
        let trace_start = start.as_secs();
        // Sample indices potentially covered by this activation.
        let first = act_start.saturating_sub(trace_start) / res;
        let last = act_end
            .saturating_sub(trace_start)
            .div_ceil(res)
            .min(len as u64);
        for (i, slot) in samples
            .iter_mut()
            .enumerate()
            .take(last as usize)
            .skip(first as usize)
        {
            let slot_start = trace_start + i as u64 * res;
            let slot_end = slot_start + res;
            let lo = slot_start.max(act_start);
            let hi = slot_end.min(act_end);
            if hi <= lo {
                continue;
            }
            let from = (lo - act_start) as f64;
            let to = (hi - act_start) as f64;
            // Average over the covered part, scaled by coverage fraction so
            // the sample stays an interval average.
            let covered = model.average_power(from, to) * (to - from) / res as f64;
            *slot += covered;
        }
    }
    PowerTrace::new(start, resolution, samples).expect("load models produce finite power")
}

/// Renders a device that is on for the entire span (background loads such
/// as refrigerators, freezers, and ventilation).
pub fn render_always_on(
    model: &dyn LoadModel,
    start: Timestamp,
    resolution: Resolution,
    len: usize,
) -> PowerTrace {
    let span = len as u64 * resolution.as_secs() as u64;
    if span == 0 {
        return PowerTrace::zeros(start, resolution, len);
    }
    render_activations(
        model,
        &[Activation::new(start, span)],
        start,
        resolution,
        len,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cyclical::CyclicalLoad;
    use crate::inductive::InductiveLoad;
    use crate::resistive::ResistiveLoad;

    #[test]
    fn partial_sample_coverage_scales() {
        // 90-second activation starting at t=30 in a 1-minute trace:
        // sample 0 covers 30 s of the activation → 750 W average.
        let toaster = ResistiveLoad::new(1_500.0);
        let t = render_activations(
            &toaster,
            &[Activation::new(Timestamp::from_secs(30), 90)],
            Timestamp::ZERO,
            Resolution::ONE_MINUTE,
            3,
        );
        assert!((t.watts(0) - 750.0).abs() < 1e-9);
        assert!((t.watts(1) - 1_500.0).abs() < 1e-9);
        assert_eq!(t.watts(2), 0.0);
    }

    #[test]
    fn energy_conserved() {
        // 1500 W for exactly 10 minutes = 0.25 kWh regardless of alignment.
        let toaster = ResistiveLoad::new(1_500.0);
        let t = render_activations(
            &toaster,
            &[Activation::new(Timestamp::from_secs(137), 600)],
            Timestamp::ZERO,
            Resolution::ONE_MINUTE,
            30,
        );
        assert!((t.energy_kwh() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn overlapping_activations_stack() {
        let burner = ResistiveLoad::new(1_000.0);
        let t = render_activations(
            &burner,
            &[
                Activation::new(Timestamp::ZERO, 120),
                Activation::new(Timestamp::ZERO, 120),
            ],
            Timestamp::ZERO,
            Resolution::ONE_MINUTE,
            2,
        );
        assert!((t.watts(0) - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn activation_outside_trace_ignored() {
        let l = ResistiveLoad::new(500.0);
        let t = render_activations(
            &l,
            &[Activation::new(Timestamp::from_secs(10_000), 60)],
            Timestamp::ZERO,
            Resolution::ONE_MINUTE,
            5,
        );
        assert_eq!(t.samples().iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn always_on_fridge_duty_average() {
        let fridge = CyclicalLoad::new(InductiveLoad::new(120.0, 120.0, 1.0), 1_500.0, 0.4, 0.0);
        let t = render_always_on(
            &fridge,
            Timestamp::ZERO,
            Resolution::ONE_MINUTE,
            1_500 / 60 * 10,
        );
        // Ten full cycles at 40% duty of 120 W ≈ 48 W mean.
        assert!(
            (t.mean_watts() - 48.0).abs() < 2.0,
            "mean {}",
            t.mean_watts()
        );
    }

    #[test]
    fn empty_render() {
        let l = ResistiveLoad::new(100.0);
        let t = render_always_on(&l, Timestamp::ZERO, Resolution::ONE_MINUTE, 0);
        assert!(t.is_empty());
    }
}
