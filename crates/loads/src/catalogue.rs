//! The canonical appliance catalogue.
//!
//! Canonical parameter values follow the empirical characterization of
//! residential loads in Barker et al. (IGCC'13) and the device set of the
//! paper's Figure 2: toaster, fridge, freezer, dryer, and HRV, plus the
//! other appliances the intro's activity-inference examples need
//! (microwave, cooktop, TV, lighting, laundry).

use crate::composite::{CompositeLoad, Phase};
use crate::cyclical::CyclicalLoad;
use crate::inductive::InductiveLoad;
use crate::model::LoadModel;
use crate::nonlinear::NonLinearLoad;
use crate::resistive::ResistiveLoad;
use crate::signature::LoadSignature;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Whether a device is driven by occupants or runs regardless of occupancy.
///
/// NIOM's core intuition is that *interactive* loads fire only when someone
/// is home while *background* loads do not care — this enum is that
/// distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApplianceCategory {
    /// Manually operated: contributes occupancy side-channel signal.
    Interactive,
    /// Autonomous (fridge, freezer, HRV): background noise NIOM must filter.
    Background,
}

/// Occupant-usage priors for an interactive appliance, consumed by the home
/// simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsagePrior {
    /// Mean activations per fully-occupied day.
    pub events_per_day: f64,
    /// Uniform activation-duration range, seconds.
    pub duration_secs: (u64, u64),
    /// Hours of day `(start, end)` in which activations may occur; an event
    /// picks one window uniformly, then a uniform time inside it.
    pub preferred_hours: Vec<(u8, u8)>,
}

impl UsagePrior {
    /// Creates a usage prior.
    ///
    /// # Panics
    ///
    /// Panics if `events_per_day` is negative, the duration range is empty
    /// or inverted, or any window is empty or exceeds 24 h.
    pub fn new(
        events_per_day: f64,
        duration_secs: (u64, u64),
        preferred_hours: Vec<(u8, u8)>,
    ) -> Self {
        assert!(events_per_day >= 0.0, "events per day must be non-negative");
        assert!(
            duration_secs.0 > 0 && duration_secs.0 <= duration_secs.1,
            "duration range must be non-empty and ordered"
        );
        assert!(
            !preferred_hours.is_empty(),
            "need at least one usage window"
        );
        for &(s, e) in &preferred_hours {
            assert!(s < e && e <= 24, "invalid usage window {s}..{e}");
        }
        UsagePrior {
            events_per_day,
            duration_secs,
            preferred_hours,
        }
    }
}

/// One appliance: its electrical model, behaviour category, usage prior,
/// and the a-priori signature PowerPlay tracks it with.
#[derive(Debug, Clone)]
pub struct Appliance {
    name: String,
    category: ApplianceCategory,
    model: Arc<dyn LoadModel>,
    usage: Option<UsagePrior>,
    signature: LoadSignature,
}

impl Appliance {
    /// Creates an appliance from its parts.
    ///
    /// # Panics
    ///
    /// Panics if an interactive appliance has no usage prior.
    pub fn new(
        name: impl Into<String>,
        category: ApplianceCategory,
        model: Arc<dyn LoadModel>,
        usage: Option<UsagePrior>,
        signature: LoadSignature,
    ) -> Self {
        let name = name.into();
        if category == ApplianceCategory::Interactive {
            assert!(
                usage.is_some(),
                "interactive appliance {name} needs a usage prior"
            );
        }
        Appliance {
            name,
            category,
            model,
            usage,
            signature,
        }
    }

    /// The appliance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Interactive or background.
    pub fn category(&self) -> ApplianceCategory {
        self.category
    }

    /// The electrical load model.
    pub fn model(&self) -> &Arc<dyn LoadModel> {
        &self.model
    }

    /// The usage prior (None for background devices).
    pub fn usage(&self) -> Option<&UsagePrior> {
        self.usage.as_ref()
    }

    /// The a-priori tracking signature.
    pub fn signature(&self) -> &LoadSignature {
        &self.signature
    }

    // ---- canonical devices -------------------------------------------------

    /// 1.5 kW two-slot toaster; short breakfast-time activations.
    pub fn toaster() -> Appliance {
        Appliance::new(
            "toaster",
            ApplianceCategory::Interactive,
            Arc::new(ResistiveLoad::new(1_500.0)),
            Some(UsagePrior::new(0.9, (120, 300), vec![(6, 10)])),
            LoadSignature::resistive("toaster", 1_500.0, (60, 360)),
        )
    }

    /// 1.1 kW microwave; brief meal-time activations.
    pub fn microwave() -> Appliance {
        Appliance::new(
            "microwave",
            ApplianceCategory::Interactive,
            Arc::new(ResistiveLoad::new(1_100.0)),
            Some(UsagePrior::new(
                1.8,
                (60, 420),
                vec![(7, 9), (11, 14), (17, 21)],
            )),
            LoadSignature::resistive("microwave", 1_100.0, (30, 600)),
        )
    }

    /// 1.2 kW electric kettle.
    pub fn kettle() -> Appliance {
        Appliance::new(
            "kettle",
            ApplianceCategory::Interactive,
            Arc::new(ResistiveLoad::new(1_200.0)),
            Some(UsagePrior::new(
                1.2,
                (120, 300),
                vec![(6, 10), (15, 17), (19, 22)],
            )),
            LoadSignature::resistive("kettle", 1_200.0, (60, 360)),
        )
    }

    /// 2 kW cooktop burner; dinner-time cooking.
    pub fn cooktop() -> Appliance {
        Appliance::new(
            "cooktop",
            ApplianceCategory::Interactive,
            Arc::new(ResistiveLoad::new(2_000.0)),
            Some(UsagePrior::new(0.8, (600, 2_400), vec![(17, 20)])),
            LoadSignature::resistive("cooktop", 2_000.0, (300, 3_600)),
        )
    }

    /// Refrigerator: 120 W compressor with a 500 W in-rush, 25-minute
    /// thermostat cycle at 40 % duty. Background.
    pub fn fridge() -> Appliance {
        let model = CyclicalLoad::new(InductiveLoad::new(120.0, 500.0, 4.0), 1_500.0, 0.4, 0.0);
        Appliance::new(
            "fridge",
            ApplianceCategory::Background,
            Arc::new(model),
            None,
            LoadSignature::cyclical("fridge", 120.0, 500.0, 1_500.0, 0.4),
        )
    }

    /// Chest freezer: 90 W compressor, 400 W in-rush, ~33-minute cycle at
    /// 35 % duty. Background.
    pub fn freezer() -> Appliance {
        let model = CyclicalLoad::new(InductiveLoad::new(90.0, 400.0, 4.0), 2_000.0, 0.35, 0.0);
        Appliance::new(
            "freezer",
            ApplianceCategory::Background,
            Arc::new(model),
            None,
            LoadSignature::cyclical("freezer", 90.0, 400.0, 2_000.0, 0.35),
        )
    }

    /// Clothes dryer: 45-minute program; 5 kW element cycling at 70 % duty
    /// over a 300 W drum motor.
    pub fn dryer() -> Appliance {
        let element = CyclicalLoad::new(InductiveLoad::new(5_000.0, 5_000.0, 1.0), 300.0, 0.7, 0.0);
        let model = CompositeLoad::new(vec![Phase::new(2_700.0, Box::new(element))])
            .with_overlay(Box::new(InductiveLoad::new(300.0, 900.0, 3.0)));
        Appliance::new(
            "dryer",
            ApplianceCategory::Interactive,
            Arc::new(model),
            Some(UsagePrior::new(0.35, (2_400, 3_000), vec![(9, 21)])),
            LoadSignature::composite("dryer", 5_300.0, 600.0, (1_800, 3_600)),
        )
    }

    /// Washing machine: fill/agitate/spin phases, ~35 minutes.
    pub fn washer() -> Appliance {
        let model = CompositeLoad::new(vec![
            Phase::new(300.0, Box::new(ResistiveLoad::new(80.0))), // fill
            Phase::new(1_200.0, Box::new(InductiveLoad::new(450.0, 1_200.0, 5.0))), // agitate
            Phase::new(600.0, Box::new(InductiveLoad::new(700.0, 1_500.0, 5.0))), // spin
        ]);
        Appliance::new(
            "washer",
            ApplianceCategory::Interactive,
            Arc::new(model),
            Some(UsagePrior::new(0.35, (1_800, 2_400), vec![(8, 20)])),
            LoadSignature::composite("washer", 450.0, 750.0, (1_200, 3_000)),
        )
    }

    /// Dishwasher: pre-rinse, heated wash, dry; ~1 hour.
    pub fn dishwasher() -> Appliance {
        let model = CompositeLoad::new(vec![
            Phase::new(600.0, Box::new(InductiveLoad::new(200.0, 600.0, 4.0))),
            Phase::new(1_800.0, Box::new(ResistiveLoad::new(1_800.0))),
            Phase::new(1_200.0, Box::new(ResistiveLoad::new(600.0))),
        ]);
        Appliance::new(
            "dishwasher",
            ApplianceCategory::Interactive,
            Arc::new(model),
            Some(UsagePrior::new(0.6, (3_000, 3_900), vec![(19, 23)])),
            LoadSignature::composite("dishwasher", 1_800.0, 400.0, (2_400, 4_200)),
        )
    }

    /// Heat-recovery ventilator: a variable-speed 100 W fan running
    /// continuously (draw wanders ±35 W with duct pressure). Background.
    pub fn hrv() -> Appliance {
        Appliance::new(
            "hrv",
            ApplianceCategory::Background,
            Arc::new(NonLinearLoad::new(100.0, 35.0)),
            None,
            LoadSignature {
                name: "hrv".into(),
                kind: crate::model::LoadKind::NonLinear,
                on_delta_watts: 100.0,
                spike_excess_watts: 0.0,
                cycle_period_secs: None,
                cycle_duty: None,
                duration_bounds_secs: (3_600, u64::MAX / 2),
            },
        )
    }

    /// Aggregate room lighting: 250 W of fixtures, evening-heavy.
    pub fn lighting() -> Appliance {
        Appliance::new(
            "lighting",
            ApplianceCategory::Interactive,
            Arc::new(ResistiveLoad::new(250.0)),
            Some(UsagePrior::new(
                3.0,
                (1_800, 10_800),
                vec![(6, 9), (17, 23)],
            )),
            LoadSignature::resistive("lighting", 250.0, (600, 14_400)),
        )
    }

    /// Television: 150 W ± 40 W non-linear draw, evenings.
    pub fn tv() -> Appliance {
        Appliance::new(
            "tv",
            ApplianceCategory::Interactive,
            Arc::new(NonLinearLoad::new(150.0, 40.0)),
            Some(UsagePrior::new(
                1.6,
                (1_800, 9_000),
                vec![(12, 14), (18, 23)],
            )),
            LoadSignature::resistive("tv", 150.0, (900, 10_800)),
        )
    }

    /// Desktop computer: 120 W ± 30 W.
    pub fn computer() -> Appliance {
        Appliance::new(
            "computer",
            ApplianceCategory::Interactive,
            Arc::new(NonLinearLoad::new(120.0, 30.0)),
            Some(UsagePrior::new(1.2, (3_600, 14_400), vec![(8, 23)])),
            LoadSignature::resistive("computer", 120.0, (1_800, 18_000)),
        )
    }
}

/// A named collection of appliances.
///
/// # Examples
///
/// ```
/// use loads::Catalogue;
///
/// let cat = Catalogue::standard();
/// assert!(cat.get("fridge").is_some());
/// assert!(cat.len() >= 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Catalogue {
    appliances: Vec<Appliance>,
}

impl Catalogue {
    /// Creates an empty catalogue.
    pub fn new() -> Self {
        Catalogue::default()
    }

    /// The full standard residential set used by the experiments.
    pub fn standard() -> Self {
        let mut c = Catalogue::new();
        for a in [
            Appliance::toaster(),
            Appliance::microwave(),
            Appliance::kettle(),
            Appliance::cooktop(),
            Appliance::fridge(),
            Appliance::freezer(),
            Appliance::dryer(),
            Appliance::washer(),
            Appliance::dishwasher(),
            Appliance::hrv(),
            Appliance::lighting(),
            Appliance::tv(),
            Appliance::computer(),
        ] {
            c.push(a);
        }
        c
    }

    /// The standard set from a process-wide cache. Cloning a cached
    /// catalogue only bumps the appliances' shared-model refcounts, so
    /// fleet-scale callers building thousands of `HomeConfig`s skip
    /// rebuilding the load models each time.
    pub fn standard_shared() -> Self {
        static CACHE: std::sync::OnceLock<Catalogue> = std::sync::OnceLock::new();
        CACHE.get_or_init(Catalogue::standard).clone()
    }

    /// The five tracked devices of the paper's Figure 2.
    pub fn figure2() -> Self {
        let mut c = Catalogue::new();
        for a in [
            Appliance::toaster(),
            Appliance::fridge(),
            Appliance::freezer(),
            Appliance::dryer(),
            Appliance::hrv(),
        ] {
            c.push(a);
        }
        c
    }

    /// Adds an appliance.
    ///
    /// # Panics
    ///
    /// Panics if an appliance with the same name already exists.
    pub fn push(&mut self, appliance: Appliance) {
        assert!(
            self.get(appliance.name()).is_none(),
            "duplicate appliance {}",
            appliance.name()
        );
        self.appliances.push(appliance);
    }

    /// Looks up an appliance by name.
    pub fn get(&self, name: &str) -> Option<&Appliance> {
        self.appliances.iter().find(|a| a.name() == name)
    }

    /// All appliances, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Appliance> {
        self.appliances.iter()
    }

    /// Appliances of one category.
    pub fn by_category(&self, cat: ApplianceCategory) -> impl Iterator<Item = &Appliance> {
        self.appliances.iter().filter(move |a| a.category() == cat)
    }

    /// Number of appliances.
    pub fn len(&self) -> usize {
        self.appliances.len()
    }

    /// `true` if the catalogue holds no appliances.
    pub fn is_empty(&self) -> bool {
        self.appliances.is_empty()
    }
}

impl FromIterator<Appliance> for Catalogue {
    fn from_iter<I: IntoIterator<Item = Appliance>>(iter: I) -> Self {
        let mut c = Catalogue::new();
        for a in iter {
            c.push(a);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LoadKind;

    #[test]
    fn standard_catalogue_complete() {
        let c = Catalogue::standard();
        assert_eq!(c.len(), 13);
        for name in ["toaster", "fridge", "freezer", "dryer", "hrv", "tv"] {
            assert!(c.get(name).is_some(), "missing {name}");
        }
        assert!(c.get("flux-capacitor").is_none());
    }

    #[test]
    fn figure2_set() {
        let c = Catalogue::figure2();
        let names: Vec<_> = c.iter().map(|a| a.name().to_string()).collect();
        assert_eq!(names, ["toaster", "fridge", "freezer", "dryer", "hrv"]);
    }

    #[test]
    fn categories_partition() {
        let c = Catalogue::standard();
        let interactive = c.by_category(ApplianceCategory::Interactive).count();
        let background = c.by_category(ApplianceCategory::Background).count();
        assert_eq!(interactive + background, c.len());
        assert_eq!(background, 3); // fridge, freezer, hrv
    }

    #[test]
    fn interactive_have_usage_priors() {
        for a in Catalogue::standard().by_category(ApplianceCategory::Interactive) {
            assert!(a.usage().is_some(), "{} lacks usage prior", a.name());
        }
    }

    #[test]
    fn background_models_are_autonomous_kinds() {
        let c = Catalogue::standard();
        assert_eq!(c.get("fridge").unwrap().model().kind(), LoadKind::Cyclical);
        assert_eq!(c.get("hrv").unwrap().model().kind(), LoadKind::NonLinear);
    }

    #[test]
    fn signatures_match_models() {
        let c = Catalogue::standard();
        let toaster = c.get("toaster").unwrap();
        assert!(
            (toaster.signature().on_delta_watts - toaster.model().nominal_watts()).abs() < 1e-9
        );
    }

    #[test]
    #[should_panic(expected = "duplicate appliance")]
    fn duplicates_rejected() {
        let mut c = Catalogue::new();
        c.push(Appliance::toaster());
        c.push(Appliance::toaster());
    }

    #[test]
    fn from_iterator() {
        let c: Catalogue = [Appliance::tv(), Appliance::fridge()].into_iter().collect();
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid usage window")]
    fn bad_window_rejected() {
        UsagePrior::new(1.0, (60, 120), vec![(22, 22)]);
    }
}
