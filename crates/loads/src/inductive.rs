//! Inductive (motor) loads.

use crate::model::{LoadKind, LoadModel};
use serde::{Deserialize, Serialize};

/// The canonical in-rush decay constant used when reconstructing an
/// inductive element from a [`crate::LoadSignature`] (which stores spike
/// magnitude but not its decay rate).
pub const DEFAULT_SPIKE_TAU_SECS: f64 = 4.0;

/// An inductive load: a startup in-rush spike that decays exponentially to
/// a steady motor draw.
///
/// `power(t) = steady + (spike - steady) * exp(-t / tau)`
///
/// Models compressors, pumps, and fans. The spike is the feature PowerPlay
/// uses to distinguish motor starts from resistive switch-ons of similar
/// magnitude.
///
/// # Examples
///
/// ```
/// use loads::{InductiveLoad, LoadModel};
///
/// let compressor = InductiveLoad::new(150.0, 600.0, 5.0);
/// assert!(compressor.power_at(0.0) > 500.0);       // in-rush
/// assert!((compressor.power_at(60.0) - 150.0).abs() < 1.0); // settled
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InductiveLoad {
    steady_watts: f64,
    spike_watts: f64,
    spike_tau_secs: f64,
}

impl InductiveLoad {
    /// Creates an inductive load.
    ///
    /// * `steady_watts` — settled running draw.
    /// * `spike_watts` — instantaneous draw at switch-on (≥ steady).
    /// * `spike_tau_secs` — exponential decay constant of the in-rush.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-finite, negative, if
    /// `spike_watts < steady_watts`, or if `spike_tau_secs` is not positive.
    pub fn new(steady_watts: f64, spike_watts: f64, spike_tau_secs: f64) -> Self {
        assert!(
            steady_watts.is_finite() && steady_watts >= 0.0,
            "steady watts must be non-negative"
        );
        assert!(
            spike_watts.is_finite() && spike_watts >= steady_watts,
            "spike must be at least the steady draw"
        );
        assert!(
            spike_tau_secs.is_finite() && spike_tau_secs > 0.0,
            "spike time constant must be positive"
        );
        InductiveLoad {
            steady_watts,
            spike_watts,
            spike_tau_secs,
        }
    }

    /// Settled running draw, watts.
    pub fn steady_watts(&self) -> f64 {
        self.steady_watts
    }

    /// Switch-on in-rush draw, watts.
    pub fn spike_watts(&self) -> f64 {
        self.spike_watts
    }

    /// In-rush decay constant, seconds.
    pub fn spike_tau_secs(&self) -> f64 {
        self.spike_tau_secs
    }
}

impl LoadModel for InductiveLoad {
    fn kind(&self) -> LoadKind {
        LoadKind::Inductive
    }

    fn nominal_watts(&self) -> f64 {
        self.steady_watts
    }

    fn power_at(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs < 0.0 {
            return 0.0;
        }
        self.steady_watts
            + (self.spike_watts - self.steady_watts) * (-elapsed_secs / self.spike_tau_secs).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spike_decays_to_steady() {
        let l = InductiveLoad::new(200.0, 1_000.0, 3.0);
        assert!((l.power_at(0.0) - 1_000.0).abs() < 1e-9);
        // After one tau, the excess has decayed to 1/e.
        let expected = 200.0 + 800.0 / std::f64::consts::E;
        assert!((l.power_at(3.0) - expected).abs() < 1e-9);
        assert!((l.power_at(100.0) - 200.0).abs() < 1e-6);
    }

    #[test]
    fn monotone_decay() {
        let l = InductiveLoad::new(100.0, 500.0, 2.0);
        let mut prev = f64::INFINITY;
        for i in 0..20 {
            let p = l.power_at(i as f64);
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn average_over_minute_near_steady() {
        let l = InductiveLoad::new(150.0, 600.0, 5.0);
        let avg = l.average_power(0.0, 60.0);
        // Excess energy = (600-150)*tau = 2250 J over 60 s → ~37.5 W extra.
        assert!(avg > 150.0 && avg < 200.0, "avg {avg}");
    }

    #[test]
    #[should_panic(expected = "spike must be at least")]
    fn spike_below_steady_rejected() {
        InductiveLoad::new(500.0, 100.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "time constant must be positive")]
    fn zero_tau_rejected() {
        InductiveLoad::new(100.0, 200.0, 0.0);
    }
}
