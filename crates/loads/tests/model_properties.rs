//! Property tests over load-model invariants.

use loads::{
    Appliance, Catalogue, CompositeLoad, CyclicalLoad, InductiveLoad, LoadModel, NonLinearLoad,
    Phase, ResistiveLoad,
};
use proptest::prelude::*;

proptest! {
    /// Every model is non-negative and finite over its domain, and zero
    /// before switch-on.
    #[test]
    fn models_physical(
        watts in 1.0f64..6_000.0,
        spike_mul in 1.0f64..5.0,
        tau in 0.5f64..30.0,
        t in -100.0f64..20_000.0,
    ) {
        let models: Vec<Box<dyn LoadModel>> = vec![
            Box::new(ResistiveLoad::new(watts)),
            Box::new(InductiveLoad::new(watts, watts * spike_mul, tau)),
            Box::new(CyclicalLoad::new(
                InductiveLoad::new(watts, watts * spike_mul, tau),
                1_000.0,
                0.5,
                0.0,
            )),
            Box::new(NonLinearLoad::new(watts, watts * 0.3)),
            Box::new(CompositeLoad::new(vec![Phase::new(
                600.0,
                Box::new(ResistiveLoad::new(watts)),
            )])),
        ];
        for m in &models {
            let p = m.power_at(t);
            prop_assert!(p.is_finite());
            prop_assert!(p >= 0.0, "negative power {p} at {t}");
            if t < 0.0 {
                prop_assert_eq!(p, 0.0);
            }
            prop_assert!(m.nominal_watts() >= 0.0);
        }
    }

    /// average_power over [a, b) is bounded by the extremes of power_at on
    /// a fine grid of the interval.
    #[test]
    fn average_bounded_by_extremes(
        watts in 10.0f64..4_000.0,
        from in 0.0f64..3_000.0,
        span in 1.0f64..600.0,
    ) {
        let m = InductiveLoad::new(watts, watts * 3.0, 5.0);
        let avg = m.average_power(from, from + span);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let steps = 200;
        for i in 0..=steps {
            let p = m.power_at(from + span * i as f64 / steps as f64);
            lo = lo.min(p);
            hi = hi.max(p);
        }
        prop_assert!(avg >= lo - 1e-6 && avg <= hi + 1e-6, "avg {avg} outside [{lo}, {hi}]");
    }
}

#[test]
fn catalogue_signatures_consistent_with_models() {
    // Non-property sanity over the whole standard catalogue: the signature
    // step is achievable by the model within its first minute.
    for a in Catalogue::standard().iter() {
        let sig = a.signature();
        let first_minute = a.model().average_power(0.0, 60.0);
        if matches!(
            a.model().kind(),
            loads::LoadKind::Composite | loads::LoadKind::NonLinear
        ) {
            // Composites are characterized by their dominant phase and
            // non-linear loads legitimately swing above their base draw.
            continue;
        }
        assert!(
            first_minute <= sig.on_delta_watts + sig.spike_excess_watts + 1.0,
            "{}: first minute {first_minute} vs signature {:?}",
            a.name(),
            sig
        );
    }
    let _ = Appliance::toaster();
}
