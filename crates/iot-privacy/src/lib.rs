//! The unified facade of the *Private Memoirs of IoT Devices* suite.
//!
//! This crate re-exports every subsystem of the reproduction behind one
//! dependency, and adds the [`scenario`] pipeline used by the examples and
//! the experiment harness, plus the [`fleet`] engine that runs many
//! scenarios concurrently with per-home seed derivation:
//!
//! | module | contents |
//! |---|---|
//! | [`timeseries`] | power traces, labels, windowed statistics |
//! | [`loads`] | appliance load models and the standard catalogue |
//! | [`homesim`] | occupant/home/meter simulation |
//! | [`niom`] | occupancy-detection attacks |
//! | [`nilm`] | PowerPlay and FHMM disaggregation attacks |
//! | [`solar`] | solar simulation, SunSpot/Weatherman/SunDance |
//! | [`defense`] | CHPr, battery levelling, obfuscation, privacy knob |
//! | [`privatemeter`] | verifiable billing and differential privacy |
//! | [`netsim`] | IoT traffic, fingerprinting, the smart gateway |
//! | [`stream`] | incremental, batch-equivalent chunked inference |
//! | [`obs`] | spans, counters, deterministic JSON metrics reports |
//!
//! Two downstream crates sit *above* this facade and are therefore not
//! re-exported here: `bench` (the experiment library behind the
//! per-figure binaries, `bench::experiments`) and `conformance` (the
//! paper-claims harness and its `check_claims` binary; see
//! `docs/CLAIMS.md`).
//!
//! # Examples
//!
//! ```
//! use iot_privacy::scenario::EnergyScenario;
//!
//! // Simulate a home, attack it, defend it, attack again.
//! let report = EnergyScenario::new(7).days(3).run();
//! assert!(report.undefended.mcc > report.defended.mcc);
//! ```
//!
//! Every pipeline stage is instrumented with the [`obs`] layer (disabled
//! by default; see `docs/OBSERVABILITY.md`):
//!
//! ```
//! use iot_privacy::{obs, scenario::EnergyScenario};
//!
//! obs::enable();
//! obs::reset();
//! let _report = EnergyScenario::new(7).days(1).run();
//! let metrics = obs::snapshot();
//! assert!(metrics.timing("scenario.simulate").is_some());
//! assert!(metrics.counter("homesim.simulate.homes") >= Some(1));
//! obs::disable();
//! ```

#![warn(missing_docs)]

pub use defense;
pub use homesim;
pub use loads;
pub use netsim;
pub use nilm;
pub use niom;
pub use obs;
pub use privatemeter;
pub use solar;
pub use stream;
pub use timeseries;

pub mod fleet;
pub mod scenario;
pub mod streaming;

pub use fleet::{
    run_fleet, run_fleet_decode, run_fleet_serial, run_fleet_streaming, run_fleet_streaming_serial,
    run_fleet_supervised, run_fleet_supervised_serial, run_fleet_supervised_with,
    run_fleet_supervised_with_serial, FleetError, FleetResult, FleetSummary, HomeAttempt,
    QuarantinedHome, StatSummary, SupervisedFleetResult, SupervisorConfig,
};
pub use scenario::{AttackScore, EnergyScenario, ScenarioReport};
pub use streaming::StreamingScenario;
