//! End-to-end attack/defense scenarios.
//!
//! A scenario wires the whole pipeline together the way the paper's
//! evaluations do: simulate a home → run the occupancy attack on the raw
//! meter → apply a defense → run the attack again → report both sides plus
//! the defense's cost.

use defense::{Chpr, Defense, DefenseCost};
use homesim::{Home, HomeConfig, Persona};
use niom::{OccupancyDetector, ThresholdDetector};
use serde::{Deserialize, Serialize};
use timeseries::rng::{derive_seed, seeded_rng};

/// One attack run's score against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackScore {
    /// Detection accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Matthews Correlation Coefficient in `[-1, 1]`.
    pub mcc: f64,
}

/// The outcome of a full scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Attack performance on the raw meter.
    pub undefended: AttackScore,
    /// Attack performance after the defense.
    pub defended: AttackScore,
    /// What the defense cost.
    pub cost: DefenseCost,
}

/// A configurable home-energy attack/defense scenario.
///
/// Defaults: a 7-day worker household, the NIOM threshold attack, and the
/// CHPr defense — i.e. the paper's Figure 6 setup.
pub struct EnergyScenario {
    seed: u64,
    days: u64,
    persona: Persona,
    attack: Box<dyn OccupancyDetector>,
    defense: Box<dyn Defense>,
}

impl EnergyScenario {
    /// Creates the default scenario with a reproducibility seed.
    pub fn new(seed: u64) -> Self {
        EnergyScenario {
            seed,
            days: 7,
            persona: Persona::Worker,
            attack: Box::new(ThresholdDetector::default()),
            defense: Box::new(Chpr::default()),
        }
    }

    /// Sets the horizon in days.
    ///
    /// # Panics
    ///
    /// Panics if `days` is zero.
    pub fn days(mut self, days: u64) -> Self {
        assert!(days > 0, "need at least one day");
        self.days = days;
        self
    }

    /// Sets the household persona.
    pub fn persona(mut self, persona: Persona) -> Self {
        self.persona = persona;
        self
    }

    /// Swaps the occupancy attack.
    pub fn attack(mut self, attack: Box<dyn OccupancyDetector>) -> Self {
        self.attack = attack;
        self
    }

    /// Swaps the defense.
    pub fn defense(mut self, defense: Box<dyn Defense>) -> Self {
        self.defense = defense;
        self
    }

    /// Runs the scenario.
    ///
    /// When the [`obs`] layer is enabled, each pipeline stage
    /// records its own span: `scenario.simulate`,
    /// `scenario.attack_undefended`, `scenario.defend`, and
    /// `scenario.attack_defended` — the per-stage breakdown the
    /// `fleet_scale` experiment rolls up.
    pub fn run(&self) -> ScenarioReport {
        let home = obs::time("scenario.simulate", || {
            Home::simulate(
                &HomeConfig::new(self.seed)
                    .days(self.days)
                    .persona(self.persona),
            )
        });
        let score = |trace: &timeseries::PowerTrace| -> AttackScore {
            let inferred = self.attack.detect(trace);
            let c = home
                .occupancy
                .confusion(&inferred)
                .expect("attack output is aligned by contract");
            AttackScore {
                accuracy: c.accuracy(),
                mcc: c.mcc(),
            }
        };
        let undefended = obs::time("scenario.attack_undefended", || score(&home.meter));
        let mut rng = seeded_rng(derive_seed(self.seed, "defense"));
        let defended_out = obs::time("scenario.defend", || {
            self.defense.apply(&home.meter, &mut rng)
        });
        let defended = obs::time("scenario.attack_defended", || score(&defended_out.trace));
        ScenarioReport {
            undefended,
            defended,
            cost: defended_out.cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defense::NoiseInjector;
    use niom::HmmDetector;

    #[test]
    fn default_scenario_shows_defense_working() {
        let report = EnergyScenario::new(1).days(3).run();
        assert!(
            report.undefended.mcc > 0.3,
            "attack should work: {report:?}"
        );
        assert!(
            report.defended.mcc < report.undefended.mcc,
            "defense should reduce MCC: {report:?}"
        );
    }

    #[test]
    fn swapping_attack_and_defense() {
        let report = EnergyScenario::new(2)
            .days(2)
            .persona(Persona::Homebody)
            .attack(Box::new(HmmDetector::default()))
            .defense(Box::new(NoiseInjector::new(50.0)))
            .run();
        // Noise injection barely helps against NIOM — the paper's point
        // that naive obfuscation is weak.
        assert!(report.defended.accuracy > 0.3);
    }

    #[test]
    fn deterministic() {
        let a = EnergyScenario::new(3).days(2).run();
        let b = EnergyScenario::new(3).days(2).run();
        assert_eq!(a, b);
    }

    #[test]
    fn report_serializes() {
        let report = EnergyScenario::new(4).days(2).run();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("undefended"));
    }
}
