//! Chunked (streaming) execution of the standard scenario.
//!
//! [`StreamingScenario`] runs the same simulate → attack → defend →
//! attack pipeline as [`EnergyScenario`](crate::scenario::EnergyScenario),
//! but pushes the meter through the `stream` crate's incremental layer in
//! bounded chunks instead of handing whole traces to the batch entry
//! points — the shape of a deployment where the gateway forwards readings
//! as they arrive. The contract is *batch equivalence*: for any chunk
//! length, the report is byte-identical to the batch scenario with the
//! same seed (see `docs/STREAMING.md` and `tests/stream_equivalence.rs`).

use crate::scenario::{AttackScore, ScenarioReport};
use defense::Chpr;
use homesim::{Home, HomeConfig, Persona};
use niom::ThresholdDetector;
use stream::{dense_samples, feed_chunked, ChprStream, StreamSpec, StreamState, ThresholdStream};
use timeseries::rng::derive_seed;
use timeseries::PowerTrace;

/// The default scenario pipeline, executed through chunked ingestion.
///
/// Defaults mirror [`EnergyScenario::new`]: a 7-day worker household, the
/// NIOM threshold attack, the CHPr defense — plus a one-day (1440-sample)
/// chunk length.
///
/// [`EnergyScenario::new`]: crate::scenario::EnergyScenario::new
pub struct StreamingScenario {
    seed: u64,
    days: u64,
    persona: Persona,
    chunk_len: usize,
    attack: ThresholdDetector,
    defense: Chpr,
}

impl StreamingScenario {
    /// Creates the default streaming scenario with a reproducibility seed.
    pub fn new(seed: u64) -> Self {
        StreamingScenario {
            seed,
            days: 7,
            persona: Persona::Worker,
            chunk_len: 1_440,
            attack: ThresholdDetector::default(),
            defense: Chpr::default(),
        }
    }

    /// Sets the horizon in days.
    ///
    /// # Panics
    ///
    /// Panics if `days` is zero.
    pub fn days(mut self, days: u64) -> Self {
        assert!(days > 0, "need at least one day");
        self.days = days;
        self
    }

    /// Sets the household persona.
    pub fn persona(mut self, persona: Persona) -> Self {
        self.persona = persona;
        self
    }

    /// Sets how many samples each fed chunk carries.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn chunk_len(mut self, chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunks must be non-empty");
        self.chunk_len = chunk_len;
        self
    }

    /// Swaps the threshold attack's configuration.
    pub fn attack(mut self, attack: ThresholdDetector) -> Self {
        self.attack = attack;
        self
    }

    /// Swaps the CHPr defense's configuration.
    pub fn defense(mut self, defense: Chpr) -> Self {
        self.defense = defense;
        self
    }

    /// Runs the scenario through the streaming layer.
    ///
    /// Records the same `scenario.*` stage spans as the batch scenario;
    /// the streams underneath additionally record the `stream.chunks` /
    /// `stream.samples` counters and the `stream.finalize` timing.
    pub fn run(&self) -> ScenarioReport {
        let home = obs::time("scenario.simulate", || {
            Home::simulate(
                &HomeConfig::new(self.seed)
                    .days(self.days)
                    .persona(self.persona),
            )
        });
        self.run_on(&home)
    }

    /// Runs the attack → defend → attack pipeline on an already-simulated
    /// home — the deployment shape where readings arrive from outside and
    /// no world needs rebuilding. [`run`](Self::run) is `simulate` +
    /// `run_on`; the report is identical when `home` was simulated with
    /// this scenario's seed/days/persona.
    pub fn run_on(&self, home: &Home) -> ScenarioReport {
        let score = |trace: &PowerTrace| -> AttackScore {
            let mut s = ThresholdStream::new(self.attack.clone(), StreamSpec::of_trace(trace));
            feed_chunked(&mut s, &dense_samples(trace.samples()), self.chunk_len);
            let c = home
                .occupancy
                .confusion(&s.finalize())
                .expect("attack output is aligned by contract");
            AttackScore {
                accuracy: c.accuracy(),
                mcc: c.mcc(),
            }
        };
        let undefended = obs::time("scenario.attack_undefended", || score(&home.meter));
        let defended_out = obs::time("scenario.defend", || {
            let mut d = ChprStream::new(
                self.defense,
                derive_seed(self.seed, "defense"),
                StreamSpec::of_trace(&home.meter),
            );
            feed_chunked(&mut d, &dense_samples(home.meter.samples()), self.chunk_len);
            d.finalize()
        });
        let defended = obs::time("scenario.attack_defended", || score(&defended_out.trace));
        ScenarioReport {
            undefended,
            defended,
            cost: defended_out.cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EnergyScenario;

    #[test]
    fn streaming_scenario_matches_batch_scenario() {
        let batch = EnergyScenario::new(11).days(3).run();
        for chunk_len in [1, 97, 1_440, usize::MAX / 2] {
            let streamed = StreamingScenario::new(11)
                .days(3)
                .chunk_len(chunk_len)
                .run();
            assert_eq!(streamed, batch, "chunk_len {chunk_len}");
        }
    }

    #[test]
    fn builders_carry_through() {
        let batch = EnergyScenario::new(5)
            .days(2)
            .persona(Persona::Homebody)
            .run();
        let streamed = StreamingScenario::new(5)
            .days(2)
            .persona(Persona::Homebody)
            .chunk_len(333)
            .run();
        assert_eq!(streamed, batch);
    }
}
