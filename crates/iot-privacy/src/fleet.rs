//! Fleet-scale scenario execution.
//!
//! The paper evaluates attacks and defenses home-by-home; real questions
//! ("what does CHPr cost across a utility's service area?") need the same
//! pipeline over *many* independent homes. This module runs a fleet of
//! [`EnergyScenario`]s concurrently and aggregates their reports.
//!
//! # Determinism
//!
//! Every home gets its own seed derived from the fleet root seed via
//! `derive_seed(root, "home:<index>")`, so no RNG state is shared between
//! homes, and results are collected in home-index order. The parallel
//! schedule therefore cannot influence any value: [`run_fleet`] is
//! bit-identical to [`run_fleet_serial`] at any thread count (covered by a
//! regression test that compares serialized JSON byte-for-byte).

use crate::scenario::{EnergyScenario, ScenarioReport};
use serde::{Deserialize, Serialize};
use timeseries::rng::derive_seed;

/// Order statistics of one metric across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
}

impl StatSummary {
    /// Summarizes a non-empty set of values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> StatSummary {
        assert!(!values.is_empty(), "cannot summarize zero values");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        StatSummary {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: nearest_rank(&sorted, 0.50),
            p95: nearest_rank(&sorted, 0.95),
        }
    }
}

/// Nearest-rank quantile of an ascending-sorted slice.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregate statistics over every home's [`ScenarioReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSummary {
    /// Number of homes simulated.
    pub homes: usize,
    /// Attack accuracy on raw meters.
    pub undefended_accuracy: StatSummary,
    /// Attack MCC on raw meters.
    pub undefended_mcc: StatSummary,
    /// Attack accuracy after the defense.
    pub defended_accuracy: StatSummary,
    /// Attack MCC after the defense.
    pub defended_mcc: StatSummary,
    /// Defense cost: extra energy drawn, kWh.
    pub extra_energy_kwh: StatSummary,
    /// Defense cost: absolute billing error fraction.
    pub billing_error_frac: StatSummary,
}

impl FleetSummary {
    /// Summarizes a non-empty batch of reports.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    pub fn of(reports: &[ScenarioReport]) -> FleetSummary {
        assert!(!reports.is_empty(), "cannot summarize an empty fleet");
        let pick = |f: &dyn Fn(&ScenarioReport) -> f64| -> StatSummary {
            StatSummary::of(&reports.iter().map(f).collect::<Vec<_>>())
        };
        FleetSummary {
            homes: reports.len(),
            undefended_accuracy: pick(&|r| r.undefended.accuracy),
            undefended_mcc: pick(&|r| r.undefended.mcc),
            defended_accuracy: pick(&|r| r.defended.accuracy),
            defended_mcc: pick(&|r| r.defended.mcc),
            extra_energy_kwh: pick(&|r| r.cost.extra_energy_kwh),
            billing_error_frac: pick(&|r| r.cost.billing_error_frac.abs()),
        }
    }
}

/// Every home's report plus the fleet-level summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetResult {
    /// Per-home reports, in home-index order.
    pub reports: Vec<ScenarioReport>,
    /// Aggregate statistics.
    pub summary: FleetSummary,
}

/// The derived seed for home `index` under `root`.
pub fn home_seed(root: u64, index: usize) -> u64 {
    derive_seed(root, &format!("home:{index}"))
}

/// Runs `homes` independent scenarios concurrently.
///
/// `build` receives each home's derived seed and constructs that home's
/// scenario; it runs on worker threads, so it must be `Sync` and should
/// not share mutable state.
///
/// When the [`obs`] layer is enabled, records the `fleet.run`
/// span, the per-home `fleet.home` timing distribution (whose snapshot
/// summary gives mean/p50/p95 seconds per home), and the `fleet.homes`
/// counter; each home additionally records its own `scenario.*` stage
/// spans. Observation never feeds back into results, so metrics-enabled
/// runs stay byte-identical to the serial reference.
///
/// # Panics
///
/// Panics if `homes` is zero.
///
/// # Examples
///
/// ```
/// use iot_privacy::scenario::EnergyScenario;
///
/// let fleet = iot_privacy::run_fleet(2, 7, |seed| EnergyScenario::new(seed).days(1));
/// assert_eq!(fleet.reports.len(), 2);
/// assert_eq!(fleet.summary.homes, 2);
/// // Same seeds, same order, one thread — identical result.
/// let serial = iot_privacy::run_fleet_serial(2, 7, |seed| EnergyScenario::new(seed).days(1));
/// assert_eq!(fleet, serial);
/// ```
pub fn run_fleet<F>(homes: usize, root_seed: u64, build: F) -> FleetResult
where
    F: Fn(u64) -> EnergyScenario + Sync,
{
    assert!(homes > 0, "fleet needs at least one home");
    let _span = obs::span("fleet.run");
    obs::counter_add("fleet.homes", homes as u64);
    let reports = rayon::parallel_map((0..homes).collect(), |i| {
        obs::time("fleet.home", || build(home_seed(root_seed, i)).run())
    });
    let summary = FleetSummary::of(&reports);
    FleetResult { reports, summary }
}

/// Reference serial implementation of [`run_fleet`]: same seeds, same
/// order, one thread. Exists so tests (and sceptics) can verify that the
/// parallel engine changes nothing but wall-clock time.
///
/// # Panics
///
/// Panics if `homes` is zero.
pub fn run_fleet_serial<F>(homes: usize, root_seed: u64, build: F) -> FleetResult
where
    F: Fn(u64) -> EnergyScenario,
{
    assert!(homes > 0, "fleet needs at least one home");
    // Instrumented identically to [`run_fleet`] so the deterministic
    // metric sections (counters/gauges) of the two engines also match.
    let _span = obs::span("fleet.run");
    obs::counter_add("fleet.homes", homes as u64);
    let reports: Vec<ScenarioReport> = (0..homes)
        .map(|i| obs::time("fleet.home", || build(home_seed(root_seed, i)).run()))
        .collect();
    let summary = FleetSummary::of(&reports);
    FleetResult { reports, summary }
}

/// Order-preserving parallel map over independent work items — the same
/// engine [`run_fleet`] uses, exposed for experiment binaries whose sweep
/// points are independent (each owns its RNG or needs none).
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    rayon::parallel_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = StatSummary::of(&[3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p95, 5.0);
        let one = StatSummary::of(&[7.5]);
        assert_eq!((one.mean, one.p50, one.p95), (7.5, 7.5, 7.5));
    }

    #[test]
    fn home_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> = (0..100).map(|i| home_seed(42, i)).collect();
        assert_eq!(seeds.len(), 100);
        assert_ne!(home_seed(1, 0), home_seed(2, 0));
    }

    #[test]
    fn fleet_matches_serial_reference() {
        let build = |seed: u64| EnergyScenario::new(seed).days(1);
        let parallel = run_fleet(6, 9, build);
        let serial = run_fleet_serial(6, 9, build);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn summary_covers_all_homes() {
        let result = run_fleet(4, 11, |seed| EnergyScenario::new(seed).days(1));
        assert_eq!(result.reports.len(), 4);
        assert_eq!(result.summary.homes, 4);
        // Accuracy is a rate; the summary must stay in range.
        assert!(result.summary.undefended_accuracy.mean >= 0.0);
        assert!(result.summary.undefended_accuracy.p95 <= 1.0);
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0u64..50).collect(), |i| i * 3);
        assert_eq!(out, (0u64..50).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one home")]
    fn zero_homes_rejected() {
        run_fleet(0, 1, EnergyScenario::new);
    }
}
