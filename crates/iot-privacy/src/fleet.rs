//! Fleet-scale scenario execution.
//!
//! The paper evaluates attacks and defenses home-by-home; real questions
//! ("what does CHPr cost across a utility's service area?") need the same
//! pipeline over *many* independent homes. This module runs a fleet of
//! [`EnergyScenario`]s concurrently and aggregates their reports.
//!
//! # Determinism
//!
//! Every home gets its own seed derived from the fleet root seed via
//! `derive_seed(root, "home:<index>")`, so no RNG state is shared between
//! homes, and results are collected in home-index order. The parallel
//! schedule therefore cannot influence any value: [`run_fleet`] is
//! bit-identical to [`run_fleet_serial`] at any thread count (covered by a
//! regression test that compares serialized JSON byte-for-byte).
//!
//! # Supervision
//!
//! At fleet scale a single pathological home (corrupt feed, degenerate
//! trace, a bug in one code path) must not abort the whole run.
//! [`run_fleet_supervised`] isolates each home behind
//! [`std::panic::catch_unwind`], retries a bounded number of times on a
//! reseeded RNG stream (`derive_seed(home_seed, "retry:<k>")`), and
//! quarantines homes that keep failing. The quarantine set depends only on
//! `(home index, attempt)` — never on threads or wall clock — so it too is
//! byte-identical across `RAYON_NUM_THREADS` settings; see
//! `docs/ROBUSTNESS.md`.

use crate::scenario::{EnergyScenario, ScenarioReport};
use crate::streaming::StreamingScenario;
use nilm::{DecodeArena, DeviceEstimate, Fhmm};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;
use timeseries::rng::derive_seed;
use timeseries::PowerTrace;

/// Errors from fleet execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// A fleet run was requested with zero homes.
    EmptyFleet,
    /// Every home in a supervised run was quarantined, so there is
    /// nothing to summarize.
    AllHomesQuarantined {
        /// How many homes were requested (and quarantined).
        homes: usize,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::EmptyFleet => write!(f, "fleet needs at least one home"),
            FleetError::AllHomesQuarantined { homes } => {
                write!(f, "all {homes} homes were quarantined")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// Order statistics of one metric across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
}

impl StatSummary {
    /// Summarizes a non-empty set of values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> StatSummary {
        assert!(!values.is_empty(), "cannot summarize zero values");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        StatSummary {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: nearest_rank(&sorted, 0.50),
            p95: nearest_rank(&sorted, 0.95),
        }
    }
}

/// Nearest-rank quantile of an ascending-sorted slice.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregate statistics over every home's [`ScenarioReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSummary {
    /// Number of homes simulated.
    pub homes: usize,
    /// Attack accuracy on raw meters.
    pub undefended_accuracy: StatSummary,
    /// Attack MCC on raw meters.
    pub undefended_mcc: StatSummary,
    /// Attack accuracy after the defense.
    pub defended_accuracy: StatSummary,
    /// Attack MCC after the defense.
    pub defended_mcc: StatSummary,
    /// Defense cost: extra energy drawn, kWh.
    pub extra_energy_kwh: StatSummary,
    /// Defense cost: absolute billing error fraction.
    pub billing_error_frac: StatSummary,
}

impl FleetSummary {
    /// Summarizes a non-empty batch of reports.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    pub fn of(reports: &[ScenarioReport]) -> FleetSummary {
        assert!(!reports.is_empty(), "cannot summarize an empty fleet");
        let pick = |f: &dyn Fn(&ScenarioReport) -> f64| -> StatSummary {
            StatSummary::of(&reports.iter().map(f).collect::<Vec<_>>())
        };
        FleetSummary {
            homes: reports.len(),
            undefended_accuracy: pick(&|r| r.undefended.accuracy),
            undefended_mcc: pick(&|r| r.undefended.mcc),
            defended_accuracy: pick(&|r| r.defended.accuracy),
            defended_mcc: pick(&|r| r.defended.mcc),
            extra_energy_kwh: pick(&|r| r.cost.extra_energy_kwh),
            billing_error_frac: pick(&|r| r.cost.billing_error_frac.abs()),
        }
    }
}

/// Every home's report plus the fleet-level summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetResult {
    /// Per-home reports, in home-index order.
    pub reports: Vec<ScenarioReport>,
    /// Aggregate statistics.
    pub summary: FleetSummary,
}

/// The derived seed for home `index` under `root`.
pub fn home_seed(root: u64, index: usize) -> u64 {
    derive_seed(root, &format!("home:{index}"))
}

/// Runs `homes` independent scenarios concurrently.
///
/// `build` receives each home's derived seed and constructs that home's
/// scenario; it runs on worker threads, so it must be `Sync` and should
/// not share mutable state.
///
/// When the [`obs`] layer is enabled, records the `fleet.run`
/// span, the per-home `fleet.home` timing distribution (whose snapshot
/// summary gives mean/p50/p95 seconds per home), and the `fleet.homes`
/// counter; each home additionally records its own `scenario.*` stage
/// spans. Observation never feeds back into results, so metrics-enabled
/// runs stay byte-identical to the serial reference.
///
/// # Errors
///
/// Returns [`FleetError::EmptyFleet`] if `homes` is zero.
///
/// # Examples
///
/// ```
/// use iot_privacy::scenario::EnergyScenario;
///
/// let fleet = iot_privacy::run_fleet(2, 7, |seed| EnergyScenario::new(seed).days(1)).unwrap();
/// assert_eq!(fleet.reports.len(), 2);
/// assert_eq!(fleet.summary.homes, 2);
/// // Same seeds, same order, one thread — identical result.
/// let serial =
///     iot_privacy::run_fleet_serial(2, 7, |seed| EnergyScenario::new(seed).days(1)).unwrap();
/// assert_eq!(fleet, serial);
/// ```
pub fn run_fleet<F>(homes: usize, root_seed: u64, build: F) -> Result<FleetResult, FleetError>
where
    F: Fn(u64) -> EnergyScenario + Sync,
{
    if homes == 0 {
        return Err(FleetError::EmptyFleet);
    }
    let _span = obs::span("fleet.run");
    obs::counter_add("fleet.homes", homes as u64);
    let reports = rayon::parallel_map((0..homes).collect(), |i| {
        obs::time("fleet.home", || build(home_seed(root_seed, i)).run())
    });
    let summary = FleetSummary::of(&reports);
    Ok(FleetResult { reports, summary })
}

/// Reference serial implementation of [`run_fleet`]: same seeds, same
/// order, one thread. Exists so tests (and sceptics) can verify that the
/// parallel engine changes nothing but wall-clock time.
///
/// # Errors
///
/// Returns [`FleetError::EmptyFleet`] if `homes` is zero.
pub fn run_fleet_serial<F>(
    homes: usize,
    root_seed: u64,
    build: F,
) -> Result<FleetResult, FleetError>
where
    F: Fn(u64) -> EnergyScenario,
{
    if homes == 0 {
        return Err(FleetError::EmptyFleet);
    }
    // Instrumented identically to [`run_fleet`] so the deterministic
    // metric sections (counters/gauges) of the two engines also match.
    let _span = obs::span("fleet.run");
    obs::counter_add("fleet.homes", homes as u64);
    let reports: Vec<ScenarioReport> = (0..homes)
        .map(|i| obs::time("fleet.home", || build(home_seed(root_seed, i)).run()))
        .collect();
    let summary = FleetSummary::of(&reports);
    Ok(FleetResult { reports, summary })
}

/// Supervisor tuning for [`run_fleet_supervised`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// Retries after a home's first failed attempt before it is
    /// quarantined (so each home runs at most `1 + max_retries` times).
    pub max_retries: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig { max_retries: 2 }
    }
}

/// One attempt at one home, handed to the supervised build closure.
///
/// `seed` already encodes the retry: attempt 0 gets the plain
/// [`home_seed`], attempt `k > 0` gets
/// `derive_seed(home_seed, "retry:<k>")`, so a retried home resamples its
/// randomness instead of deterministically re-hitting a seed-dependent
/// failure — while the whole schedule stays a pure function of
/// `(home, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeAttempt {
    /// Home index within the fleet, `0..homes`.
    pub home: usize,
    /// Attempt number, `0..=max_retries`.
    pub attempt: u32,
    /// The derived seed for this `(home, attempt)` pair.
    pub seed: u64,
}

/// A home the supervisor gave up on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedHome {
    /// Home index within the fleet.
    pub home: usize,
    /// Attempts made (always `1 + max_retries`).
    pub attempts: u32,
    /// The last attempt's panic message.
    pub last_error: String,
}

/// A supervised fleet run: surviving reports plus the quarantine ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupervisedFleetResult {
    /// Homes requested.
    pub homes: usize,
    /// Reports of surviving homes, in home-index order.
    pub reports: Vec<ScenarioReport>,
    /// Aggregate statistics over the surviving homes.
    pub summary: FleetSummary,
    /// Homes that exhausted their retries, in home-index order.
    pub quarantined: Vec<QuarantinedHome>,
    /// Total retry attempts across the fleet (excludes first attempts).
    pub retries: u64,
}

impl SupervisedFleetResult {
    /// Fraction of requested homes that ended quarantined.
    pub fn quarantine_fraction(&self) -> f64 {
        self.quarantined.len() as f64 / self.homes as f64
    }
}

thread_local! {
    /// `true` while this thread is inside a supervised home attempt —
    /// silences the default panic hook so expected, caught panics don't
    /// spam stderr at fleet scale.
    static IN_SUPERVISED_ATTEMPT: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that stays out of the way
/// everywhere except inside supervised attempts. Panics outside the
/// supervisor keep the previous hook's behaviour.
fn install_supervisor_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_SUPERVISED_ATTEMPT.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Renders a caught panic payload for the quarantine ledger.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The per-home supervision loop: run, catch, retry on a reseeded stream,
/// quarantine when retries are exhausted. Pure function of
/// `(home, root_seed, config, run_attempt)`. Generic over how an attempt
/// produces its report so the batch ([`run_fleet_supervised`]) and
/// streaming ([`run_fleet_streaming`]) engines share one loop.
fn supervise_home<F>(
    home: usize,
    root_seed: u64,
    config: SupervisorConfig,
    run_attempt: &F,
) -> (Result<ScenarioReport, QuarantinedHome>, u64)
where
    F: Fn(HomeAttempt) -> ScenarioReport,
{
    let base = home_seed(root_seed, home);
    let mut retries = 0u64;
    let mut last_error = String::new();
    for attempt in 0..=config.max_retries {
        let seed = if attempt == 0 {
            base
        } else {
            derive_seed(base, &format!("retry:{attempt}"))
        };
        let attempt_ctx = HomeAttempt {
            home,
            attempt,
            seed,
        };
        let outcome = IN_SUPERVISED_ATTEMPT.with(|flag| {
            flag.set(true);
            let r = catch_unwind(AssertUnwindSafe(|| run_attempt(attempt_ctx)));
            flag.set(false);
            r
        });
        match outcome {
            Ok(report) => return (Ok(report), retries),
            Err(payload) => {
                last_error = panic_message(payload);
                if attempt < config.max_retries {
                    retries += 1;
                }
            }
        }
    }
    (
        Err(QuarantinedHome {
            home,
            attempts: 1 + config.max_retries,
            last_error,
        }),
        retries,
    )
}

/// Runs `homes` scenarios concurrently with per-home panic isolation.
///
/// Like [`run_fleet`], but each home executes behind
/// [`std::panic::catch_unwind`]: a panicking home is retried up to
/// `config.max_retries` times on a reseeded RNG stream and then
/// quarantined, never aborting the remaining homes. The quarantine set is
/// deterministic — a pure function of `(homes, root_seed, config, build)`
/// — and is reported in home-index order, byte-identical across thread
/// counts.
///
/// When the [`obs`] layer is enabled, additionally records the
/// `fleet.retries` and `fleet.quarantined` counters.
///
/// # Errors
///
/// Returns [`FleetError::EmptyFleet`] if `homes` is zero, and
/// [`FleetError::AllHomesQuarantined`] if no home survived.
///
/// # Examples
///
/// ```
/// use iot_privacy::fleet::SupervisorConfig;
/// use iot_privacy::scenario::EnergyScenario;
///
/// // Home 1 always panics; the rest of the fleet completes.
/// let fleet = iot_privacy::run_fleet_supervised(
///     3,
///     7,
///     SupervisorConfig::default(),
///     |attempt| {
///         if attempt.home == 1 {
///             panic!("corrupt feed");
///         }
///         EnergyScenario::new(attempt.seed).days(1)
///     },
/// )
/// .unwrap();
/// assert_eq!(fleet.reports.len(), 2);
/// assert_eq!(fleet.quarantined.len(), 1);
/// assert_eq!(fleet.quarantined[0].home, 1);
/// assert_eq!(fleet.quarantined[0].last_error, "corrupt feed");
/// ```
pub fn run_fleet_supervised<F>(
    homes: usize,
    root_seed: u64,
    config: SupervisorConfig,
    build: F,
) -> Result<SupervisedFleetResult, FleetError>
where
    F: Fn(HomeAttempt) -> EnergyScenario + Sync,
{
    supervised_engine(homes, root_seed, config, |attempt| build(attempt).run())
}

/// The parallel supervised engine shared by the batch and streaming entry
/// points: `run_attempt` executes one `(home, attempt)` and may panic.
fn supervised_engine<F>(
    homes: usize,
    root_seed: u64,
    config: SupervisorConfig,
    run_attempt: F,
) -> Result<SupervisedFleetResult, FleetError>
where
    F: Fn(HomeAttempt) -> ScenarioReport + Sync,
{
    if homes == 0 {
        return Err(FleetError::EmptyFleet);
    }
    install_supervisor_panic_hook();
    let _span = obs::span("fleet.run");
    obs::counter_add("fleet.homes", homes as u64);
    let outcomes = rayon::parallel_map((0..homes).collect(), |i| {
        obs::time("fleet.home", || {
            supervise_home(i, root_seed, config, &run_attempt)
        })
    });
    assemble_supervised(homes, outcomes)
}

/// Reference serial implementation of [`run_fleet_supervised`]: same
/// seeds, same attempt schedule, one thread.
///
/// # Errors
///
/// Returns [`FleetError::EmptyFleet`] if `homes` is zero, and
/// [`FleetError::AllHomesQuarantined`] if no home survived.
pub fn run_fleet_supervised_serial<F>(
    homes: usize,
    root_seed: u64,
    config: SupervisorConfig,
    build: F,
) -> Result<SupervisedFleetResult, FleetError>
where
    F: Fn(HomeAttempt) -> EnergyScenario,
{
    supervised_engine_serial(homes, root_seed, config, |attempt| build(attempt).run())
}

/// Serial counterpart of [`supervised_engine`]: same seeds, same attempt
/// schedule, one thread.
fn supervised_engine_serial<F>(
    homes: usize,
    root_seed: u64,
    config: SupervisorConfig,
    run_attempt: F,
) -> Result<SupervisedFleetResult, FleetError>
where
    F: Fn(HomeAttempt) -> ScenarioReport,
{
    if homes == 0 {
        return Err(FleetError::EmptyFleet);
    }
    install_supervisor_panic_hook();
    let _span = obs::span("fleet.run");
    obs::counter_add("fleet.homes", homes as u64);
    let outcomes: Vec<_> = (0..homes)
        .map(|i| {
            obs::time("fleet.home", || {
                supervise_home(i, root_seed, config, &run_attempt)
            })
        })
        .collect();
    assemble_supervised(homes, outcomes)
}

/// Runs an arbitrary per-home attempt closure under the supervisor.
///
/// The generalization behind [`run_fleet_supervised`] and
/// [`run_fleet_streaming`]: `run_attempt` receives each `(home, attempt)`
/// context and produces that home's report however it likes — rebuild a
/// scenario, or admit pre-simulated readings through the streaming layer
/// (the shape the `stream_throughput` experiment times). Panic isolation,
/// the retry schedule, and the quarantine ledger are identical to the
/// scenario-building entry points.
///
/// # Errors
///
/// Returns [`FleetError::EmptyFleet`] if `homes` is zero, and
/// [`FleetError::AllHomesQuarantined`] if no home survived.
pub fn run_fleet_supervised_with<F>(
    homes: usize,
    root_seed: u64,
    config: SupervisorConfig,
    run_attempt: F,
) -> Result<SupervisedFleetResult, FleetError>
where
    F: Fn(HomeAttempt) -> ScenarioReport + Sync,
{
    supervised_engine(homes, root_seed, config, run_attempt)
}

/// Reference serial implementation of [`run_fleet_supervised_with`]: same
/// seeds, same attempt schedule, one thread.
///
/// # Errors
///
/// Returns [`FleetError::EmptyFleet`] if `homes` is zero, and
/// [`FleetError::AllHomesQuarantined`] if no home survived.
pub fn run_fleet_supervised_with_serial<F>(
    homes: usize,
    root_seed: u64,
    config: SupervisorConfig,
    run_attempt: F,
) -> Result<SupervisedFleetResult, FleetError>
where
    F: Fn(HomeAttempt) -> ScenarioReport,
{
    supervised_engine_serial(homes, root_seed, config, run_attempt)
}

/// Disaggregates a fleet of meters through the batched FHMM decode
/// kernel, `batch` homes per shard.
///
/// Shards are decoded concurrently with [`par_map`]; each shard reuses one
/// [`DecodeArena`] across its lanes, so scratch allocation is per-shard,
/// not per-home. Estimates come back in meter order. Because the batched
/// kernel is byte-identical to the single-home decoder (see
/// `docs/KERNELS.md`), the result does not depend on `batch`, the shard
/// schedule, or the thread count — only wall-clock time does.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn run_fleet_decode(
    fhmm: &Fhmm,
    meters: &[&PowerTrace],
    batch: usize,
) -> Vec<Vec<DeviceEstimate>> {
    assert!(batch > 0, "batch must be positive");
    let _span = obs::span("fleet.decode");
    obs::counter_add("fleet.homes", meters.len() as u64);
    let shards: Vec<Vec<&PowerTrace>> = meters.chunks(batch).map(<[_]>::to_vec).collect();
    let out = par_map(shards, |shard| {
        let mut arena = DecodeArena::new();
        fhmm.disaggregate_batch(&shard, &mut arena)
    })
    .into_iter()
    .flatten()
    .collect();
    // Parallel shards race on the `decode.batch_size` gauge (the ragged
    // last shard may or may not write last); gauges live in the
    // deterministic metrics section, so re-pin it to the configured
    // shard size after the engine drains.
    if !meters.is_empty() {
        obs::gauge_set("decode.batch_size", batch.min(meters.len()) as f64);
    }
    out
}

/// Runs `homes` [`StreamingScenario`]s concurrently under the supervisor.
///
/// The streaming analogue of [`run_fleet_supervised`]: each home's meter
/// flows through the `stream` crate's chunked ingestion layer instead of
/// the batch entry points, behind the same panic isolation, retry
/// schedule, and quarantine ledger. Because every streaming pipeline is
/// batch-equivalent, the result is byte-identical to
/// [`run_fleet_supervised`] over the matching batch scenarios — the
/// `stream_throughput` experiment and `tests/stream_equivalence.rs` both
/// assert exactly that.
///
/// When the [`obs`] layer is enabled, the per-home streams additionally
/// record the `stream.chunks` / `stream.samples` counters and the
/// `stream.finalize` timing under the usual `fleet.*` spans.
///
/// # Errors
///
/// Returns [`FleetError::EmptyFleet`] if `homes` is zero, and
/// [`FleetError::AllHomesQuarantined`] if no home survived.
///
/// # Examples
///
/// ```
/// use iot_privacy::fleet::SupervisorConfig;
/// use iot_privacy::streaming::StreamingScenario;
///
/// let fleet = iot_privacy::run_fleet_streaming(
///     2,
///     7,
///     SupervisorConfig::default(),
///     |attempt| StreamingScenario::new(attempt.seed).days(1).chunk_len(60),
/// )
/// .unwrap();
/// assert_eq!(fleet.reports.len(), 2);
/// ```
pub fn run_fleet_streaming<F>(
    homes: usize,
    root_seed: u64,
    config: SupervisorConfig,
    build: F,
) -> Result<SupervisedFleetResult, FleetError>
where
    F: Fn(HomeAttempt) -> StreamingScenario + Sync,
{
    supervised_engine(homes, root_seed, config, |attempt| build(attempt).run())
}

/// Reference serial implementation of [`run_fleet_streaming`]: same
/// seeds, same attempt schedule, one thread.
///
/// # Errors
///
/// Returns [`FleetError::EmptyFleet`] if `homes` is zero, and
/// [`FleetError::AllHomesQuarantined`] if no home survived.
pub fn run_fleet_streaming_serial<F>(
    homes: usize,
    root_seed: u64,
    config: SupervisorConfig,
    build: F,
) -> Result<SupervisedFleetResult, FleetError>
where
    F: Fn(HomeAttempt) -> StreamingScenario,
{
    supervised_engine_serial(homes, root_seed, config, |attempt| build(attempt).run())
}

/// Folds per-home outcomes (already in home-index order) into the final
/// result; shared by the parallel and serial supervised engines.
fn assemble_supervised(
    homes: usize,
    outcomes: Vec<(Result<ScenarioReport, QuarantinedHome>, u64)>,
) -> Result<SupervisedFleetResult, FleetError> {
    let mut reports = Vec::with_capacity(homes);
    let mut quarantined = Vec::new();
    let mut retries = 0u64;
    for (outcome, home_retries) in outcomes {
        retries += home_retries;
        match outcome {
            Ok(report) => reports.push(report),
            Err(q) => quarantined.push(q),
        }
    }
    obs::counter_add("fleet.retries", retries);
    obs::counter_add("fleet.quarantined", quarantined.len() as u64);
    if reports.is_empty() {
        return Err(FleetError::AllHomesQuarantined { homes });
    }
    let summary = FleetSummary::of(&reports);
    Ok(SupervisedFleetResult {
        homes,
        reports,
        summary,
        quarantined,
        retries,
    })
}

/// Order-preserving parallel map over independent work items — the same
/// engine [`run_fleet`] uses, exposed for experiment binaries whose sweep
/// points are independent (each owns its RNG or needs none).
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    rayon::parallel_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = StatSummary::of(&[3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p95, 5.0);
        let one = StatSummary::of(&[7.5]);
        assert_eq!((one.mean, one.p50, one.p95), (7.5, 7.5, 7.5));
    }

    #[test]
    fn home_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> = (0..100).map(|i| home_seed(42, i)).collect();
        assert_eq!(seeds.len(), 100);
        assert_ne!(home_seed(1, 0), home_seed(2, 0));
    }

    #[test]
    fn fleet_matches_serial_reference() {
        let build = |seed: u64| EnergyScenario::new(seed).days(1);
        let parallel = run_fleet(6, 9, build).unwrap();
        let serial = run_fleet_serial(6, 9, build).unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn summary_covers_all_homes() {
        let result = run_fleet(4, 11, |seed| EnergyScenario::new(seed).days(1)).unwrap();
        assert_eq!(result.reports.len(), 4);
        assert_eq!(result.summary.homes, 4);
        // Accuracy is a rate; the summary must stay in range.
        assert!(result.summary.undefended_accuracy.mean >= 0.0);
        assert!(result.summary.undefended_accuracy.p95 <= 1.0);
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0u64..50).collect(), |i| i * 3);
        assert_eq!(out, (0u64..50).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_homes_rejected_with_typed_error() {
        assert_eq!(
            run_fleet(0, 1, EnergyScenario::new).unwrap_err(),
            FleetError::EmptyFleet
        );
        assert_eq!(
            run_fleet_serial(0, 1, EnergyScenario::new).unwrap_err(),
            FleetError::EmptyFleet
        );
        let cfg = SupervisorConfig::default();
        assert_eq!(
            run_fleet_supervised(0, 1, cfg, |a| EnergyScenario::new(a.seed)).unwrap_err(),
            FleetError::EmptyFleet
        );
        assert_eq!(
            FleetError::EmptyFleet.to_string(),
            "fleet needs at least one home"
        );
    }

    /// A build closure where homes 2 and 5 panic on every attempt
    /// (persistent faults) and home 3 panics only on its first attempt
    /// (transient fault — the reseeded retry clears it).
    fn flaky_build(attempt: HomeAttempt) -> EnergyScenario {
        if attempt.home == 2 || attempt.home == 5 {
            panic!("persistent fault in home {}", attempt.home);
        }
        if attempt.home == 3 && attempt.attempt == 0 {
            panic!("transient fault");
        }
        EnergyScenario::new(attempt.seed).days(1)
    }

    #[test]
    fn supervisor_quarantines_persistent_and_retries_transient() {
        let cfg = SupervisorConfig::default();
        let result = run_fleet_supervised(8, 13, cfg, flaky_build).unwrap();
        assert_eq!(result.homes, 8);
        assert_eq!(result.reports.len(), 6);
        assert_eq!(result.summary.homes, 6);
        let quarantined: Vec<usize> = result.quarantined.iter().map(|q| q.home).collect();
        assert_eq!(quarantined, vec![2, 5]);
        for q in &result.quarantined {
            assert_eq!(q.attempts, 1 + cfg.max_retries);
            assert!(q.last_error.contains("persistent fault"));
        }
        // Two persistent homes burn max_retries each; the transient home
        // burns one.
        assert_eq!(result.retries, 2 * cfg.max_retries as u64 + 1);
        assert!((result.quarantine_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn supervised_matches_serial_reference() {
        let cfg = SupervisorConfig::default();
        let parallel = run_fleet_supervised(8, 13, cfg, flaky_build).unwrap();
        let serial = run_fleet_supervised_serial(8, 13, cfg, flaky_build).unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn retry_reseeds_the_home() {
        // A retried home must see a different seed on each attempt, and a
        // clean home must see exactly the plain home seed.
        let cfg = SupervisorConfig { max_retries: 2 };
        let seen = std::sync::Mutex::new(Vec::new());
        let _ = run_fleet_supervised_serial(1, 17, cfg, |attempt| {
            seen.lock().unwrap().push(attempt.seed);
            if attempt.attempt < 2 {
                panic!("retry me");
            }
            EnergyScenario::new(attempt.seed).days(1)
        })
        .unwrap();
        let seeds = seen.into_inner().unwrap();
        assert_eq!(seeds.len(), 3);
        assert_eq!(seeds[0], home_seed(17, 0));
        assert_ne!(seeds[1], seeds[0]);
        assert_ne!(seeds[2], seeds[1]);
        assert_ne!(seeds[2], seeds[0]);
    }

    #[test]
    fn all_homes_quarantined_is_a_typed_error() {
        let cfg = SupervisorConfig { max_retries: 0 };
        let err = run_fleet_supervised(3, 19, cfg, |_| -> EnergyScenario {
            panic!("everything is broken");
        })
        .unwrap_err();
        assert_eq!(err, FleetError::AllHomesQuarantined { homes: 3 });
        assert_eq!(err.to_string(), "all 3 homes were quarantined");
    }

    #[test]
    fn streaming_fleet_matches_batch_fleet() {
        let cfg = SupervisorConfig::default();
        let batch =
            run_fleet_supervised(4, 29, cfg, |a| EnergyScenario::new(a.seed).days(2)).unwrap();
        for chunk_len in [60, 1_440] {
            let streamed = run_fleet_streaming(4, 29, cfg, |a| {
                StreamingScenario::new(a.seed).days(2).chunk_len(chunk_len)
            })
            .unwrap();
            assert_eq!(streamed, batch, "chunk_len {chunk_len}");
        }
        let serial = run_fleet_streaming_serial(4, 29, cfg, |a| {
            StreamingScenario::new(a.seed).days(2).chunk_len(60)
        })
        .unwrap();
        assert_eq!(serial, batch);
    }

    #[test]
    fn supervised_with_closure_matches_scenario_builder() {
        let cfg = SupervisorConfig::default();
        let built =
            run_fleet_supervised(4, 31, cfg, |a| EnergyScenario::new(a.seed).days(1)).unwrap();
        let with =
            run_fleet_supervised_with(4, 31, cfg, |a| EnergyScenario::new(a.seed).days(1).run())
                .unwrap();
        assert_eq!(with, built);
        let serial = run_fleet_supervised_with_serial(4, 31, cfg, |a| {
            EnergyScenario::new(a.seed).days(1).run()
        })
        .unwrap();
        assert_eq!(serial, built);
    }

    #[test]
    fn fleet_decode_is_batch_invariant() {
        use homesim::{Home, HomeConfig};
        let homes: Vec<Home> = (0..5)
            .map(|i| Home::simulate(&HomeConfig::new(home_seed(37, i)).days(1)))
            .collect();
        let meters: Vec<&timeseries::PowerTrace> = homes.iter().map(|h| &h.meter).collect();
        let models: Vec<nilm::DeviceHmm> = homes[0]
            .devices
            .iter()
            .take(3)
            .map(|d| nilm::train_device_hmm(d.name.clone(), &d.trace, 2))
            .collect();
        let fhmm = nilm::Fhmm::new(models);
        let reference: Vec<Vec<nilm::DeviceEstimate>> = meters
            .iter()
            .map(|m| nilm::with_thread_arena(|arena| fhmm.disaggregate_with(m, arena)))
            .collect();
        for batch in [1, 2, 5, 8] {
            assert_eq!(
                run_fleet_decode(&fhmm, &meters, batch),
                reference,
                "batch {batch}"
            );
        }
    }

    #[test]
    fn supervised_without_faults_matches_unsupervised() {
        let cfg = SupervisorConfig::default();
        let supervised =
            run_fleet_supervised(4, 23, cfg, |a| EnergyScenario::new(a.seed).days(1)).unwrap();
        let plain = run_fleet(4, 23, |seed| EnergyScenario::new(seed).days(1)).unwrap();
        assert!(supervised.quarantined.is_empty());
        assert_eq!(supervised.retries, 0);
        assert_eq!(supervised.reports, plain.reports);
        assert_eq!(supervised.summary, plain.summary);
    }
}
