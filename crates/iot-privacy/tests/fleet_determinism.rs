//! Regression tests for the fleet engine's determinism contract: the
//! parallel engine must serialize byte-for-byte identically to the serial
//! reference at every thread count.
//!
//! All thread-count cases live in ONE test function on purpose —
//! `RAYON_NUM_THREADS` is process-global, and the harness runs separate
//! `#[test]`s concurrently.

use iot_privacy::scenario::EnergyScenario;
use iot_privacy::{run_fleet, run_fleet_serial};

fn build(seed: u64) -> EnergyScenario {
    EnergyScenario::new(seed).days(1)
}

#[test]
fn parallel_fleet_is_byte_identical_to_serial_at_any_thread_count() {
    const HOMES: usize = 8;
    const ROOT: u64 = 123;

    let reference = serde_json::to_string(&run_fleet_serial(HOMES, ROOT, build))
        .expect("serial fleet serializes");
    assert!(reference.contains("undefended"), "sanity: report shape");

    for threads in ["1", "2", "3", "8", "32"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let parallel = serde_json::to_string(&run_fleet(HOMES, ROOT, build))
            .expect("parallel fleet serializes");
        assert_eq!(
            parallel, reference,
            "fleet JSON must be byte-identical to the serial reference at \
             RAYON_NUM_THREADS={threads}"
        );
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}
