//! Regression tests for the fleet engine's determinism contract: the
//! parallel engine must serialize byte-for-byte identically to the serial
//! reference at every thread count — including with the obs metrics layer
//! enabled, whose deterministic section (counters/gauges) must itself be
//! byte-identical between the serial and parallel engines.
//!
//! All thread-count cases live in ONE test function on purpose —
//! `RAYON_NUM_THREADS` is process-global, and the harness runs separate
//! `#[test]`s concurrently.

use homesim::{Home, HomeConfig};
use iot_privacy::scenario::EnergyScenario;
use iot_privacy::{
    obs, run_fleet, run_fleet_decode, run_fleet_serial, run_fleet_supervised,
    run_fleet_supervised_serial, HomeAttempt, SupervisorConfig,
};

fn build(seed: u64) -> EnergyScenario {
    EnergyScenario::new(seed).days(1)
}

/// A supervised build where ~10 % of homes (here 2 of 20) panic on every
/// attempt — the acceptance scenario for the quarantine contract.
fn faulty_build(attempt: HomeAttempt) -> EnergyScenario {
    if attempt.home % 10 == 3 {
        panic!("injected per-home panic in home {}", attempt.home);
    }
    EnergyScenario::new(attempt.seed).days(1)
}

#[test]
fn parallel_fleet_is_byte_identical_to_serial_at_any_thread_count() {
    const HOMES: usize = 8;
    const ROOT: u64 = 123;
    const SUPERVISED_HOMES: usize = 20;

    // Metrics observation must never feed back into results, so the whole
    // test runs with the obs layer ON (the stricter direction: a pass here
    // also covers metrics-off runs, which execute strictly less code).
    obs::enable();
    obs::reset();

    let reference = serde_json::to_string(&run_fleet_serial(HOMES, ROOT, build).unwrap())
        .expect("serial fleet serializes");
    assert!(reference.contains("undefended"), "sanity: report shape");
    let serial_metrics = obs::snapshot().deterministic_json();
    assert!(
        serial_metrics.contains("fleet.homes"),
        "sanity: metrics recorded"
    );

    // Batched-decode reference: the multi-home FHMM kernels must be
    // byte-identical to the per-meter serial decode regardless of thread
    // count or shard size (each shard decodes as one SoA batch, so this
    // also covers the ragged last shard: 6 homes at batch 32).
    let homes: Vec<Home> = (0..6)
        .map(|i| Home::simulate(&HomeConfig::new(9_000 + i as u64).days(1)))
        .collect();
    let meters: Vec<&timeseries::PowerTrace> = homes.iter().map(|h| &h.meter).collect();
    let models: Vec<nilm::DeviceHmm> = homes[0]
        .devices
        .iter()
        .take(3)
        .map(|d| nilm::train_device_hmm(d.name.clone(), &d.trace, 2))
        .collect();
    let fhmm = nilm::Fhmm::new(models);
    let decode_reference: Vec<Vec<nilm::DeviceEstimate>> = meters
        .iter()
        .map(|m| nilm::with_thread_arena(|arena| fhmm.disaggregate_with(m, arena)))
        .collect();

    // Supervised reference: 10 % injected per-home panics, quarantine
    // ledger included in the serialized bytes.
    let cfg = SupervisorConfig::default();
    let supervised_reference = serde_json::to_string(
        &run_fleet_supervised_serial(SUPERVISED_HOMES, ROOT, cfg, faulty_build).unwrap(),
    )
    .expect("supervised serial fleet serializes");
    assert!(
        supervised_reference.contains("quarantined"),
        "sanity: quarantine ledger serialized"
    );

    for threads in ["1", "2", "3", "8", "32"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        obs::reset();
        let parallel = serde_json::to_string(&run_fleet(HOMES, ROOT, build).unwrap())
            .expect("parallel fleet serializes");
        assert_eq!(
            parallel, reference,
            "fleet JSON must be byte-identical to the serial reference at \
             RAYON_NUM_THREADS={threads}"
        );
        // Counters merge commutatively, so the deterministic metric
        // section is also schedule-independent.
        assert_eq!(
            obs::snapshot().deterministic_json(),
            serial_metrics,
            "deterministic metrics section must match the serial reference \
             at RAYON_NUM_THREADS={threads}"
        );

        for batch in [1, 32] {
            assert_eq!(
                run_fleet_decode(&fhmm, &meters, batch),
                decode_reference,
                "batched decode must be byte-identical to the serial \
                 per-meter decode at RAYON_NUM_THREADS={threads}, batch={batch}"
            );
        }

        let supervised = run_fleet_supervised(SUPERVISED_HOMES, ROOT, cfg, faulty_build).unwrap();
        let quarantined: Vec<usize> = supervised.quarantined.iter().map(|q| q.home).collect();
        assert_eq!(
            quarantined,
            vec![3, 13],
            "quarantine set must be deterministic at RAYON_NUM_THREADS={threads}"
        );
        assert_eq!(
            serde_json::to_string(&supervised).expect("supervised fleet serializes"),
            supervised_reference,
            "supervised fleet JSON (reports + quarantine ledger) must be \
             byte-identical to the serial reference at RAYON_NUM_THREADS={threads}"
        );
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    obs::disable();
}
