//! The declarative claim registry.
//!
//! One [`Claim`] per quantitative statement the paper makes that the
//! suite reproduces. Each claim names the experiment whose JSON output it
//! reads, scalarizes that output with an extractor, and constrains the
//! scalar with a [`Band`]. Ordering claims ("the defended MCC sits well
//! below the undefended MCC") are expressed as a *margin* extractor — the
//! difference or ratio of the two quantities — constrained by
//! [`Band::AtLeast`]/[`Band::AtMost`], so every claim reduces to one
//! number against one band.

use serde_json::Value;

/// The tolerance band a claim's extracted metric must satisfy.
///
/// Measured values come from a stochastic simulation, so bands are
/// deliberately wide around the paper's reported numbers: the claim is
/// the *shape* (occupied homes draw visibly more power; CHPr collapses
/// the attack toward random), not the third decimal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Band {
    /// `lo <= x <= hi`.
    Absolute {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// `x >= lo` — used for ordering margins that must stay positive.
    AtLeast {
        /// Inclusive lower bound.
        lo: f64,
    },
    /// `x <= hi` — used for error ceilings and near-zero checks.
    AtMost {
        /// Inclusive upper bound.
        hi: f64,
    },
    /// `|x - expected| <= rel * |expected|` — a relative tolerance.
    Relative {
        /// The value the paper (or theory) predicts.
        expected: f64,
        /// Allowed relative deviation (0.5 = ±50%).
        rel: f64,
    },
}

impl Band {
    /// The band as an inclusive `[lo, hi]` interval (±∞ for open sides).
    pub fn bounds(&self) -> (f64, f64) {
        match *self {
            Band::Absolute { lo, hi } => (lo, hi),
            Band::AtLeast { lo } => (lo, f64::INFINITY),
            Band::AtMost { hi } => (f64::NEG_INFINITY, hi),
            Band::Relative { expected, rel } => {
                let slack = rel * expected.abs();
                (expected - slack, expected + slack)
            }
        }
    }

    /// Whether `x` lies inside the band.
    pub fn contains(&self, x: f64) -> bool {
        let (lo, hi) = self.bounds();
        x.is_finite() && x >= lo && x <= hi
    }

    /// Whether the interval `[lo, hi]` overlaps the band — the seed-sweep
    /// acceptance rule, applied to the mean ± CI interval.
    pub fn intersects(&self, lo: f64, hi: f64) -> bool {
        let (band_lo, band_hi) = self.bounds();
        lo.is_finite() && hi.is_finite() && lo <= band_hi && hi >= band_lo
    }

    /// A compact human-readable rendering, e.g. `[0.30, 0.70]` or `>= 0.2`.
    pub fn describe(&self) -> String {
        match *self {
            Band::Absolute { lo, hi } => format!("[{lo}, {hi}]"),
            Band::AtLeast { lo } => format!(">= {lo}"),
            Band::AtMost { hi } => format!("<= {hi}"),
            Band::Relative { expected, rel } => {
                format!("{expected} ±{:.0}%", rel * 100.0)
            }
        }
    }
}

/// One machine-checked claim from the paper.
pub struct Claim {
    /// Stable identifier, e.g. `fig6.chpr-mcc-near-random`. `--filter`
    /// matches against this.
    pub id: &'static str,
    /// The paper figure/section the claim comes from.
    pub anchor: &'static str,
    /// One-line statement of what the paper claims.
    pub title: &'static str,
    /// Name of the experiment (in [`bench::experiments::all`]) whose
    /// JSON output the extractor reads.
    pub experiment: &'static str,
    /// The tolerance band the extracted metric must satisfy.
    pub band: Band,
    /// Scalarizes the experiment's JSON output into the checked metric.
    pub extract: fn(&Value) -> Result<f64, String>,
    /// Whether the owning experiment is fast enough (in debug builds) to
    /// run in the `cargo test` single-seed tier.
    pub cheap: bool,
}

impl std::fmt::Debug for Claim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Claim")
            .field("id", &self.id)
            .field("anchor", &self.anchor)
            .field("experiment", &self.experiment)
            .field("band", &self.band)
            .finish()
    }
}

// ---- extractor helpers ------------------------------------------------

fn num(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing numeric field `{key}`"))
}

fn nested_num(v: &Value, outer: &str, inner: &str) -> Result<f64, String> {
    v.get(outer)
        .and_then(|o| o.get(inner))
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing numeric field `{outer}.{inner}`"))
}

fn flag(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_bool)
        .map(|b| if b { 1.0 } else { 0.0 })
        .ok_or_else(|| format!("missing boolean field `{key}`"))
}

fn items<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    v.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing array field `{key}`"))
}

/// Folds `f(item)` over an array field, keeping the minimum.
fn min_over(
    v: &Value,
    key: &str,
    f: impl Fn(&Value) -> Result<f64, String>,
) -> Result<f64, String> {
    let mut best = f64::INFINITY;
    for item in items(v, key)? {
        best = best.min(f(item)?);
    }
    if best.is_finite() {
        Ok(best)
    } else {
        Err(format!("array field `{key}` yielded no finite values"))
    }
}

/// Folds `f(item)` over an array field, keeping the maximum.
fn max_over(
    v: &Value,
    key: &str,
    f: impl Fn(&Value) -> Result<f64, String>,
) -> Result<f64, String> {
    let mut best = f64::NEG_INFINITY;
    for item in items(v, key)? {
        best = best.max(f(item)?);
    }
    if best.is_finite() {
        Ok(best)
    } else {
        Err(format!("array field `{key}` yielded no finite values"))
    }
}

/// The `mcc` at a given `effort` setting in the privacy-knob sweep.
fn knob_mcc_at(v: &Value, effort: f64) -> Result<f64, String> {
    for point in items(v, "points")? {
        if num(point, "effort")? == effort {
            return num(point, "mcc");
        }
    }
    Err(format!("no sweep point with effort == {effort}"))
}

/// The `mean_abs_err_kwh` at a given `epsilon` in the DP sweep.
fn dp_err_at(v: &Value, epsilon: f64) -> Result<f64, String> {
    for point in items(v, "points")? {
        if num(point, "epsilon")? == epsilon {
            return num(point, "mean_abs_err_kwh");
        }
    }
    Err(format!("no sweep point with epsilon == {epsilon}"))
}

// ---- per-claim extractors ---------------------------------------------
// Named functions (not closures) because `Claim::extract` is a plain fn
// pointer, which keeps the registry a flat `static` array.

fn fig1_power_gap(v: &Value) -> Result<f64, String> {
    min_over(v, "homes", |h| {
        Ok(num(h, "occupied_mean_w")? - num(h, "empty_mean_w")?)
    })
}

fn fig1_variance_gap(v: &Value) -> Result<f64, String> {
    min_over(v, "homes", |h| {
        Ok(num(h, "occupied_sigma_w")? - num(h, "empty_sigma_w")?)
    })
}

fn niom_accuracy_mean(v: &Value) -> Result<f64, String> {
    nested_num(v, "threshold_accuracy", "mean")
}

fn niom_accuracy_min(v: &Value) -> Result<f64, String> {
    nested_num(v, "threshold_accuracy", "min")
}

fn niom_accuracy_max(v: &Value) -> Result<f64, String> {
    nested_num(v, "threshold_accuracy", "max")
}

fn fig2_margin_vs_fhmm(v: &Value) -> Result<f64, String> {
    // Minimum (FHMM error − PowerPlay error) over devices where the FHMM
    // error is defined; the dryer never runs in the canonical week, so
    // its FHMM error is null and it is skipped.
    let mut best = f64::INFINITY;
    for item in items(v, "devices")? {
        let fhmm = item.get("fhmm_error");
        let Some(fhmm) = fhmm.and_then(Value::as_f64).filter(|e| e.is_finite()) else {
            continue;
        };
        best = best.min(fhmm - num(item, "powerplay_error")?);
    }
    if best.is_finite() {
        Ok(best)
    } else {
        Err("no device with a defined FHMM error".to_string())
    }
}

fn fig2_powerplay_mean_error(v: &Value) -> Result<f64, String> {
    // Mean normalized error across all five devices: PowerPlay recovers
    // most of each device's energy, where a trivial all-zero guess
    // scores 1.0 per device.
    let devices = items(v, "devices")?;
    let mut total = 0.0;
    for item in devices {
        total += num(item, "powerplay_error")?;
    }
    Ok(total / devices.len() as f64)
}

fn fig5_weatherman_max(v: &Value) -> Result<f64, String> {
    num(v, "weatherman_max_km")
}

fn fig5_sunspot_median(v: &Value) -> Result<f64, String> {
    num(v, "sunspot_median_km")
}

fn fig6_mcc_before(v: &Value) -> Result<f64, String> {
    num(v, "mcc_before")
}

fn fig6_mcc_after_abs(v: &Value) -> Result<f64, String> {
    Ok(num(v, "mcc_after")?.abs())
}

fn fig6_collapse_margin(v: &Value) -> Result<f64, String> {
    // Positive iff the defended MCC is below a third of the undefended
    // one (the paper reports a ~10× drop; we require at least 3×).
    Ok(num(v, "mcc_before")? / 3.0 - num(v, "mcc_after")?)
}

fn fig6_extra_energy(v: &Value) -> Result<f64, String> {
    num(v, "extra_energy_kwh")
}

fn sundance_rmse_ratio(v: &Value) -> Result<f64, String> {
    max_over(v, "sites", |s| {
        Ok(num(s, "rmse_sundance_w")? / num(s, "rmse_ignore_solar_w")?)
    })
}

fn sundance_energy_ratio_err(v: &Value) -> Result<f64, String> {
    max_over(v, "sites", |s| {
        Ok((num(s, "recovered_energy_ratio")? - 1.0).abs())
    })
}

fn meter_bills_verify(v: &Value) -> Result<f64, String> {
    Ok(flag(v, "honest_verifies")?.min(flag(v, "tou_verifies")?))
}

fn meter_cheat_detected(v: &Value) -> Result<f64, String> {
    flag(v, "cheat_detected")
}

fn vacation_hits(v: &Value) -> Result<f64, String> {
    num(v, "hits")
}

fn vacation_false_alarms(v: &Value) -> Result<f64, String> {
    num(v, "false_alarms")
}

fn sec4_fingerprint_accuracy(v: &Value) -> Result<f64, String> {
    num(v, "acc_naive_bayes")
}

fn sec4_shaped_accuracy(v: &Value) -> Result<f64, String> {
    num(v, "acc_shaped")
}

fn sec4_compromise_caught(v: &Value) -> Result<f64, String> {
    flag(v, "compromise_caught")
}

fn sec4_false_quarantines(v: &Value) -> Result<f64, String> {
    num(v, "false_quarantines")
}

fn knob_mcc_drop(v: &Value) -> Result<f64, String> {
    Ok(knob_mcc_at(v, 0.0)? - knob_mcc_at(v, 1.0)?)
}

fn dp_laplace_scaling(v: &Value) -> Result<f64, String> {
    Ok(dp_err_at(v, 0.1)? / dp_err_at(v, 1.0)?)
}

fn dp_error_monotone(v: &Value) -> Result<f64, String> {
    Ok(dp_err_at(v, 0.05)? - dp_err_at(v, 5.0)?)
}

fn chpr_best_cadence_margin(v: &Value) -> Result<f64, String> {
    let best = min_over(v, "points", |p| num(p, "attack_mcc"))?;
    Ok(num(v, "undefended_mcc")? - best)
}

/// A field from the degradation sweep point at a given fault intensity.
fn degradation_at(v: &Value, key: &str, intensity: f64, field: &str) -> Result<f64, String> {
    for point in items(v, key)? {
        if num(point, "intensity")? == intensity {
            return num(point, field);
        }
    }
    Err(format!("no `{key}` point with intensity == {intensity}"))
}

fn robust_attack_mcc_floor(v: &Value) -> Result<f64, String> {
    min_over(v, "points", |p| num(p, "undefended_mcc"))
}

fn robust_defense_mcc_ceiling(v: &Value) -> Result<f64, String> {
    max_over(v, "points", |p| Ok(num(p, "defended_mcc")?.abs()))
}

fn robust_heavy_gap_fraction(v: &Value) -> Result<f64, String> {
    degradation_at(v, "points", 0.50, "gap_fraction")
}

fn robust_fingerprint_floor(v: &Value) -> Result<f64, String> {
    min_over(v, "network_points", |p| num(p, "fingerprint_accuracy"))
}

fn robust_quarantined_homes(v: &Value) -> Result<f64, String> {
    nested_num(v, "fleet", "quarantined")
}

fn robust_fleet_survivors(v: &Value) -> Result<f64, String> {
    nested_num(v, "fleet", "survivors")
}

/// AND of boolean flags inside one section of `stream_equivalence`'s
/// output: 1.0 iff every named flag is `true`.
fn nested_flags_all(v: &Value, outer: &str, inners: &[&str]) -> Result<f64, String> {
    let section = v
        .get(outer)
        .ok_or_else(|| format!("missing object field `{outer}`"))?;
    let mut all_true = 1.0;
    for inner in inners {
        all_true = f64::min(all_true, flag(section, inner)?);
    }
    Ok(all_true)
}

fn stream_niom_equal(v: &Value) -> Result<f64, String> {
    nested_flags_all(v, "niom", &["threshold_equal", "hmm_equal"])
}

fn stream_nilm_equal(v: &Value) -> Result<f64, String> {
    nested_flags_all(v, "nilm", &["exact_equal", "icm_equal", "powerplay_equal"])
}

fn stream_defense_equal(v: &Value) -> Result<f64, String> {
    nested_flags_all(v, "defense", &["chpr_equal", "battery_equal"])
}

fn stream_netsim_equal(v: &Value) -> Result<f64, String> {
    nested_flags_all(v, "netsim", &["fingerprint_equal", "gateway_equal"])
}

fn stream_faults_equal(v: &Value) -> Result<f64, String> {
    nested_flags_all(v, "faults", &["hold_equal", "zero_equal", "chpr_equal"])
}

fn stream_scenario_equal(v: &Value) -> Result<f64, String> {
    nested_flags_all(v, "scenario", &["equal", "checkpoint_equal"])
}

fn stream_metric_delta_max(v: &Value) -> Result<f64, String> {
    num(v, "metric_delta_max")
}

fn stream_precision_safe(v: &Value) -> Result<f64, String> {
    nested_flags_all(v, "precision", &["f32_defaults_off", "f32_batch_equal"])
}

fn stream_f32_disagreement(v: &Value) -> Result<f64, String> {
    nested_num(v, "precision", "f32_state_disagreement_rate")
}

fn chunked_speedup_min(v: &Value) -> Result<f64, String> {
    min_over(v, "sizes", |size| {
        min_over(size, "chunks", |c| num(c, "vs_batch_speedup"))
    })
}

/// The `decode` section of `stream_throughput`'s output.
fn decode_section(v: &Value) -> Result<&Value, String> {
    v.get("decode")
        .ok_or_else(|| "missing object field `decode`".to_string())
}

fn decode_throughput_max(v: &Value) -> Result<f64, String> {
    max_over(decode_section(v)?, "kernels", |k| num(k, "samples_per_sec"))
}

fn decode_batched_speedup_max(v: &Value) -> Result<f64, String> {
    let mut best = f64::NEG_INFINITY;
    for kernel in items(decode_section(v)?, "kernels")? {
        if let Some(speedup) = kernel.get("vs_single_f64_speedup").and_then(Value::as_f64) {
            best = best.max(speedup);
        }
    }
    if best.is_finite() {
        Ok(best)
    } else {
        Err("no batched kernel entries with a speedup".to_string())
    }
}

fn decode_batched_identical(v: &Value) -> Result<f64, String> {
    let mut all_match = 1.0;
    let mut seen = 0;
    for kernel in items(decode_section(v)?, "kernels")? {
        if kernel.get("matches_single").is_some() {
            all_match = f64::min(all_match, flag(kernel, "matches_single")?);
            seen += 1;
        }
    }
    if seen == 0 {
        return Err("no batched kernel entries with `matches_single`".to_string());
    }
    Ok(all_match)
}

fn resident_section(v: &Value) -> Result<&Value, String> {
    v.get("resident")
        .ok_or_else(|| "missing `resident` section".to_string())
}

fn resident_evict_identical(v: &Value) -> Result<f64, String> {
    flag(resident_section(v)?, "evict_identical")
}

fn resident_cold_bytes_max(v: &Value) -> Result<f64, String> {
    max_over(resident_section(v)?, "sizes", |s| {
        num(s, "cold_bytes_per_home")
    })
}

fn resident_samples_per_sec_min(v: &Value) -> Result<f64, String> {
    min_over(resident_section(v)?, "sizes", |s| num(s, "samples_per_sec"))
}

fn resident_homes_per_sec_min(v: &Value) -> Result<f64, String> {
    min_over(resident_section(v)?, "sizes", |s| num(s, "homes_per_sec"))
}

fn recovery_section<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing `{key}` section"))
}

fn recovery_crash_identical(v: &Value) -> Result<f64, String> {
    flag(recovery_section(v, "crash")?, "digest_identical")
}

fn recovery_transient_identical(v: &Value) -> Result<f64, String> {
    flag(recovery_section(v, "transient")?, "identical")
}

fn recovery_rebuild_identical(v: &Value) -> Result<f64, String> {
    flag(recovery_section(v, "rebuild")?, "identical")
}

fn recovery_quarantine_exact(v: &Value) -> Result<f64, String> {
    let q = recovery_section(v, "quarantine")?;
    Ok(flag(q, "exact")? * flag(q, "survivors_identical")?)
}

fn recovery_speedup(v: &Value) -> Result<f64, String> {
    num(recovery_section(v, "crash")?, "recovery_speedup")
}

/// The derived `summary` section of the tournament matrix.
fn tournament_summary(v: &Value) -> Result<&Value, String> {
    v.get("summary")
        .ok_or_else(|| "missing `summary` section".to_string())
}

fn tournament_adaptive_margin(v: &Value) -> Result<f64, String> {
    num(tournament_summary(v)?, "adaptive_min_non_dp_margin")
}

fn tournament_dp_degradation(v: &Value) -> Result<f64, String> {
    num(tournament_summary(v)?, "dp_static_degradation_min")
}

fn tournament_dp_floor(v: &Value) -> Result<f64, String> {
    num(tournament_summary(v)?, "dp_adaptive_floor_margin")
}

fn tournament_cost_ratio(v: &Value) -> Result<f64, String> {
    num(tournament_summary(v)?, "dp_cost_min_ratio")
}

fn tournament_quarantine(v: &Value) -> Result<f64, String> {
    flag(tournament_summary(v)?, "quarantine_composes")
}

fn tournament_stream_equal(v: &Value) -> Result<f64, String> {
    v.get("stream")
        .ok_or_else(|| "missing `stream` section".to_string())
        .and_then(|s| flag(s, "chunked_equal"))
}

// ---- shaping_arms_race extractors -------------------------------------

fn shaping_summary(v: &Value) -> Result<&Value, String> {
    v.get("summary")
        .ok_or_else(|| "missing `summary` section".to_string())
}

fn shaping_strong_margin(v: &Value) -> Result<f64, String> {
    num(shaping_summary(v)?, "strong_minus_naive_min_partial")
}

fn shaping_pad_leak(v: &Value) -> Result<f64, String> {
    num(shaping_summary(v)?, "pad_strong_above_chance")
}

fn shaping_full_floor(v: &Value) -> Result<f64, String> {
    num(shaping_summary(v)?, "full_strong_above_chance")
}

fn shaping_naive_blinded(v: &Value) -> Result<f64, String> {
    num(shaping_summary(v)?, "naive_pad_cover_accuracy")
}

fn shaping_strong_clear(v: &Value) -> Result<f64, String> {
    num(shaping_summary(v)?, "strong_clear_accuracy")
}

fn shaping_cover_occupancy_drop(v: &Value) -> Result<f64, String> {
    let s = shaping_summary(v)?;
    Ok(num(s, "none_occupancy_mcc")? - num(s, "pad_cover_occupancy_mcc")?)
}

fn shaping_full_overhead(v: &Value) -> Result<f64, String> {
    num(shaping_summary(v)?, "full_overhead_frac")
}

fn shaping_latency_honest(v: &Value) -> Result<f64, String> {
    flag(shaping_summary(v)?, "latency_honest")
}

fn shaping_quarantine(v: &Value) -> Result<f64, String> {
    flag(shaping_summary(v)?, "quarantine_composes")
}

/// Every registered claim, grouped by experiment in registry order.
pub fn all() -> &'static [Claim] {
    static ALL: &[Claim] = &[
        // -- Fig. 1: whole-home power reveals occupancy ------------------
        Claim {
            id: "fig1.occupied-power-gap",
            anchor: "Fig. 1",
            title: "Occupied periods draw visibly more mean power than empty ones",
            experiment: "fig1_occupancy_overlay",
            band: Band::AtLeast { lo: 50.0 },
            extract: fig1_power_gap,
            cheap: true,
        },
        Claim {
            id: "fig1.occupied-variance-gap",
            anchor: "Fig. 1",
            title: "Occupied periods are burstier (higher σ) than empty ones",
            experiment: "fig1_occupancy_overlay",
            band: Band::AtLeast { lo: 50.0 },
            extract: fig1_variance_gap,
            cheap: true,
        },
        // -- §II-A: NIOM occupancy detection accuracy --------------------
        Claim {
            id: "niom.accuracy-mean",
            anchor: "§II-A (Fig. 1 claim)",
            title: "Threshold NIOM detects occupancy around 80% accuracy across homes",
            experiment: "claim_niom_accuracy",
            band: Band::Absolute { lo: 0.70, hi: 0.90 },
            extract: niom_accuracy_mean,
            cheap: false,
        },
        Claim {
            id: "niom.accuracy-min",
            anchor: "§II-A (Fig. 1 claim)",
            title: "Even the hardest home stays well above coin-flip accuracy",
            experiment: "claim_niom_accuracy",
            band: Band::Absolute { lo: 0.50, hi: 0.85 },
            extract: niom_accuracy_min,
            cheap: false,
        },
        Claim {
            id: "niom.accuracy-max",
            anchor: "§II-A (Fig. 1 claim)",
            title: "Detection is good but imperfect — no home is classified perfectly",
            experiment: "claim_niom_accuracy",
            band: Band::AtMost { hi: 0.97 },
            extract: niom_accuracy_max,
            cheap: false,
        },
        // -- Fig. 2: NILM disaggregation ---------------------------------
        Claim {
            id: "fig2.powerplay-beats-fhmm",
            anchor: "Fig. 2",
            title: "Device-aware PowerPlay tracking beats generic FHMM on every device",
            experiment: "fig2_disaggregation",
            band: Band::AtLeast { lo: -0.05 },
            extract: fig2_margin_vs_fhmm,
            cheap: false,
        },
        Claim {
            id: "fig2.powerplay-mean-error",
            anchor: "Fig. 2",
            title: "PowerPlay recovers most per-device energy (mean error ≪ all-zero's 1.0)",
            experiment: "fig2_disaggregation",
            band: Band::AtMost { hi: 0.85 },
            extract: fig2_powerplay_mean_error,
            cheap: false,
        },
        // -- Fig. 5: solar localization ----------------------------------
        Claim {
            id: "fig5.weatherman-within-15km",
            anchor: "Fig. 5",
            title: "WeatherMan localizes every site to within ~15 km",
            experiment: "fig5_localization",
            band: Band::AtMost { hi: 15.0 },
            extract: fig5_weatherman_max,
            cheap: false,
        },
        Claim {
            id: "fig5.sunspot-median",
            anchor: "Fig. 5",
            title: "Sun-angle SunSpot alone localizes to the ~100 km scale",
            experiment: "fig5_localization",
            band: Band::AtMost { hi: 150.0 },
            extract: fig5_sunspot_median,
            cheap: false,
        },
        // -- Fig. 6: CHPr defeats the NIOM attack ------------------------
        Claim {
            id: "fig6.undefended-mcc",
            anchor: "Fig. 6",
            title: "Undefended week: NIOM attack MCC sits near the paper's 0.44",
            experiment: "fig6_chpr",
            band: Band::Absolute { lo: 0.30, hi: 0.70 },
            extract: fig6_mcc_before,
            cheap: true,
        },
        Claim {
            id: "fig6.chpr-mcc-near-random",
            anchor: "Fig. 6",
            title: "Under CHPr the attack MCC collapses to near-random (paper: 0.045)",
            experiment: "fig6_chpr",
            band: Band::AtMost { hi: 0.15 },
            extract: fig6_mcc_after_abs,
            cheap: true,
        },
        Claim {
            id: "fig6.chpr-collapse",
            anchor: "Fig. 6",
            title: "CHPr cuts the attack MCC by at least 3× (paper: ~10×)",
            experiment: "fig6_chpr",
            band: Band::AtLeast { lo: 0.0 },
            extract: fig6_collapse_margin,
            cheap: true,
        },
        Claim {
            id: "fig6.chpr-energy-overhead",
            anchor: "Fig. 6",
            title: "CHPr's default cadence costs little extra energy over the week",
            experiment: "fig6_chpr",
            band: Band::AtMost { hi: 2.0 },
            extract: fig6_extra_energy,
            cheap: true,
        },
        // -- §II-B: SunDance solar disaggregation ------------------------
        Claim {
            id: "sundance.rmse-improvement",
            anchor: "§II-B (SunDance)",
            title: "Solar-aware SunDance cuts demand RMSE several-fold at every site",
            experiment: "claim_sundance",
            band: Band::AtMost { hi: 0.6 },
            extract: sundance_rmse_ratio,
            cheap: true,
        },
        Claim {
            id: "sundance.energy-recovery",
            anchor: "§II-B (SunDance)",
            title: "Recovered generation energy lands within ±40% of truth",
            experiment: "claim_sundance",
            band: Band::AtMost { hi: 0.4 },
            extract: sundance_energy_ratio_err,
            cheap: true,
        },
        // -- §III-C: privacy-preserving verifiable billing ---------------
        Claim {
            id: "meter.honest-bill-verifies",
            anchor: "§III-C (verifiable billing)",
            title: "Honest flat-rate and TOU bills pass commitment verification",
            experiment: "claim_private_meter",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: meter_bills_verify,
            cheap: true,
        },
        Claim {
            id: "meter.cheat-detected",
            anchor: "§III-C (verifiable billing)",
            title: "An under-reported bill fails verification",
            experiment: "claim_private_meter",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: meter_cheat_detected,
            cheap: true,
        },
        // -- §II-A: extended-absence (vacation) detection ----------------
        Claim {
            id: "vacation.week-flagged",
            anchor: "§II-A (extended absence)",
            title: "A week-long absence is flagged nearly day-for-day",
            experiment: "claim_vacation_detection",
            band: Band::Absolute { lo: 6.0, hi: 7.0 },
            extract: vacation_hits,
            cheap: true,
        },
        Claim {
            id: "vacation.no-false-alarms",
            anchor: "§II-A (extended absence)",
            title: "Occupied days are essentially never flagged as vacation",
            experiment: "claim_vacation_detection",
            band: Band::AtMost { hi: 1.0 },
            extract: vacation_false_alarms,
            cheap: true,
        },
        // -- §IV: traffic fingerprinting and the smart gateway -----------
        Claim {
            id: "sec4.fingerprint-accuracy",
            anchor: "§IV",
            title: "Flow metadata alone fingerprints device types far above chance",
            experiment: "sec4_traffic_fingerprint",
            band: Band::Absolute { lo: 0.80, hi: 1.0 },
            extract: sec4_fingerprint_accuracy,
            cheap: true,
        },
        Claim {
            id: "sec4.shaping-blunts-fingerprint",
            anchor: "§IV",
            title: "Traffic shaping drives fingerprinting back toward chance (0.1)",
            experiment: "sec4_traffic_fingerprint",
            band: Band::AtMost { hi: 0.35 },
            extract: sec4_shaped_accuracy,
            cheap: true,
        },
        Claim {
            id: "sec4.gateway-catches-compromise",
            anchor: "§IV",
            title: "The smart gateway quarantines an injected compromised device",
            experiment: "sec4_traffic_fingerprint",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: sec4_compromise_caught,
            cheap: true,
        },
        Claim {
            id: "sec4.gateway-false-quarantines",
            anchor: "§IV",
            title: "At most one of the nine benign devices is ever falsely quarantined",
            experiment: "sec4_traffic_fingerprint",
            band: Band::AtMost { hi: 1.0 },
            extract: sec4_false_quarantines,
            cheap: true,
        },
        // -- §III-E: the privacy-effort knob -----------------------------
        Claim {
            id: "knob.monotone-tradeoff",
            anchor: "§III-E (privacy knob)",
            title: "Full privacy effort cuts attack MCC by at least 0.2 vs no effort",
            experiment: "ablation_privacy_knob",
            band: Band::AtLeast { lo: 0.2 },
            extract: knob_mcc_drop,
            cheap: true,
        },
        // -- §III-A: differential privacy on shared aggregates -----------
        Claim {
            id: "dp.laplace-scaling",
            anchor: "§III-A (differential privacy)",
            title: "Laplace error scales ~1/ε: a 10× smaller ε costs ~10× the error",
            experiment: "ablation_dp_tradeoff",
            band: Band::Relative {
                expected: 10.0,
                rel: 0.6,
            },
            extract: dp_laplace_scaling,
            cheap: true,
        },
        Claim {
            id: "dp.error-monotone",
            anchor: "§III-A (differential privacy)",
            title: "Stricter privacy (ε: 5 → 0.05) costs strictly more utility",
            experiment: "ablation_dp_tradeoff",
            band: Band::AtLeast { lo: 1.0 },
            extract: dp_error_monotone,
            cheap: true,
        },
        // -- Fig. 6 design space: CHPr tank cadence ----------------------
        Claim {
            id: "chpr.best-cadence-collapse",
            anchor: "Fig. 6 (CHPr design)",
            title: "Some burst cadence cuts attack MCC by ≥0.1 vs the undefended home",
            experiment: "ablation_chpr_tank",
            band: Band::AtLeast { lo: 0.1 },
            extract: chpr_best_cadence_margin,
            cheap: true,
        },
        // -- roadmap: robustness under injected faults --------------------
        Claim {
            id: "robust.attack-survives-faults",
            anchor: "roadmap (robustness)",
            title: "Gap-aware NIOM attack stays far above random at every fault level",
            experiment: "degradation_curves",
            band: Band::AtLeast { lo: 0.2 },
            extract: robust_attack_mcc_floor,
            cheap: true,
        },
        Claim {
            id: "robust.defense-holds-under-faults",
            anchor: "roadmap (robustness)",
            title: "CHPr keeps the attack MCC collapsed even on corrupted meters",
            experiment: "degradation_curves",
            band: Band::AtMost { hi: 0.25 },
            extract: robust_defense_mcc_ceiling,
            cheap: true,
        },
        Claim {
            id: "robust.heavy-faults-destroy-samples",
            anchor: "roadmap (robustness)",
            title: "The 50% fault profile really destroys a large trace fraction",
            experiment: "degradation_curves",
            band: Band::Absolute { lo: 0.2, hi: 0.9 },
            extract: robust_heavy_gap_fraction,
            cheap: true,
        },
        Claim {
            id: "robust.fingerprint-survives-flow-faults",
            anchor: "roadmap (robustness)",
            title: "Traffic fingerprinting stays potent under packet loss and reboots",
            experiment: "degradation_curves",
            band: Band::AtLeast { lo: 0.8 },
            extract: robust_fingerprint_floor,
            cheap: true,
        },
        Claim {
            id: "robust.supervisor-quarantines-exactly",
            anchor: "roadmap (robustness)",
            title: "The fleet supervisor quarantines exactly the panicking 10% of homes",
            experiment: "degradation_curves",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: robust_quarantined_homes,
            cheap: true,
        },
        Claim {
            id: "robust.supervisor-saves-the-rest",
            anchor: "roadmap (robustness)",
            title: "Every non-panicking home survives a fleet run with injected panics",
            experiment: "degradation_curves",
            band: Band::Absolute { lo: 9.0, hi: 9.0 },
            extract: robust_fleet_survivors,
            cheap: true,
        },
        // -- Streaming: batch equivalence (crates/stream) ----------------
        Claim {
            id: "stream.niom-batch-equal",
            anchor: "roadmap (streaming)",
            title: "Streaming NIOM detection (Fig. 1 metrics) is byte-identical to batch for any chunking",
            experiment: "stream_equivalence",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: stream_niom_equal,
            cheap: true,
        },
        Claim {
            id: "stream.nilm-batch-equal",
            anchor: "roadmap (streaming)",
            title: "Streaming FHMM/PowerPlay disaggregation (Fig. 2 metrics) is byte-identical to batch",
            experiment: "stream_equivalence",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: stream_nilm_equal,
            cheap: true,
        },
        Claim {
            id: "stream.defense-batch-equal",
            anchor: "roadmap (streaming)",
            title: "Streaming CHPr and battery defenses replay the batch rng schedule exactly",
            experiment: "stream_equivalence",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: stream_defense_equal,
            cheap: true,
        },
        Claim {
            id: "stream.netsim-batch-equal",
            anchor: "roadmap (streaming)",
            title: "Streaming flow fingerprinting and gateway monitoring (§IV metrics) match batch",
            experiment: "stream_equivalence",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: stream_netsim_equal,
            cheap: true,
        },
        Claim {
            id: "stream.faulted-batch-equal",
            anchor: "roadmap (streaming)",
            title: "Gap-marked (fault-injected) chunks resolve to the batch gap-fill output exactly",
            experiment: "stream_equivalence",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: stream_faults_equal,
            cheap: true,
        },
        Claim {
            id: "stream.scenario-batch-equal",
            anchor: "roadmap (streaming)",
            title: "The chunked scenario and checkpoint/restore resume reproduce the batch report",
            experiment: "stream_equivalence",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: stream_scenario_equal,
            cheap: true,
        },
        Claim {
            id: "stream.metric-deltas-zero",
            anchor: "roadmap (streaming)",
            title: "Streaming accuracy/MCC/error metrics differ from batch by exactly zero",
            experiment: "stream_equivalence",
            band: Band::AtMost { hi: 0.0 },
            extract: stream_metric_delta_max,
            cheap: true,
        },
        // -- Batched decode kernels: precision policy --------------------
        Claim {
            id: "accuracy.f32-safe-defaults",
            anchor: "roadmap (streaming)",
            title: "The f32 score path is opt-in (off by default) and batch-consistent",
            experiment: "stream_equivalence",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: stream_precision_safe,
            cheap: true,
        },
        Claim {
            id: "accuracy.f32-decode-close",
            anchor: "roadmap (streaming)",
            title: "f32 FHMM decode disagrees with f64 on under 2% of per-sample states",
            experiment: "stream_equivalence",
            band: Band::AtMost { hi: 0.02 },
            extract: stream_f32_disagreement,
            cheap: true,
        },
        // -- Batched decode kernels: throughput (wall-clock) -------------
        Claim {
            id: "stream.chunked-not-slower",
            anchor: "roadmap (streaming throughput)",
            title: "Chunked admission of arrived readings beats the world-rebuild batch fleet",
            experiment: "stream_throughput",
            band: Band::AtLeast { lo: 1.0 },
            extract: chunked_speedup_min,
            cheap: false,
        },
        Claim {
            id: "perf.fhmm-decode-throughput",
            anchor: "roadmap (streaming throughput)",
            title: "The FHMM decode path clears 5x the pre-batching fleet throughput ceiling",
            experiment: "stream_throughput",
            band: Band::AtLeast { lo: 1_600_000.0 },
            extract: decode_throughput_max,
            cheap: false,
        },
        Claim {
            id: "perf.fhmm-batched-not-slower",
            anchor: "roadmap (streaming throughput)",
            title: "Some batched decode configuration beats the single-home f64 kernel",
            experiment: "stream_throughput",
            band: Band::AtLeast { lo: 1.0 },
            extract: decode_batched_speedup_max,
            cheap: false,
        },
        Claim {
            id: "perf.decode-batch-identical",
            anchor: "roadmap (streaming throughput)",
            title: "Batched decode output is byte-identical to single-home decode at every B",
            experiment: "stream_throughput",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: decode_batched_identical,
            cheap: false,
        },
        // -- Resident fleet service (docs/FLEET.md) ----------------------
        Claim {
            id: "fleet.resident-evict-identical",
            anchor: "roadmap (fleet throughput)",
            title: "Eviction/rehydration through compact checkpoints is byte-invisible to output",
            experiment: "fleet_scale",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: resident_evict_identical,
            cheap: false,
        },
        Claim {
            id: "fleet.resident-bytes-per-home",
            anchor: "roadmap (fleet throughput)",
            title: "An evicted home costs at most 512 bytes at every ladder rung (10^4..10^6)",
            experiment: "fleet_scale",
            band: Band::AtMost { hi: 512.0 },
            extract: resident_cold_bytes_max,
            cheap: false,
        },
        Claim {
            id: "fleet.resident-throughput",
            anchor: "roadmap (fleet throughput)",
            title: "Resident admission clears 1M samples/sec at every rung up to 10^6 homes",
            experiment: "fleet_scale",
            band: Band::AtLeast { lo: 1_000_000.0 },
            extract: resident_samples_per_sec_min,
            cheap: false,
        },
        Claim {
            id: "fleet.resident-homes-per-sec",
            anchor: "roadmap (fleet throughput)",
            title: "The resident service admits 30k home-rounds/sec at every rung (vs ~200 rebuilt homes/sec)",
            experiment: "fleet_scale",
            band: Band::AtLeast { lo: 30_000.0 },
            extract: resident_homes_per_sec_min,
            cheap: false,
        },
        // -- Crash recovery of the durable fleet (docs/FLEET.md) ---------
        Claim {
            id: "fleet.recovery-digest-identical",
            anchor: "roadmap (crash recovery)",
            title: "A fleet crashed mid-ladder and recovered from its durable store finishes byte-identical",
            experiment: "recovery_soak",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: recovery_crash_identical,
            cheap: false,
        },
        Claim {
            id: "fleet.recovery-transient-identical",
            anchor: "roadmap (crash recovery)",
            title: "Transient store-write failures are absorbed by bounded retry with byte-identical output",
            experiment: "recovery_soak",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: recovery_transient_identical,
            cheap: false,
        },
        Claim {
            id: "fleet.recovery-rebuild-identical",
            anchor: "roadmap (crash recovery)",
            title: "Under the full storage-fault ladder, degraded-mode rebuild restores byte-identical output",
            experiment: "recovery_soak",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: recovery_rebuild_identical,
            cheap: false,
        },
        Claim {
            id: "fleet.recovery-quarantine-exact",
            anchor: "roadmap (crash recovery)",
            title: "Offline frame corruption quarantines exactly the corrupted homes, survivors untouched",
            experiment: "recovery_soak",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: recovery_quarantine_exact,
            cheap: false,
        },
        Claim {
            id: "fleet.recovery-wall-time",
            anchor: "roadmap (crash recovery)",
            title: "Recovering and resuming after a 4/6-round crash beats re-running the full ladder",
            experiment: "recovery_soak",
            band: Band::AtLeast { lo: 1.2 },
            extract: recovery_speedup,
            cheap: false,
        },
        // -- Adaptive-adversary tournament (docs/TOURNAMENT.md) ----------
        Claim {
            id: "tournament.adaptive-beats-static",
            anchor: "roadmap (adaptive adversary)",
            title: "The co-evolving attacker strictly beats both static baselines on every non-DP defense",
            experiment: "tournament",
            band: Band::AtLeast { lo: 0.004 },
            extract: tournament_adaptive_margin,
            cheap: false,
        },
        Claim {
            id: "tournament.dp-mcc-monotone",
            anchor: "roadmap (adaptive adversary)",
            title: "DP noise degrades the static attack gracefully: MCC falls from ε=∞ to ε=8, and every stronger rung stays below ε=8",
            experiment: "tournament",
            band: Band::AtLeast { lo: 0.01 },
            extract: tournament_dp_degradation,
            cheap: false,
        },
        Claim {
            id: "tournament.dp-floors-adaptive",
            anchor: "roadmap (adaptive adversary)",
            title: "The strongest DP rung (ε=0.125) holds even the retrained attacker well below its undefended MCC",
            experiment: "tournament",
            band: Band::AtLeast { lo: 0.03 },
            extract: tournament_dp_floor,
            cheap: false,
        },
        Claim {
            id: "tournament.cost-monotone-in-epsilon",
            anchor: "roadmap (adaptive adversary)",
            title: "Defense energy cost is monotone in strength: each 8× ε cut at least doubles the per-home kWh cost",
            experiment: "tournament",
            band: Band::AtLeast { lo: 2.0 },
            extract: tournament_cost_ratio,
            cheap: false,
        },
        Claim {
            id: "tournament.quarantine-composes",
            anchor: "roadmap (adaptive adversary)",
            title: "The fleet supervisor quarantines the injected panic home in every matrix cell",
            experiment: "tournament",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: tournament_quarantine,
            cheap: false,
        },
        Claim {
            id: "tournament.stream-chunked-identical",
            anchor: "roadmap (adaptive adversary)",
            title: "The fitted adaptive attack replayed through chunked streaming admission matches batch byte-for-byte",
            experiment: "tournament",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: tournament_stream_equal,
            cheap: false,
        },
        // -- Encrypted-traffic arms race (docs/NETSIM.md) ----------------
        Claim {
            id: "netsim.shaping-strong-beats-naive",
            anchor: "§IV (encrypted-traffic arms race)",
            title: "The re-featurizing attacker beats the naive one on every partial shaping defense",
            experiment: "shaping_arms_race",
            band: Band::AtLeast { lo: 0.05 },
            extract: shaping_strong_margin,
            cheap: false,
        },
        Claim {
            id: "netsim.shaping-pad-still-leaks",
            anchor: "§IV (encrypted-traffic arms race)",
            title: "Size-bucket padding alone leaves the strong attacker at least 0.15 accuracy above chance — timing survives padding",
            experiment: "shaping_arms_race",
            band: Band::AtLeast { lo: 0.15 },
            extract: shaping_pad_leak,
            cheap: false,
        },
        Claim {
            id: "netsim.shaping-full-stack-floors-strong",
            anchor: "§IV (encrypted-traffic arms race)",
            title: "Only the full aggregation+cover+padding stack floors the strong attacker to within 0.05 of chance",
            experiment: "shaping_arms_race",
            band: Band::AtMost { hi: 0.05 },
            extract: shaping_full_floor,
            cheap: false,
        },
        Claim {
            id: "netsim.shaping-naive-blinded-by-pad-cover",
            anchor: "§IV (encrypted-traffic arms race)",
            title: "Padding plus cover traffic blinds the naive size-feature attacker to below 0.45 accuracy",
            experiment: "shaping_arms_race",
            band: Band::AtMost { hi: 0.45 },
            extract: shaping_naive_blinded,
            cheap: false,
        },
        Claim {
            id: "netsim.shaping-strong-matches-baseline-clear",
            anchor: "§IV (encrypted-traffic arms race)",
            title: "On unshaped flows the strong attacker reproduces the baseline fingerprinting accuracy",
            experiment: "shaping_arms_race",
            band: Band::AtLeast { lo: 0.7 },
            extract: shaping_strong_clear,
            cheap: false,
        },
        Claim {
            id: "netsim.shaping-cover-floors-occupancy",
            anchor: "§IV (encrypted-traffic arms race)",
            title: "Cover traffic collapses the traffic-occupancy side channel (MCC drop vs. unshaped)",
            experiment: "shaping_arms_race",
            band: Band::AtLeast { lo: 0.4 },
            extract: shaping_cover_occupancy_drop,
            cheap: false,
        },
        Claim {
            id: "netsim.shaping-overhead-priced",
            anchor: "§IV (encrypted-traffic arms race)",
            title: "The full stack reports a positive byte-overhead price, not a free lunch",
            experiment: "shaping_arms_race",
            band: Band::AtLeast { lo: 0.001 },
            extract: shaping_full_overhead,
            cheap: false,
        },
        Claim {
            id: "netsim.shaping-latency-honest",
            anchor: "§IV (encrypted-traffic arms race)",
            title: "Added latency is honest: zero for every non-aggregating policy, positive under tunnel aggregation",
            experiment: "shaping_arms_race",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: shaping_latency_honest,
            cheap: false,
        },
        Claim {
            id: "netsim.shaping-quarantine-composes",
            anchor: "§IV (encrypted-traffic arms race)",
            title: "The fleet supervisor quarantines the injected panic home in every shaping matrix cell",
            experiment: "shaping_arms_race",
            band: Band::Absolute { lo: 1.0, hi: 1.0 },
            extract: shaping_quarantine,
            cheap: false,
        },
    ];
    ALL
}

/// Looks up a claim by exact id.
pub fn find(id: &str) -> Option<&'static Claim> {
    all().iter().find(|c| c.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_experiments_resolve() {
        let mut seen = std::collections::HashSet::new();
        for claim in all() {
            assert!(seen.insert(claim.id), "duplicate claim id {}", claim.id);
            let spec = bench::experiments::find(claim.experiment)
                .unwrap_or_else(|| panic!("{}: unknown experiment {}", claim.id, claim.experiment));
            assert_eq!(
                spec.paper_anchor, claim.anchor,
                "{}: anchor drifted from the experiment registry",
                claim.id
            );
            // Cheap claims run in the `cargo test` single-seed tier, where
            // a nondeterministic metric would flake; wall-clock claims
            // (`stream.chunked-not-slower`, `perf.*`) may target the
            // throughput experiments but only through the sweep tier.
            assert!(
                spec.deterministic || !claim.cheap,
                "{}: cheap claims must target deterministic experiments",
                claim.id
            );
        }
    }

    #[test]
    fn registry_covers_the_required_anchors() {
        // The acceptance floor: ≥10 claims spanning the headline figures,
        // billing, and the Section IV network attack.
        assert!(all().len() >= 10, "only {} claims registered", all().len());
        for required in ["Fig. 1", "Fig. 2", "Fig. 5", "Fig. 6", "§III-C", "§IV"] {
            assert!(
                all().iter().any(|c| c.anchor.starts_with(required)),
                "no claim anchored at {required}"
            );
        }
    }

    #[test]
    fn bands_are_well_formed() {
        for claim in all() {
            let (lo, hi) = claim.band.bounds();
            assert!(lo <= hi, "{}: inverted band {:?}", claim.id, claim.band);
        }
    }

    #[test]
    fn band_semantics() {
        let abs = Band::Absolute { lo: 0.3, hi: 0.7 };
        assert!(abs.contains(0.3) && abs.contains(0.7) && !abs.contains(0.71));
        assert!(!abs.contains(f64::NAN));
        assert!(abs.intersects(0.65, 0.9) && !abs.intersects(0.71, 0.9));

        let at_least = Band::AtLeast { lo: 0.2 };
        assert!(at_least.contains(0.2) && !at_least.contains(0.19));
        assert_eq!(at_least.describe(), ">= 0.2");

        let rel = Band::Relative {
            expected: 10.0,
            rel: 0.6,
        };
        assert!(rel.contains(4.0) && rel.contains(16.0) && !rel.contains(3.9));
        assert_eq!(rel.bounds(), (4.0, 16.0));
    }

    #[test]
    fn find_resolves_exact_ids_only() {
        assert_eq!(find("fig6.undefended-mcc").unwrap().experiment, "fig6_chpr");
        assert!(find("fig6").is_none());
    }
}
