//! Structural JSON diff for golden-snapshot comparison.
//!
//! Two deliberate deviations from plain `Value` equality:
//!
//! * Objects compare as key → value maps, not entry sequences — the
//!   vendored `Map` preserves insertion order and derives an
//!   order-sensitive `PartialEq`, but key order is not part of the
//!   artifact contract.
//! * Non-finite floats compare equal to `null`: JSON has no NaN, so the
//!   writer renders NaN as `null` (e.g. the dryer's undefined FHMM error
//!   in `fig2_disaggregation`), and a freshly computed `Value` still
//!   holds the NaN.

use serde_json::Value;

/// Caps the report so one structural mishap cannot flood the output.
const MAX_DIFFS: usize = 20;

/// Structural differences between a golden `expected` snapshot and a
/// freshly computed `actual` value, as `$.path: what differs` lines.
/// Empty means the snapshot matches.
pub fn diff(expected: &Value, actual: &Value) -> Vec<String> {
    let mut out = Vec::new();
    let mut truncated = false;
    walk("$", expected, actual, &mut out, &mut truncated);
    if truncated {
        out.push(format!("... further differences truncated at {MAX_DIFFS}"));
    }
    out
}

static NULL: Value = Value::Null;

/// A `Value` with writer semantics applied: non-finite numbers are null.
fn written_form(v: &Value) -> &Value {
    match v {
        Value::Number(n) if !n.as_f64().is_finite() => &NULL,
        other => other,
    }
}

fn push(out: &mut Vec<String>, truncated: &mut bool, line: String) {
    if out.len() < MAX_DIFFS {
        out.push(line);
    } else {
        *truncated = true;
    }
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

fn walk(path: &str, expected: &Value, actual: &Value, out: &mut Vec<String>, truncated: &mut bool) {
    let (expected, actual) = (written_form(expected), written_form(actual));
    match (expected, actual) {
        (Value::Object(e), Value::Object(a)) => {
            for (key, ev) in e.iter() {
                match a.get(key) {
                    Some(av) => walk(&format!("{path}.{key}"), ev, av, out, truncated),
                    None => push(out, truncated, format!("{path}.{key}: missing from run")),
                }
            }
            for (key, _) in a.iter() {
                if !e.contains_key(key) {
                    push(
                        out,
                        truncated,
                        format!("{path}.{key}: not in golden snapshot"),
                    );
                }
            }
        }
        (Value::Array(e), Value::Array(a)) => {
            if e.len() != a.len() {
                push(
                    out,
                    truncated,
                    format!("{path}: array length {} vs {}", e.len(), a.len()),
                );
            }
            for (i, (ev, av)) in e.iter().zip(a.iter()).enumerate() {
                walk(&format!("{path}[{i}]"), ev, av, out, truncated);
            }
        }
        (Value::Number(e), Value::Number(a)) => {
            // Exact: floats round-trip losslessly through the writer's
            // shortest-representation rendering and strtod parsing.
            if e.as_f64() != a.as_f64() {
                push(
                    out,
                    truncated,
                    format!("{path}: expected {expected}, got {actual}"),
                );
            }
        }
        _ if type_name(expected) != type_name(actual) => push(
            out,
            truncated,
            format!(
                "{path}: expected {} ({expected}), got {} ({actual})",
                type_name(expected),
                type_name(actual)
            ),
        ),
        _ => {
            if expected != actual {
                push(
                    out,
                    truncated,
                    format!("{path}: expected {expected}, got {actual}"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn identical_values_have_no_diff() {
        let v = json!({"a": 1, "b": [1.5, true, "x"], "c": {"d": null}});
        assert!(diff(&v, &v.clone()).is_empty());
    }

    #[test]
    fn key_order_does_not_matter() {
        let golden: Value = serde_json::from_str(r#"{"a": 1, "b": 2}"#).unwrap();
        let fresh: Value = serde_json::from_str(r#"{"b": 2, "a": 1}"#).unwrap();
        assert!(diff(&golden, &fresh).is_empty());
    }

    #[test]
    fn nan_matches_the_null_it_was_written_as() {
        let golden = json!({"err": null});
        let fresh = json!({"err": f64::NAN});
        assert!(diff(&golden, &fresh).is_empty());
    }

    #[test]
    fn integer_and_float_forms_of_the_same_number_match() {
        let golden: Value = serde_json::from_str(r#"{"n": 7}"#).unwrap();
        let fresh = json!({"n": 7.0});
        assert!(diff(&golden, &fresh).is_empty());
    }

    #[test]
    fn differences_name_the_path() {
        let golden = json!({"x": {"y": 1.0}, "only_golden": 1});
        let fresh = json!({"x": {"y": 2.0}, "extra": true});
        let diffs = diff(&golden, &fresh);
        assert!(diffs
            .iter()
            .any(|d| d.starts_with("$.x.y: expected 1.0, got 2.0")));
        assert!(diffs
            .iter()
            .any(|d| d.contains("$.only_golden: missing from run")));
        assert!(diffs
            .iter()
            .any(|d| d.contains("$.extra: not in golden snapshot")));
    }

    #[test]
    fn array_length_and_type_mismatches_are_reported() {
        let diffs = diff(&json!([1, 2, 3]), &json!([1, 2]));
        assert!(diffs[0].contains("array length 3 vs 2"));
        let diffs = diff(&json!({"v": "s"}), &json!({"v": 1}));
        assert!(diffs[0].contains("expected string"));
    }

    #[test]
    fn flood_of_differences_is_truncated() {
        let golden = Value::Array((0..50).map(|i| json!(i)).collect());
        let fresh = Value::Array((0..50).map(|i| json!(i + 1000)).collect());
        let diffs = diff(&golden, &fresh);
        assert_eq!(diffs.len(), MAX_DIFFS + 1);
        assert!(diffs.last().unwrap().contains("truncated"));
    }
}
