//! Paper-claims conformance harness.
//!
//! Every quantitative claim the suite reproduces from the paper is one
//! entry in the declarative [`registry`]: a stable id, the paper anchor
//! (figure or section), a metric extractor over the owning experiment's
//! JSON output, and a [`registry::Band`] the metric must fall in. The
//! [`runner`] executes experiments *in-process* through the library entry
//! points in [`bench::experiments`] — no subprocesses — shares each
//! experiment run across all claims that read it, and in seed-sweep mode
//! (`--seeds N`) reruns every experiment over `N` decorrelated seeds and
//! checks the mean ± 95% confidence interval against the band instead of
//! a single draw.
//!
//! The `check_claims` binary drives the runner, additionally compares
//! each deterministic experiment's canonical output against the
//! checked-in `results/*.json` golden snapshots (see [`golden`]), and
//! exits non-zero on any out-of-band claim or snapshot drift, naming the
//! claim id and paper anchor in a diffable failure report. The rendered
//! claim table is kept in sync with `docs/CLAIMS.md` by a test (generate
//! it with `check_claims --claims-md docs/CLAIMS.md`).

#![warn(missing_docs)]

pub mod golden;
pub mod registry;
pub mod report;
pub mod runner;

pub use registry::{Band, Claim};
pub use report::{ClaimOutcome, ConformanceReport, GoldenOutcome};
pub use runner::{run, run_claims, Options};
