//! Validates every registered paper claim against its tolerance band.
//!
//! Runs experiments in-process via `bench::experiments`, checks each
//! claim's extracted metric (single canonical seed by default, mean ±
//! 95% CI over `--seeds N` decorrelated draws otherwise), compares the
//! canonical output of every touched deterministic experiment against
//! its golden snapshot under `results/`, and exits non-zero on any
//! out-of-band claim or snapshot drift. Artifact flags (`--json`,
//! `--txt`, `--metrics`) follow the `BenchArgs` contract the experiment
//! binaries share.

use bench::BenchArgs;
use conformance::{report, runner, Options};
use std::path::PathBuf;

const USAGE: &str = "usage: check_claims [--json <path>] [--txt <path>] [--metrics <path>]
                    [--filter <substr>] [--seeds <N>]
                    [--golden-dir <dir>] [--no-golden]
                    [--claims-md <path>] [--list]
  --json <path>       also write the machine-readable claim report
  --txt <path>        also write the rendered text report
  --metrics <path>    enable the observability layer and write a metrics sidecar
  --filter <substr>   only claims whose id or experiment contains <substr>
  --seeds <N>         seed-sweep mode: N decorrelated draws per experiment,
                      pass iff mean ± 95% CI overlaps the band (default 1)
  --golden-dir <dir>  golden snapshots to diff the canonical run against
                      (default: results/ when it exists)
  --no-golden         skip the golden-snapshot tier
  --claims-md <path>  regenerate the docs/CLAIMS.md table from the registry
                      and the golden dir's artifacts, then exit
  --list              list registered claims without running anything";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

struct Cli {
    bench: BenchArgs,
    opts: Options,
    golden_default: bool,
    claims_md: Option<PathBuf>,
    list: bool,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        bench: BenchArgs::default(),
        opts: Options::default(),
        golden_default: true,
        claims_md: None,
        list: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| -> String {
        match it.next() {
            Some(v) if !v.starts_with("--") => v.clone(),
            _ => usage_error(&format!("{flag} requires an argument")),
        }
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => cli.bench.json_path = Some(PathBuf::from(value("--json", &mut it))),
            "--txt" => cli.bench.txt_path = Some(PathBuf::from(value("--txt", &mut it))),
            "--metrics" => {
                cli.bench.metrics_path = Some(PathBuf::from(value("--metrics", &mut it)))
            }
            "--filter" => cli.opts.filter = Some(value("--filter", &mut it)),
            "--seeds" => {
                let raw = value("--seeds", &mut it);
                match raw.parse::<u64>() {
                    Ok(n) if n >= 1 => cli.opts.seeds = n,
                    _ => usage_error(&format!("--seeds wants a positive integer, got '{raw}'")),
                }
            }
            "--golden-dir" => {
                cli.opts.golden_dir = Some(PathBuf::from(value("--golden-dir", &mut it)));
                cli.golden_default = false;
            }
            "--no-golden" => {
                cli.opts.golden_dir = None;
                cli.golden_default = false;
            }
            "--claims-md" => cli.claims_md = Some(PathBuf::from(value("--claims-md", &mut it))),
            "--list" => cli.list = true,
            other => usage_error(&format!("unrecognized argument '{other}'")),
        }
    }
    if cli.golden_default {
        let default = PathBuf::from("results");
        if default.is_dir() {
            cli.opts.golden_dir = Some(default);
        }
    }
    if cli.bench.metrics_path.is_some() {
        obs::enable();
        obs::reset();
    }
    cli
}

fn main() {
    let cli = parse_cli();

    if cli.list {
        let rows: Vec<Vec<String>> = runner::select(&cli.opts)
            .iter()
            .map(|c| {
                vec![
                    c.id.to_string(),
                    c.anchor.to_string(),
                    c.experiment.to_string(),
                    c.band.describe(),
                ]
            })
            .collect();
        bench::print_table(
            "Registered paper claims",
            &["claim", "anchor", "experiment", "band"],
            &rows,
        );
        return;
    }

    if let Some(path) = &cli.claims_md {
        let Some(dir) = &cli.opts.golden_dir else {
            usage_error("--claims-md needs a golden dir (results/ or --golden-dir)");
        };
        match report::render_claims_md(dir) {
            Ok(text) => {
                std::fs::write(path, &text).unwrap_or_else(|e| {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                });
                println!("(wrote {})", path.display());
                return;
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    let selected = runner::select(&cli.opts);
    if selected.is_empty() {
        usage_error(&format!(
            "--filter '{}' matches no registered claim",
            cli.opts.filter.as_deref().unwrap_or("")
        ));
    }

    let result = runner::run_claims(&selected, &cli.opts);
    let text = result.render_text();
    print!("{text}");
    bench::maybe_write_json(&cli.bench, &result.to_json()).expect("write json report");
    bench::maybe_write_txt(&cli.bench, &text).expect("write txt report");
    bench::maybe_write_metrics(&cli.bench).expect("write metrics sidecar");

    std::process::exit(if result.passed() { 0 } else { 1 });
}
