//! Conformance results: per-claim outcomes, rendering, and the
//! generated `docs/CLAIMS.md` table.

use crate::registry::{self, Band, Claim};
use serde_json::{json, Value};
use std::path::Path;

/// One claim's validated outcome.
#[derive(Debug)]
pub struct ClaimOutcome {
    /// The claim id.
    pub id: &'static str,
    /// The paper anchor.
    pub anchor: &'static str,
    /// The claim's one-line statement.
    pub title: &'static str,
    /// The owning experiment.
    pub experiment: &'static str,
    /// The tolerance band.
    pub band: Band,
    /// Extracted metric per seed offset, in offset order.
    pub values: Vec<f64>,
    /// Run/extraction errors, if any (a non-empty list fails the claim).
    pub errors: Vec<String>,
    /// Sweep mean (equals the single value when `seeds == 1`).
    pub mean: f64,
    /// 95% CI half-width (0 for a single seed).
    pub ci_half: f64,
    /// Whether the claim held.
    pub passed: bool,
}

impl ClaimOutcome {
    fn base(claim: &Claim) -> ClaimOutcome {
        ClaimOutcome {
            id: claim.id,
            anchor: claim.anchor,
            title: claim.title,
            experiment: claim.experiment,
            band: claim.band,
            values: Vec::new(),
            errors: Vec::new(),
            mean: f64::NAN,
            ci_half: 0.0,
            passed: false,
        }
    }

    /// A claim that failed to produce a metric at every offset.
    pub fn errored(claim: &Claim, values: Vec<f64>, errors: Vec<String>) -> ClaimOutcome {
        ClaimOutcome {
            values,
            errors,
            ..ClaimOutcome::base(claim)
        }
    }

    /// A single-seed outcome: pass iff the value lies in the band.
    pub fn single(claim: &Claim, value: f64) -> ClaimOutcome {
        ClaimOutcome {
            values: vec![value],
            mean: value,
            passed: claim.band.contains(value),
            ..ClaimOutcome::base(claim)
        }
    }

    /// A seed-sweep outcome: pass iff mean ± CI overlaps the band.
    pub fn sweep(claim: &Claim, values: Vec<f64>, mean: f64, ci_half: f64) -> ClaimOutcome {
        ClaimOutcome {
            values,
            mean,
            ci_half,
            passed: claim.band.intersects(mean - ci_half, mean + ci_half),
            ..ClaimOutcome::base(claim)
        }
    }

    /// `mean` or `mean ± ci` depending on the number of seeds.
    pub fn measured(&self) -> String {
        if self.errors.is_empty() {
            if self.values.len() == 1 {
                format!("{:.4}", self.mean)
            } else {
                format!("{:.4} ± {:.4}", self.mean, self.ci_half)
            }
        } else {
            "error".to_string()
        }
    }
}

/// One experiment's golden-snapshot comparison.
#[derive(Debug)]
pub struct GoldenOutcome {
    /// The experiment whose canonical output was compared.
    pub experiment: &'static str,
    /// Its paper anchor.
    pub anchor: &'static str,
    /// The claims that read this experiment (named in failure reports).
    pub claim_ids: Vec<&'static str>,
    /// Structural differences (empty = snapshot matches).
    pub diffs: Vec<String>,
    /// Whether the snapshot matched.
    pub passed: bool,
    /// `true` when no snapshot exists yet under `--golden-dir` — the
    /// experiment is newer than the golden directory. Reported as a new
    /// artifact (and passes) rather than drift.
    pub new_artifact: bool,
}

/// A full conformance run: every selected claim plus the golden tier.
#[derive(Debug)]
pub struct ConformanceReport {
    /// Seed draws per experiment.
    pub seeds: u64,
    /// Per-claim outcomes, in registry order.
    pub outcomes: Vec<ClaimOutcome>,
    /// Per-experiment golden comparisons (empty when the tier was off).
    pub golden: Vec<GoldenOutcome>,
}

impl ConformanceReport {
    /// Whether every claim and every golden snapshot passed.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.passed) && self.golden.iter().all(|g| g.passed)
    }

    /// Renders the human-readable report: a summary table, then a loud
    /// diffable block per failure naming the claim id and paper anchor.
    pub fn render_text(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .outcomes
            .iter()
            .map(|o| {
                vec![
                    o.id.to_string(),
                    o.anchor.to_string(),
                    o.measured(),
                    o.band.describe(),
                    if o.passed { "ok".into() } else { "FAIL".into() },
                ]
            })
            .collect();
        let mut out = bench::render_table(
            &format!(
                "Paper-claims conformance — {} claims, {} seed{}",
                self.outcomes.len(),
                self.seeds,
                if self.seeds == 1 { "" } else { "s" }
            ),
            &["claim", "anchor", "measured", "band", "status"],
            &rows,
        );

        for o in self.outcomes.iter().filter(|o| !o.passed) {
            out.push_str(&format!(
                "\nFAIL {} — {}\n  claim: {}\n  band {} vs measured {}",
                o.id,
                o.anchor,
                o.title,
                o.band.describe(),
                o.measured()
            ));
            if self.seeds > 1 && o.errors.is_empty() {
                let rendered: Vec<String> = o.values.iter().map(|v| format!("{v:.4}")).collect();
                out.push_str(&format!("\n  per-seed values: [{}]", rendered.join(", ")));
            }
            for e in &o.errors {
                out.push_str(&format!("\n  error: {e}"));
            }
            out.push('\n');
        }

        if !self.golden.is_empty() {
            let ok = self.golden.iter().filter(|g| g.passed).count();
            let new = self.golden.iter().filter(|g| g.new_artifact).count();
            out.push_str(&format!(
                "\nGolden snapshots: {ok}/{} experiments match results/{}\n",
                self.golden.len(),
                if new > 0 {
                    format!(" ({new} new, unpinned)")
                } else {
                    String::new()
                }
            ));
            for g in self.golden.iter().filter(|g| g.new_artifact) {
                out.push_str(&format!(
                    "\nNEW ARTIFACT {} — {} has no snapshot yet; regenerate results/ to pin it\n",
                    g.experiment, g.anchor
                ));
            }
            for g in self.golden.iter().filter(|g| !g.passed) {
                out.push_str(&format!(
                    "\nGOLDEN DRIFT {} — {} (claims: {})\n",
                    g.experiment,
                    g.anchor,
                    g.claim_ids.join(", ")
                ));
                for d in &g.diffs {
                    out.push_str(&format!("  {d}\n"));
                }
            }
        }

        out.push_str(&format!(
            "\n{}\n",
            if self.passed() {
                "All claims within tolerance."
            } else {
                "CONFORMANCE FAILURES — see blocks above."
            }
        ));
        out
    }

    /// The machine-readable report the binary writes under `--json`.
    pub fn to_json(&self) -> Value {
        let claims: Vec<Value> = self
            .outcomes
            .iter()
            .map(|o| {
                json!({
                    "id": o.id,
                    "anchor": o.anchor,
                    "title": o.title,
                    "experiment": o.experiment,
                    "band": o.band.describe(),
                    "values": o.values.clone(),
                    "mean": o.mean,
                    "ci_half": o.ci_half,
                    "errors": o.errors.clone(),
                    "passed": o.passed,
                })
            })
            .collect();
        let golden: Vec<Value> = self
            .golden
            .iter()
            .map(|g| {
                json!({
                    "experiment": g.experiment,
                    "anchor": g.anchor,
                    "claims": g.claim_ids.clone(),
                    "diffs": g.diffs.clone(),
                    "passed": g.passed,
                    "new_artifact": g.new_artifact,
                })
            })
            .collect();
        json!({
            "schema": "iot-privacy.claims.v1",
            "seeds": self.seeds,
            "passed": self.passed(),
            "claims": claims,
            "golden": golden,
        })
    }
}

/// Renders `docs/CLAIMS.md` from the registry plus the checked-in
/// `results/*.json` artifacts (no experiments are run). The committed
/// file must match this output byte-for-byte — a conformance test checks
/// it, and `check_claims --claims-md docs/CLAIMS.md` regenerates it.
///
/// # Errors
///
/// Returns a message naming the artifact or claim at fault when an
/// artifact is missing, unparsable, or an extractor fails on it.
pub fn render_claims_md(results_dir: &Path) -> Result<String, String> {
    let mut out = String::from(
        "# Machine-checked paper claims\n\n\
         Every quantitative claim the suite reproduces, with the tolerance band\n\
         `check_claims` enforces and the value measured from the canonical\n\
         checked-in artifact under `results/`. Generated by\n\
         `cargo run --release -p conformance --bin check_claims -- --claims-md docs/CLAIMS.md`;\n\
         a test in `crates/conformance/tests/artifacts.rs` fails if this file\n\
         drifts from the registry or the artifacts.\n\n\
         Single-seed runs check the canonical value against the band; seed-sweep\n\
         runs (`--seeds N`) check the sweep mean ± 95% CI instead. See\n\
         `crates/conformance/src/registry.rs` for extractors and\n\
         `docs/EXPERIMENTS.md` for the experiments themselves.\n\n\
         | claim | paper anchor | experiment | band | canonical | status |\n\
         |---|---|---|---|---|---|\n",
    );
    for claim in registry::all() {
        let path = results_dir.join(format!("{}.json", claim.experiment));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("{}: cannot read {}: {e}", claim.id, path.display()))?;
        let value: Value = serde_json::from_str(&text)
            .map_err(|e| format!("{}: {} is not JSON: {e:?}", claim.id, path.display()))?;
        let measured = (claim.extract)(&value)
            .map_err(|e| format!("{}: extractor failed on {}: {e}", claim.id, path.display()))?;
        out.push_str(&format!(
            "| `{}` | {} | `{}` | {} | {:.4} | {} |\n",
            claim.id,
            claim.anchor,
            claim.experiment,
            claim.band.describe(),
            measured,
            if claim.band.contains(measured) {
                "ok"
            } else {
                "FAIL"
            }
        ));
    }
    out.push_str(
        "\n`fleet_scale` carries no claims: its artifact holds wall-clock timings,\n\
         so it is the one experiment whose JSON is not a pure function of the seed.\n",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_claim() -> &'static Claim {
        registry::find("fig6.undefended-mcc").unwrap()
    }

    #[test]
    fn single_seed_pass_and_fail() {
        let ok = ClaimOutcome::single(sample_claim(), 0.45);
        assert!(ok.passed);
        let bad = ClaimOutcome::single(sample_claim(), 0.95);
        assert!(!bad.passed);
        assert_eq!(bad.measured(), "0.9500");
    }

    #[test]
    fn sweep_passes_iff_ci_touches_band() {
        // Band is [0.30, 0.70]; mean 0.75 ± 0.06 touches it, ±0.01 does not.
        let touching = ClaimOutcome::sweep(sample_claim(), vec![0.75; 4], 0.75, 0.06);
        assert!(touching.passed);
        let clear_miss = ClaimOutcome::sweep(sample_claim(), vec![0.75; 4], 0.75, 0.01);
        assert!(!clear_miss.passed);
    }

    #[test]
    fn failure_report_names_claim_id_and_anchor() {
        let report = ConformanceReport {
            seeds: 1,
            outcomes: vec![ClaimOutcome::single(sample_claim(), 0.95)],
            golden: Vec::new(),
        };
        assert!(!report.passed());
        let text = report.render_text();
        assert!(text.contains("FAIL fig6.undefended-mcc — Fig. 6"));
        assert!(text.contains("CONFORMANCE FAILURES"));
        let json = report.to_json();
        assert_eq!(json.get("passed"), Some(&Value::Bool(false)));
    }

    #[test]
    fn golden_drift_is_loud_and_fails_the_report() {
        let report = ConformanceReport {
            seeds: 1,
            outcomes: vec![ClaimOutcome::single(sample_claim(), 0.45)],
            golden: vec![GoldenOutcome {
                experiment: "fig6_chpr",
                anchor: "Fig. 6",
                claim_ids: vec!["fig6.undefended-mcc"],
                diffs: vec!["$.mcc_before: expected 0.54, got 0.468".into()],
                passed: false,
                new_artifact: false,
            }],
        };
        assert!(!report.passed());
        let text = report.render_text();
        assert!(text.contains("GOLDEN DRIFT fig6_chpr — Fig. 6"));
        assert!(text.contains("fig6.undefended-mcc"));
    }

    #[test]
    fn missing_snapshot_reports_as_new_artifact_and_passes() {
        let report = ConformanceReport {
            seeds: 1,
            outcomes: vec![ClaimOutcome::single(sample_claim(), 0.45)],
            golden: vec![GoldenOutcome {
                experiment: "degradation_curves",
                anchor: "roadmap (robustness)",
                claim_ids: vec!["robust.attack-survives-faults"],
                diffs: Vec::new(),
                passed: true,
                new_artifact: true,
            }],
        };
        assert!(report.passed(), "a new artifact must not fail the run");
        let text = report.render_text();
        assert!(text.contains("NEW ARTIFACT degradation_curves"));
        assert!(text.contains("(1 new, unpinned)"));
        assert!(!text.contains("GOLDEN DRIFT"));
        let json = report.to_json();
        assert_eq!(json.get("passed"), Some(&Value::Bool(true)));
    }
}
