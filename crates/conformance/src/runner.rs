//! Executes experiments in-process and validates claims against bands.
//!
//! Experiments run through the library entry points in
//! [`bench::experiments`] — one run per `(experiment, seed offset)` pair
//! is shared by every claim that reads it. Offset 0 is the canonical
//! configuration (the exact run the checked-in `results/` artifacts came
//! from); offsets `1..N` are the seed-sweep draws.

use crate::golden;
use crate::registry::{self, Claim};
use crate::report::{ClaimOutcome, ConformanceReport, GoldenOutcome};
use bench::experiments::{self, RunConfig};
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// How a conformance run is configured.
#[derive(Debug, Clone)]
pub struct Options {
    /// Number of seed draws per experiment (1 = canonical run only).
    pub seeds: u64,
    /// Substring filter over claim ids (`None` = every claim).
    pub filter: Option<String>,
    /// Directory of golden `results/*.json` snapshots to compare the
    /// canonical run against (`None` skips the golden tier).
    pub golden_dir: Option<PathBuf>,
    /// Restrict to claims marked cheap — the `cargo test` tier.
    pub cheap_only: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            seeds: 1,
            filter: None,
            golden_dir: None,
            cheap_only: false,
        }
    }
}

/// Claims selected by an options filter, in registry order.
pub fn select(opts: &Options) -> Vec<&'static Claim> {
    registry::all()
        .iter()
        .filter(|c| !opts.cheap_only || c.cheap)
        .filter(|c| match &opts.filter {
            Some(f) => c.id.contains(f.as_str()) || c.experiment.contains(f.as_str()),
            None => true,
        })
        .collect()
}

/// Nondeterministic experiments whose artifacts still join the golden
/// tier after *timing projection*: wall-clock keys are stripped from both
/// the snapshot and the fresh run, and the remaining structure (sizes,
/// equivalence flags, summaries) must match exactly. These run even when
/// no claim selects them, so their checked-in artifacts cannot silently
/// drift.
const GOLDEN_PROJECTED: &[&str] = &["stream_throughput", "recovery_soak"];

/// Whether an object key carries a wall-clock (or machine-local)
/// measurement that the golden projection drops.
fn is_timing_key(key: &str) -> bool {
    key.ends_with("_seconds")
        || key.ends_with("_per_sec")
        || key.ends_with("speedup")
        || matches!(key, "seconds" | "threads" | "obs")
}

/// Recursively removes timing keys from a JSON value (see
/// [`GOLDEN_PROJECTED`]).
fn strip_timing(v: &Value) -> Value {
    match v {
        Value::Object(map) => Value::Object(
            map.iter()
                .filter(|(k, _)| !is_timing_key(k))
                .map(|(k, val)| (k.clone(), strip_timing(val)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(strip_timing).collect()),
        other => other.clone(),
    }
}

/// Runs one experiment at one seed offset, capturing panics (experiment
/// bodies carry internal shape `assert!`s) as errors.
fn run_experiment(name: &str, offset: u64) -> Result<Value, String> {
    let spec = experiments::find(name).ok_or_else(|| format!("unknown experiment `{name}`"))?;
    let cfg = RunConfig::sweep(offset);
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (spec.run)(&cfg).json)).map_err(
        |panic| {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            format!("experiment `{name}` panicked at seed offset {offset}: {msg}")
        },
    )
}

/// Student-t 95% two-sided quantile for `df` degrees of freedom.
fn t95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        _ => 1.96,
    }
}

/// Sample mean and 95% CI half-width (0 when `values.len() == 1`).
fn mean_ci(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, t95(values.len() as u64 - 1) * (var / n).sqrt())
}

/// Validates an explicit claim list. Exposed so tests can feed the runner
/// a deliberately broken band and watch it fail loudly.
pub fn run_claims(claims: &[&'static Claim], opts: &Options) -> ConformanceReport {
    // One run per (experiment, offset), shared across claims.
    let mut runs: BTreeMap<(&str, u64), Result<Value, String>> = BTreeMap::new();
    let seeds = opts.seeds.max(1);
    for claim in claims {
        for offset in 0..seeds {
            runs.entry((claim.experiment, offset))
                .or_insert_with(|| run_experiment(claim.experiment, offset));
        }
    }

    let mut outcomes = Vec::new();
    for claim in claims {
        let mut values = Vec::new();
        let mut errors = Vec::new();
        for offset in 0..seeds {
            match &runs[&(claim.experiment, offset)] {
                Ok(json) => match (claim.extract)(json) {
                    Ok(v) => values.push(v),
                    Err(e) => errors.push(format!("offset {offset}: {e}")),
                },
                Err(e) => errors.push(format!("offset {offset}: {e}")),
            }
        }
        let outcome = if !errors.is_empty() {
            ClaimOutcome::errored(claim, values, errors)
        } else if seeds == 1 {
            ClaimOutcome::single(claim, values[0])
        } else {
            let (mean, ci_half) = mean_ci(&values);
            ClaimOutcome::sweep(claim, values, mean, ci_half)
        };
        outcomes.push(outcome);
    }

    // Golden tier: compare each deterministic experiment's canonical JSON
    // against its checked-in snapshot.
    let mut goldens = Vec::new();
    if let Some(dir) = &opts.golden_dir {
        let mut by_experiment: BTreeMap<&str, Vec<&'static str>> = BTreeMap::new();
        for claim in claims {
            by_experiment
                .entry(claim.experiment)
                .or_default()
                .push(claim.id);
        }
        // Projected experiments join the snapshot tier claim-less.
        for &name in GOLDEN_PROJECTED {
            let selected = opts
                .filter
                .as_ref()
                .is_none_or(|f| name.contains(f.as_str()));
            if selected && experiments::find(name).is_some() {
                by_experiment.entry(name).or_default();
                runs.entry((name, 0))
                    .or_insert_with(|| run_experiment(name, 0));
            }
        }
        for (experiment, claim_ids) in by_experiment {
            let spec = experiments::find(experiment).expect("selected experiments resolve");
            let projected = GOLDEN_PROJECTED.contains(&experiment);
            if !spec.deterministic && !projected {
                continue;
            }
            let path = dir.join(format!("{experiment}.json"));
            // A snapshot that does not exist yet is a *new artifact*, not
            // drift: the experiment postdates the golden directory (e.g. a
            // fresh claim checked against an older `--golden-dir`). It
            // passes with a note telling the operator to regenerate and
            // pin it; every other read failure is still loud.
            let (diffs, new_artifact) = match std::fs::read_to_string(&path) {
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => (Vec::new(), true),
                Err(e) => (
                    vec![format!("cannot read snapshot {}: {e}", path.display())],
                    false,
                ),
                Ok(text) => (
                    match serde_json::from_str::<Value>(&text) {
                        Err(e) => vec![format!("snapshot {} is not JSON: {e:?}", path.display())],
                        Ok(expected) => match &runs[&(experiment, 0)] {
                            Err(e) => vec![format!("canonical run failed: {e}")],
                            Ok(actual) if projected => {
                                golden::diff(&strip_timing(&expected), &strip_timing(actual))
                            }
                            Ok(actual) => golden::diff(&expected, actual),
                        },
                    },
                    false,
                ),
            };
            goldens.push(GoldenOutcome {
                experiment: spec.name,
                anchor: spec.paper_anchor,
                claim_ids,
                passed: diffs.is_empty(),
                new_artifact,
                diffs,
            });
        }
    }

    ConformanceReport {
        seeds,
        outcomes,
        golden: goldens,
    }
}

/// Selects claims per `opts` and validates them.
pub fn run(opts: &Options) -> ConformanceReport {
    run_claims(&select(opts), opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_quantiles_are_monotone_toward_the_normal() {
        assert!(t95(1) > t95(7));
        assert!(t95(7) > t95(30));
        assert!((t95(7) - 2.365).abs() < 1e-9);
        assert!((t95(100) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn mean_ci_matches_hand_computation() {
        let (mean, half) = mean_ci(&[1.0, 2.0, 3.0]);
        assert!((mean - 2.0).abs() < 1e-12);
        // sd = 1, se = 1/sqrt(3), t95(df=2) = 4.303.
        assert!((half - 4.303 / 3f64.sqrt()).abs() < 1e-9);
        let (m1, h1) = mean_ci(&[5.0]);
        assert_eq!((m1, h1), (5.0, 0.0));
    }

    #[test]
    fn select_honors_filter_and_cheap_tier() {
        let all = select(&Options::default());
        assert_eq!(all.len(), registry::all().len());

        let fig6 = select(&Options {
            filter: Some("fig6".into()),
            ..Options::default()
        });
        assert!(!fig6.is_empty());
        assert!(fig6
            .iter()
            .all(|c| c.id.contains("fig6") || c.experiment.contains("fig6")));

        let cheap = select(&Options {
            cheap_only: true,
            ..Options::default()
        });
        assert!(!cheap.is_empty() && cheap.len() < all.len());
        assert!(cheap.iter().all(|c| c.cheap));
    }

    #[test]
    fn timing_projection_strips_wall_clock_keys_only() {
        let v = serde_json::json!({
            "experiment": "stream_throughput",
            "threads": 8,
            "sizes": [{
                "homes": 10,
                "batch_seconds": 0.123,
                "chunks": [{
                    "chunk_len": 60,
                    "seconds": 0.5,
                    "samples_per_sec": 1e6,
                    "vs_batch_speedup": 1.1,
                    "matches_batch": true,
                    "obs": {"stream_chunks": 240},
                }],
            }],
        });
        let projected = strip_timing(&v);
        assert_eq!(
            projected,
            serde_json::json!({
                "experiment": "stream_throughput",
                "sizes": [{
                    "homes": 10,
                    "chunks": [{"chunk_len": 60, "matches_batch": true}],
                }],
            })
        );
        // Two runs differing only in timing project to the same value.
        let other = serde_json::json!({
            "experiment": "stream_throughput",
            "threads": 1,
            "sizes": [{
                "homes": 10,
                "batch_seconds": 9.9,
                "chunks": [{
                    "chunk_len": 60,
                    "seconds": 0.5,
                    "samples_per_sec": 1e6,
                    "vs_batch_speedup": 1.1,
                    "matches_batch": true,
                    "obs": {"stream_chunks": 240},
                }],
            }],
        });
        assert!(golden::diff(&projected, &strip_timing(&other)).is_empty());
    }

    #[test]
    fn unknown_experiment_is_a_loud_error() {
        let err = run_experiment("no_such_experiment", 0).unwrap_err();
        assert!(err.contains("no_such_experiment"));
    }
}
