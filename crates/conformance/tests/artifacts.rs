//! Checked-in artifact hygiene: every registered experiment keeps a
//! `.json`/`.txt` pair under `results/`, every JSON artifact round-trips
//! through the vendored serde_json, every claim holds against its
//! canonical artifact, and `docs/CLAIMS.md` matches the registry.

use conformance::{registry, report};
use serde_json::Value;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // crates/conformance -> crates -> repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

#[test]
fn every_experiment_has_a_results_artifact_pair() {
    let results = repo_root().join("results");
    for spec in bench::experiments::all() {
        let json = results.join(format!("{}.json", spec.name));
        let txt = results.join(format!("{}.txt", spec.name));
        assert!(json.is_file(), "missing artifact {}", json.display());
        assert!(txt.is_file(), "missing artifact {}", txt.display());
        assert!(
            !std::fs::read_to_string(&txt).unwrap().trim().is_empty(),
            "{} is empty",
            txt.display()
        );
    }
}

#[test]
fn every_json_artifact_round_trips_through_serde_json() {
    let results = repo_root().join("results");
    for spec in bench::experiments::all() {
        let path = results.join(format!("{}.json", spec.name));
        let text = std::fs::read_to_string(&path).unwrap();
        let value: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e:?}", path.display()));
        assert!(
            value.get("experiment").and_then(Value::as_str).is_some(),
            "{}: artifacts self-identify via an `experiment` field",
            path.display()
        );
        // Render → reparse must reproduce the tree exactly (numbers
        // round-trip through the shortest-float writer losslessly).
        let reparsed: Value = serde_json::from_str(&serde_json::to_string_pretty(&value).unwrap())
            .unwrap_or_else(|e| panic!("{} re-render does not parse: {e:?}", path.display()));
        assert_eq!(value, reparsed, "{} round-trip drift", path.display());
    }
}

#[test]
fn every_claim_holds_against_its_canonical_artifact() {
    // The single-seed claim check, evaluated from the checked-in
    // artifacts instead of a fresh run: fast, and catches a band or
    // extractor drifting away from what the repo actually records. The
    // `claims` CI job replays the same bands against fresh runs.
    let results = repo_root().join("results");
    for claim in registry::all() {
        let path = results.join(format!("{}.json", claim.experiment));
        let value: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let measured = (claim.extract)(&value).unwrap_or_else(|e| {
            panic!("{}: extractor failed on {}: {e}", claim.id, path.display())
        });
        assert!(
            claim.band.contains(measured),
            "{} ({}): canonical artifact value {measured} outside band {}",
            claim.id,
            claim.anchor,
            claim.band.describe()
        );
    }
}

#[test]
fn tournament_and_robust_claim_families_hold_against_canonical_artifacts() {
    // The generic canonical-artifact check above would pass vacuously if a
    // whole claim family were deleted from the registry; pin the roadmap
    // families by size and re-verify each member explicitly against its
    // checked-in artifact.
    let results = repo_root().join("results");
    for (prefix, expected) in [
        ("tournament.", 6),
        ("robust.", 6),
        ("fleet.recovery-", 5),
        ("netsim.shaping-", 9),
    ] {
        let family: Vec<_> = registry::all()
            .iter()
            .filter(|c| c.id.starts_with(prefix))
            .collect();
        assert_eq!(
            family.len(),
            expected,
            "the `{prefix}*` claim family shrank — bands must not be \
             silently dropped"
        );
        for claim in family {
            let path = results.join(format!("{}.json", claim.experiment));
            let value: Value =
                serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
            let measured = (claim.extract)(&value).unwrap();
            assert!(
                claim.band.contains(measured),
                "{}: canonical artifact value {measured} outside band {}",
                claim.id,
                claim.band.describe()
            );
        }
    }

    // The tournament artifact itself must be the full canonical matrix:
    // every attacker×defense cell present, the faulted home quarantined
    // in each, and the summary scalars the claims read all in place.
    let value: Value =
        serde_json::from_str(&std::fs::read_to_string(results.join("tournament.json")).unwrap())
            .unwrap();
    let cells = value.get("cells").and_then(Value::as_array).unwrap();
    assert_eq!(cells.len(), 24, "3 attackers × 8 defenses");
    assert!(cells
        .iter()
        .all(|c| c.get("quarantined").and_then(Value::as_f64) == Some(1.0)));
    let summary = value.get("summary").unwrap();
    for key in [
        "adaptive_min_non_dp_margin",
        "dp_static_degradation_min",
        "dp_adaptive_floor_margin",
        "dp_cost_min_ratio",
    ] {
        assert!(
            summary.get(key).and_then(Value::as_f64).is_some(),
            "summary scalar `{key}` missing from the canonical artifact"
        );
    }

    // The recovery artifact must record all four scenarios with their
    // equivalence flags true and the quarantine set exactly as injected.
    let value: Value =
        serde_json::from_str(&std::fs::read_to_string(results.join("recovery_soak.json")).unwrap())
            .unwrap();
    for (section, key) in [
        ("crash", "digest_identical"),
        ("transient", "identical"),
        ("rebuild", "identical"),
        ("quarantine", "exact"),
        ("quarantine", "survivors_identical"),
    ] {
        assert_eq!(
            value.get(section).and_then(|s| s.get(key)),
            Some(&Value::Bool(true)),
            "recovery_soak canonical artifact: `{section}.{key}` must be true"
        );
    }
    let quarantine = value.get("quarantine").unwrap();
    assert_eq!(
        quarantine.get("corrupted_homes"),
        quarantine.get("quarantined_homes"),
        "quarantine set drifted from the injected corruption set"
    );
}

#[test]
fn claims_md_is_in_sync_with_registry_and_artifacts() {
    let root = repo_root();
    let rendered = report::render_claims_md(&root.join("results")).unwrap();
    let committed = std::fs::read_to_string(root.join("docs/CLAIMS.md"))
        .expect("docs/CLAIMS.md exists — generate with check_claims --claims-md docs/CLAIMS.md");
    assert_eq!(
        committed, rendered,
        "docs/CLAIMS.md is stale — regenerate with \
         `cargo run --release -p conformance --bin check_claims -- --claims-md docs/CLAIMS.md`"
    );
}
