//! The `cargo test` conformance tier: every claim marked `cheap` runs
//! in-process on the canonical seed, plus harness-level failure-path
//! coverage (a deliberately broken band must fail loudly, naming the
//! claim id and paper anchor).

use conformance::registry::{self, Band, Claim};
use conformance::{runner, Options};

#[test]
fn cheap_single_seed_claims_hold() {
    let opts = Options {
        cheap_only: true,
        ..Options::default()
    };
    let report = runner::run(&opts);
    assert!(
        report.outcomes.len() >= 10,
        "cheap tier shrank to {} claims — keep enough coverage under cargo test",
        report.outcomes.len()
    );
    assert!(
        report.passed(),
        "cheap-tier conformance failures:\n{}",
        report.render_text()
    );
}

/// A band no measurement can satisfy, wired to a real experiment: the
/// runner must fail, and the rendered report must name the claim.
static BROKEN: Claim = Claim {
    id: "demo.broken-band",
    anchor: "Fig. 6",
    title: "Deliberately impossible tolerance (harness failure-path test)",
    experiment: "fig6_chpr",
    band: Band::Absolute { lo: 9.0, hi: 10.0 },
    extract: |v| {
        v.get("mcc_before")
            .and_then(serde_json::Value::as_f64)
            .ok_or_else(|| "missing mcc_before".to_string())
    },
    cheap: true,
};

#[test]
fn broken_tolerance_band_fails_and_names_the_claim() {
    let report = runner::run_claims(&[&BROKEN], &Options::default());
    assert!(!report.passed());
    let text = report.render_text();
    assert!(
        text.contains("FAIL demo.broken-band — Fig. 6"),
        "failure block must name the claim id and anchor:\n{text}"
    );
    assert!(text.contains("[9, 10]"), "failure names the band:\n{text}");

    let json = report.to_json();
    assert_eq!(json.get("passed"), Some(&serde_json::Value::Bool(false)));
    let claims = json.get("claims").and_then(|c| c.as_array()).unwrap();
    assert_eq!(
        claims[0].get("id").and_then(|v| v.as_str()),
        Some("demo.broken-band")
    );
}

#[test]
fn sweep_mode_tightens_the_verdict_with_a_ci() {
    // Two decorrelated draws of the cheapest experiment: the sweep path
    // (mean ± CI vs band) must hold for the fig1 claims.
    let opts = Options {
        seeds: 2,
        filter: Some("fig1".into()),
        ..Options::default()
    };
    let report = runner::run(&opts);
    assert_eq!(report.seeds, 2);
    assert!(report.passed(), "{}", report.render_text());
    for outcome in &report.outcomes {
        assert_eq!(
            outcome.values.len(),
            2,
            "{}: one value per seed",
            outcome.id
        );
        assert!(
            outcome.values[0] != outcome.values[1],
            "{}: sweep seeds must decorrelate the draws",
            outcome.id
        );
    }
}

#[test]
fn registered_experiments_expose_reports_with_json_and_text() {
    // Claims are only as good as the experiment contract: a registered
    // claim's experiment must produce both a JSON object and rendered
    // text on the canonical run.
    let spec = bench::experiments::find("claim_private_meter").unwrap();
    let report = (spec.run)(&bench::experiments::RunConfig::CANONICAL);
    assert!(report.json.as_object().is_some());
    assert!(!report.render_text().is_empty());
    let _ = registry::all();
}
