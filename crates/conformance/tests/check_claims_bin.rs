//! End-to-end tests of the `check_claims` binary: exit codes, golden
//! drift detection, and determinism of the metrics sidecar and claim
//! report across runs and thread counts.

use serde_json::Value;
use std::path::Path;
use std::process::{Command, Output};

fn check_claims(args: &[&str], threads: Option<&str>, cwd: &Path) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_check_claims"));
    cmd.args(args).current_dir(cwd);
    if let Some(n) = threads {
        cmd.env("RAYON_NUM_THREADS", n);
    }
    cmd.output().expect("spawn check_claims")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("check_claims_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn passing_run_exits_zero() {
    let dir = temp_dir("pass");
    let out = check_claims(&["--filter", "meter", "--no-golden"], None, &dir);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("meter.honest-bill-verifies"));
    assert!(stdout.contains("All claims within tolerance."));
}

#[test]
fn usage_errors_exit_two_and_name_the_flag() {
    let dir = temp_dir("usage");
    for bad in [
        vec!["--frobnicate"],
        vec!["--seeds", "zero"],
        vec!["--filter"],
        vec!["--filter", "no-claim-matches-this"],
    ] {
        let out = check_claims(&bad, None, &dir);
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("usage: check_claims"),
            "args {bad:?}: {stderr}"
        );
    }
}

#[test]
fn golden_drift_fails_with_exit_one_naming_experiment_and_claims() {
    let dir = temp_dir("drift");
    // A tampered snapshot: the canonical run cannot reproduce this value.
    std::fs::write(
        dir.join("fig6_chpr.json"),
        r#"{"experiment": "fig6", "mcc_before": 0.999}"#,
    )
    .unwrap();
    let out = check_claims(
        &["--filter", "fig6.undefended-mcc", "--golden-dir", "."],
        None,
        &dir,
    );
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("GOLDEN DRIFT fig6_chpr — Fig. 6"),
        "drift report names the experiment and anchor:\n{stdout}"
    );
    assert!(stdout.contains("fig6.undefended-mcc"), "{stdout}");
    assert!(
        stdout.contains("$.mcc_before"),
        "diff names the path:\n{stdout}"
    );
}

/// The deterministic section of a metrics sidecar: counters and gauges
/// (timings are wall-clock and excluded by contract — see
/// docs/OBSERVABILITY.md).
fn deterministic_section(metrics_path: &Path) -> String {
    let value: Value =
        serde_json::from_str(&std::fs::read_to_string(metrics_path).unwrap()).unwrap();
    let counters = value.get("counters").expect("metrics carry counters");
    let gauges = value.get("gauges").expect("metrics carry gauges");
    format!("{counters}{gauges}")
}

#[test]
fn metrics_and_claim_report_are_deterministic_across_runs_and_threads() {
    let dir = temp_dir("determinism");
    let run = |tag: &str, threads: &str| {
        let metrics = format!("m_{tag}.json");
        let json = format!("c_{tag}.json");
        let out = check_claims(
            &[
                "--filter",
                "fig6",
                "--no-golden",
                "--metrics",
                &metrics,
                "--json",
                &json,
            ],
            Some(threads),
            &dir,
        );
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stdout)
        );
        (
            deterministic_section(&dir.join(metrics)),
            std::fs::read_to_string(dir.join(json)).unwrap(),
        )
    };

    let (metrics_a, claims_a) = run("a", "1");
    let (metrics_b, claims_b) = run("b", "1");
    let (metrics_c, claims_c) = run("c", "8");

    assert!(!metrics_a.is_empty());
    // Same thread count, fresh process: byte-identical.
    assert_eq!(metrics_a, metrics_b, "metrics drift between identical runs");
    assert_eq!(
        claims_a, claims_b,
        "claim report drift between identical runs"
    );
    // Different thread count: counters/gauges are commutative, claim
    // values are bit-identical by the fleet engine's contract.
    assert_eq!(metrics_a, metrics_c, "metrics depend on RAYON_NUM_THREADS");
    assert_eq!(
        claims_a, claims_c,
        "claim report depends on RAYON_NUM_THREADS"
    );
}
