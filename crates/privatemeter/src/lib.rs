//! Privacy-preserving smart metering: verifiable billing and differential
//! privacy.
//!
//! Section III of the paper surveys two data-minimizing alternatives to
//! shipping raw traces to the cloud:
//!
//! * **Cryptographic metering** (III-C, after *Private Memoirs of a Smart
//!   Meter*, Molina-Markham et al.): the meter keeps readings local and
//!   sends only [`pedersen`] commitments; at billing time it opens the
//!   *aggregate* (total or time-of-use-weighted energy) and the utility
//!   verifies it against the homomorphic product of the commitments —
//!   correctness without ever seeing a single interval reading
//!   ([`billing`]).
//! * **Differential privacy** (III-A): for utility-scale analytics over
//!   *many* homes, the [`dp`] module adds Laplace noise calibrated to the
//!   query sensitivity, with an explicit ε budget accountant.
//!
//! ⚠️ The group parameters are 61-bit demonstration values — large enough
//! to exercise every code path and small enough for fast tests, but **not**
//! cryptographically secure. A production deployment would swap in a
//! standard 2048-bit group or an elliptic curve; the protocol logic is
//! identical.

pub mod aggregate;
pub mod billing;
pub mod dp;
pub mod field;
pub mod pedersen;

pub use aggregate::{aggregate_round, mask_round, MaskedReading};
pub use billing::{BillReceipt, MeterProver, UtilityVerifier};
pub use dp::{laplace_mechanism, DpAccountant, DpError};
pub use field::{mod_inv, mod_mul, mod_pow};
pub use pedersen::{Commitment, Opening, PedersenParams};
