//! The verifiable-billing protocol between a private meter and a utility.
//!
//! The meter records fine-grained readings *locally* and publishes only a
//! commitment per interval. At billing time it opens just the aggregate —
//! the total (or tariff-weighted) energy — and the utility verifies the
//! claim against the homomorphic combination of the interval commitments.
//! The utility learns the bill and nothing else; NIOM/NILM have nothing to
//! attack.

use crate::pedersen::{Commitment, Opening, PedersenParams};
use serde::{Deserialize, Serialize};
use timeseries::rng::SeededRng;
use timeseries::PowerTrace;

/// The meter-side prover: holds the private readings and openings.
#[derive(Debug, Clone)]
pub struct MeterProver {
    params: PedersenParams,
    /// Per-interval readings in watt-hours (integers; sub-Wh is rounded).
    readings_wh: Vec<u64>,
    openings: Vec<Opening>,
    commitments: Vec<Commitment>,
}

/// A bill claim: the aggregate value and the aggregate blinding factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BillReceipt {
    /// Claimed aggregate (plain or tariff-weighted watt-hours).
    pub total: u64,
    /// Sum of blinding randomness mod the group order.
    pub r_total: u64,
}

impl MeterProver {
    /// Ingests a power trace, converting each sample to interval energy in
    /// watt-hours and committing to it.
    pub fn from_trace(params: PedersenParams, trace: &PowerTrace, rng: &mut SeededRng) -> Self {
        let wh_per_sample = trace.resolution().as_hours();
        let readings_wh: Vec<u64> = trace
            .samples()
            .iter()
            .map(|&w| (w * wh_per_sample).round().max(0.0) as u64)
            .collect();
        let mut openings = Vec::with_capacity(readings_wh.len());
        let mut commitments = Vec::with_capacity(readings_wh.len());
        for &m in &readings_wh {
            let (c, o) = params.commit(m, rng);
            commitments.push(c);
            openings.push(o);
        }
        MeterProver {
            params,
            readings_wh,
            openings,
            commitments,
        }
    }

    /// The public commitments the meter uploads (one per interval).
    pub fn commitments(&self) -> &[Commitment] {
        &self.commitments
    }

    /// Number of committed intervals.
    pub fn len(&self) -> usize {
        self.readings_wh.len()
    }

    /// `true` if no intervals are committed.
    pub fn is_empty(&self) -> bool {
        self.readings_wh.is_empty()
    }

    /// Opens the plain total-energy bill.
    pub fn bill_total(&self) -> BillReceipt {
        let total = self.readings_wh.iter().sum();
        let r_total = self
            .openings
            .iter()
            .fold(0u128, |acc, o| (acc + o.r as u128) % self.params.q as u128)
            as u64;
        BillReceipt { total, r_total }
    }

    /// Opens a tariff-weighted bill: `Σ wᵢ·mᵢ` with public per-interval
    /// weights (e.g. time-of-use prices in tenths of a cent).
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not match the interval count.
    pub fn bill_weighted(&self, weights: &[u64]) -> BillReceipt {
        assert_eq!(weights.len(), self.len(), "one weight per interval");
        let total = self
            .readings_wh
            .iter()
            .zip(weights)
            .map(|(&m, &w)| m * w)
            .sum();
        let r_total = self
            .openings
            .iter()
            .zip(weights)
            .fold(0u128, |acc, (o, &w)| {
                (acc + o.r as u128 * w as u128) % self.params.q as u128
            }) as u64;
        BillReceipt { total, r_total }
    }
}

/// The utility-side verifier: sees only commitments and receipts.
#[derive(Debug, Clone, Copy)]
pub struct UtilityVerifier {
    params: PedersenParams,
}

impl UtilityVerifier {
    /// Creates a verifier over the shared public parameters.
    pub fn new(params: PedersenParams) -> Self {
        UtilityVerifier { params }
    }

    /// Verifies a plain total-energy bill against the uploaded
    /// commitments.
    pub fn verify_total(&self, commitments: &[Commitment], receipt: &BillReceipt) -> bool {
        let combined = self.params.combine(commitments);
        self.params.verify(
            combined,
            &Opening {
                message: receipt.total,
                r: receipt.r_total,
            },
        )
    }

    /// Verifies a tariff-weighted bill.
    pub fn verify_weighted(
        &self,
        commitments: &[Commitment],
        weights: &[u64],
        receipt: &BillReceipt,
    ) -> bool {
        if commitments.len() != weights.len() {
            return false;
        }
        let combined = self.params.combine_weighted(commitments, weights);
        self.params.verify(
            combined,
            &Opening {
                message: receipt.total,
                r: receipt.r_total,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::rng::seeded_rng;
    use timeseries::{Resolution, Timestamp};

    fn month_trace() -> PowerTrace {
        PowerTrace::from_fn(Timestamp::ZERO, Resolution::FIFTEEN_MINUTES, 30 * 96, |i| {
            300.0
                + 900.0
                    * ((i % 96) as f64 / 96.0 * std::f64::consts::TAU)
                        .sin()
                        .max(0.0)
        })
    }

    #[test]
    fn honest_bill_verifies() {
        let pp = PedersenParams::demo();
        let prover = MeterProver::from_trace(pp, &month_trace(), &mut seeded_rng(1));
        let receipt = prover.bill_total();
        let verifier = UtilityVerifier::new(pp);
        assert!(verifier.verify_total(prover.commitments(), &receipt));
        // The claimed energy matches the trace (within Wh rounding).
        let expect_wh = month_trace().energy_kwh() * 1_000.0;
        assert!((receipt.total as f64 - expect_wh).abs() < 30.0 * 96.0 * 0.5 + 1.0);
    }

    #[test]
    fn understated_bill_rejected() {
        let pp = PedersenParams::demo();
        let prover = MeterProver::from_trace(pp, &month_trace(), &mut seeded_rng(2));
        let mut receipt = prover.bill_total();
        receipt.total -= 500; // shave the bill
        assert!(!UtilityVerifier::new(pp).verify_total(prover.commitments(), &receipt));
    }

    #[test]
    fn tampered_commitment_rejected() {
        let pp = PedersenParams::demo();
        let prover = MeterProver::from_trace(pp, &month_trace(), &mut seeded_rng(3));
        let receipt = prover.bill_total();
        let mut tampered = prover.commitments().to_vec();
        tampered[0] = Commitment(tampered[0].0 ^ 2);
        assert!(!UtilityVerifier::new(pp).verify_total(&tampered, &receipt));
    }

    #[test]
    fn time_of_use_bill_verifies() {
        let pp = PedersenParams::demo();
        let trace = month_trace();
        let prover = MeterProver::from_trace(pp, &trace, &mut seeded_rng(4));
        // Peak price 30 (arbitrary units) from noon to 8pm, else 10.
        let weights: Vec<u64> = (0..trace.len())
            .map(|i| {
                let hour = (i % 96) / 4;
                if (12..20).contains(&hour) {
                    30
                } else {
                    10
                }
            })
            .collect();
        let receipt = prover.bill_weighted(&weights);
        let v = UtilityVerifier::new(pp);
        assert!(v.verify_weighted(prover.commitments(), &weights, &receipt));
        // Cross-check against the plain bill: weighted ≥ 10 × plain.
        assert!(receipt.total >= 10 * prover.bill_total().total);
        // Wrong weights fail.
        let flat = vec![10u64; weights.len()];
        assert!(!v.verify_weighted(prover.commitments(), &flat, &receipt));
    }

    #[test]
    fn commitments_leak_nothing_obvious() {
        // Two very different homes produce commitment streams with no
        // shared values (hiding): the utility cannot even equality-match.
        let pp = PedersenParams::demo();
        let flat = PowerTrace::constant(Timestamp::ZERO, Resolution::ONE_HOUR, 48, 500.0);
        let prover1 = MeterProver::from_trace(pp, &flat, &mut seeded_rng(5));
        let prover2 = MeterProver::from_trace(pp, &flat, &mut seeded_rng(6));
        let set1: std::collections::HashSet<_> = prover1.commitments().iter().collect();
        assert!(prover2.commitments().iter().all(|c| !set1.contains(c)));
        // Even within one meter, equal readings commit differently.
        let c = prover1.commitments();
        assert!(c.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn empty_trace() {
        let pp = PedersenParams::demo();
        let empty = PowerTrace::zeros(Timestamp::ZERO, Resolution::ONE_HOUR, 0);
        let prover = MeterProver::from_trace(pp, &empty, &mut seeded_rng(7));
        assert!(prover.is_empty());
        let receipt = prover.bill_total();
        assert_eq!(receipt.total, 0);
        assert!(UtilityVerifier::new(pp).verify_total(prover.commitments(), &receipt));
    }
}
