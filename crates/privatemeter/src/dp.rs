//! Differential privacy for released energy aggregates (Section III-A).
//!
//! The paper notes DP fits the *release* setting: a utility publishing
//! neighbourhood-level statistics should prevent any single home from
//! being identified, even though DP does not address the utility's own
//! view. This module provides the Laplace mechanism with an ε accountant.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use timeseries::rng::{laplace, SeededRng};

/// Errors from the privacy accountant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DpError {
    /// The requested ε would exceed the remaining budget.
    BudgetExhausted {
        /// ε remaining.
        remaining: f64,
        /// ε requested.
        requested: f64,
    },
    /// A non-positive ε or sensitivity was supplied.
    InvalidParameter,
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::BudgetExhausted {
                remaining,
                requested,
            } => {
                write!(
                    f,
                    "privacy budget exhausted: requested ε={requested}, remaining ε={remaining}"
                )
            }
            DpError::InvalidParameter => write!(f, "epsilon and sensitivity must be positive"),
        }
    }
}

impl Error for DpError {}

/// Strictly-positive check that also rejects NaN (`partial_cmp`-based, so
/// a NaN parameter is an error rather than silently accepted).
fn is_positive(x: f64) -> bool {
    x.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater)
}

/// Adds Laplace noise scaled to `sensitivity / epsilon` — the standard
/// ε-DP mechanism for numeric queries.
///
/// # Errors
///
/// Returns [`DpError::InvalidParameter`] for non-positive ε or sensitivity.
pub fn laplace_mechanism(
    true_value: f64,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut SeededRng,
) -> Result<f64, DpError> {
    if !is_positive(epsilon) || !is_positive(sensitivity) {
        return Err(DpError::InvalidParameter);
    }
    Ok(true_value + laplace(rng, 0.0, sensitivity / epsilon))
}

/// Tracks cumulative ε across queries (sequential composition).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpAccountant {
    budget: f64,
    spent: f64,
}

impl DpAccountant {
    /// Creates an accountant with a total ε budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is not finite and positive.
    pub fn new(budget: f64) -> Self {
        assert!(
            budget.is_finite() && budget > 0.0,
            "budget must be positive"
        );
        DpAccountant { budget, spent: 0.0 }
    }

    /// ε spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// ε remaining.
    pub fn remaining(&self) -> f64 {
        (self.budget - self.spent).max(0.0)
    }

    /// Answers a numeric query under ε-DP, charging the budget.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::BudgetExhausted`] when the budget cannot cover
    /// `epsilon`, or [`DpError::InvalidParameter`] for bad parameters.
    pub fn query(
        &mut self,
        true_value: f64,
        sensitivity: f64,
        epsilon: f64,
        rng: &mut SeededRng,
    ) -> Result<f64, DpError> {
        if !is_positive(epsilon) || !is_positive(sensitivity) {
            return Err(DpError::InvalidParameter);
        }
        if epsilon > self.remaining() + 1e-12 {
            return Err(DpError::BudgetExhausted {
                remaining: self.remaining(),
                requested: epsilon,
            });
        }
        let out = laplace_mechanism(true_value, sensitivity, epsilon, rng)?;
        self.spent += epsilon;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::rng::seeded_rng;

    #[test]
    fn noise_scales_inversely_with_epsilon() {
        let mut rng = seeded_rng(1);
        let n = 4_000;
        let spread = |eps: f64, rng: &mut _| {
            let mut acc = 0.0;
            for _ in 0..n {
                let v = laplace_mechanism(100.0, 1.0, eps, rng).unwrap();
                acc += (v - 100.0).abs();
            }
            acc / n as f64
        };
        let loose = spread(0.1, &mut rng);
        let tight = spread(10.0, &mut rng);
        // Mean |Laplace(b)| = b → ratio should be ~100.
        assert!(loose / tight > 30.0, "loose {loose} tight {tight}");
    }

    #[test]
    fn accountant_enforces_budget() {
        let mut acct = DpAccountant::new(1.0);
        let mut rng = seeded_rng(2);
        assert!(acct.query(10.0, 1.0, 0.6, &mut rng).is_ok());
        assert!((acct.spent() - 0.6).abs() < 1e-12);
        assert!(matches!(
            acct.query(10.0, 1.0, 0.6, &mut rng),
            Err(DpError::BudgetExhausted { .. })
        ));
        assert!(acct.query(10.0, 1.0, 0.4, &mut rng).is_ok());
        assert!(acct.remaining() < 1e-9);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut rng = seeded_rng(3);
        assert_eq!(
            laplace_mechanism(1.0, 0.0, 1.0, &mut rng),
            Err(DpError::InvalidParameter)
        );
        assert_eq!(
            laplace_mechanism(1.0, 1.0, -1.0, &mut rng),
            Err(DpError::InvalidParameter)
        );
        let mut acct = DpAccountant::new(1.0);
        assert_eq!(
            acct.query(1.0, 1.0, 0.0, &mut rng),
            Err(DpError::InvalidParameter)
        );
    }

    #[test]
    fn unbiased() {
        let mut rng = seeded_rng(4);
        let n = 20_000;
        let mean = (0..n)
            .map(|_| laplace_mechanism(50.0, 2.0, 1.0, &mut rng).unwrap())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 50.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn error_messages() {
        let e = DpError::BudgetExhausted {
            remaining: 0.1,
            requested: 0.5,
        };
        assert!(e.to_string().contains("exhausted"));
        assert!(DpError::InvalidParameter.to_string().contains("positive"));
    }
}
