//! Pedersen commitments over a Schnorr group (demonstration parameters).

use crate::field::{mod_mul, mod_pow};
use rand::Rng;
use serde::{Deserialize, Serialize};
use timeseries::rng::SeededRng;

/// Parameters of the commitment scheme: a safe-prime group of order `q`
/// with independent generators `g` and `h` of the order-`q` subgroup.
///
/// Commit(m, r) = gᵐ·hʳ mod p — perfectly hiding, computationally binding
/// (under dlog), and *additively homomorphic*: the product of commitments
/// commits to the sum of messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PedersenParams {
    /// The group modulus (a safe prime, p = 2q + 1).
    pub p: u64,
    /// The subgroup order.
    pub q: u64,
    /// First generator.
    pub g: u64,
    /// Second generator (dlog relative to `g` unknown).
    pub h: u64,
}

impl PedersenParams {
    /// 61-bit demonstration parameters (see crate docs for the caveat).
    pub fn demo() -> Self {
        PedersenParams {
            p: 2_305_843_009_213_691_579,
            q: 1_152_921_504_606_845_789,
            g: 4,
            h: 289,
        }
    }

    /// Commits to `message` with explicit randomness `r` (both mod `q`).
    pub fn commit_with(&self, message: u64, r: u64) -> Commitment {
        let gm = mod_pow(self.g, message % self.q, self.p);
        let hr = mod_pow(self.h, r % self.q, self.p);
        Commitment(mod_mul(gm, hr, self.p))
    }

    /// Commits to `message` with fresh randomness from `rng`, returning the
    /// commitment and the opening the prover must retain.
    pub fn commit(&self, message: u64, rng: &mut SeededRng) -> (Commitment, Opening) {
        let r = rng.gen_range(0..self.q);
        (self.commit_with(message, r), Opening { message, r })
    }

    /// Verifies that `opening` opens `commitment`.
    pub fn verify(&self, commitment: Commitment, opening: &Opening) -> bool {
        self.commit_with(opening.message, opening.r) == commitment
    }

    /// Homomorphic combination: the product of commitments commits to the
    /// sum of messages (and randomness).
    pub fn combine(&self, commitments: &[Commitment]) -> Commitment {
        Commitment(
            commitments
                .iter()
                .fold(1u64, |acc, c| mod_mul(acc, c.0, self.p)),
        )
    }

    /// Homomorphic weighted combination: Π Cᵢ^{wᵢ} commits to Σ wᵢ·mᵢ.
    pub fn combine_weighted(&self, commitments: &[Commitment], weights: &[u64]) -> Commitment {
        assert_eq!(commitments.len(), weights.len(), "weight per commitment");
        Commitment(commitments.iter().zip(weights).fold(1u64, |acc, (c, &w)| {
            mod_mul(acc, mod_pow(c.0, w, self.p), self.p)
        }))
    }
}

/// A Pedersen commitment (a group element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Commitment(pub u64);

/// The secret opening of a commitment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Opening {
    /// The committed message.
    pub message: u64,
    /// The blinding randomness.
    pub r: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::is_prime;
    use timeseries::rng::seeded_rng;

    #[test]
    fn demo_params_are_a_schnorr_group() {
        let pp = PedersenParams::demo();
        assert!(is_prime(pp.p));
        assert!(is_prime(pp.q));
        assert_eq!(pp.p, 2 * pp.q + 1);
        // Generators have order q.
        assert_eq!(mod_pow(pp.g, pp.q, pp.p), 1);
        assert_eq!(mod_pow(pp.h, pp.q, pp.p), 1);
        assert_ne!(pp.g, 1);
        assert_ne!(pp.h, 1);
    }

    #[test]
    fn commit_verify_round_trip() {
        let pp = PedersenParams::demo();
        let mut rng = seeded_rng(1);
        let (c, o) = pp.commit(1_234, &mut rng);
        assert!(pp.verify(c, &o));
        // Wrong message or randomness fails.
        assert!(!pp.verify(
            c,
            &Opening {
                message: 1_235,
                r: o.r
            }
        ));
        assert!(!pp.verify(
            c,
            &Opening {
                message: o.message,
                r: o.r ^ 1
            }
        ));
    }

    #[test]
    fn hiding_fresh_randomness() {
        let pp = PedersenParams::demo();
        let mut rng = seeded_rng(2);
        let (c1, _) = pp.commit(42, &mut rng);
        let (c2, _) = pp.commit(42, &mut rng);
        assert_ne!(c1, c2, "same message must not produce equal commitments");
    }

    #[test]
    fn additive_homomorphism() {
        let pp = PedersenParams::demo();
        let mut rng = seeded_rng(3);
        let (c1, o1) = pp.commit(100, &mut rng);
        let (c2, o2) = pp.commit(250, &mut rng);
        let combined = pp.combine(&[c1, c2]);
        let opening = Opening {
            message: o1.message + o2.message,
            r: ((o1.r as u128 + o2.r as u128) % pp.q as u128) as u64,
        };
        assert!(pp.verify(combined, &opening));
    }

    #[test]
    fn weighted_homomorphism() {
        let pp = PedersenParams::demo();
        let mut rng = seeded_rng(4);
        let (c1, o1) = pp.commit(10, &mut rng);
        let (c2, o2) = pp.commit(20, &mut rng);
        let combined = pp.combine_weighted(&[c1, c2], &[3, 5]);
        let msg = 3 * o1.message + 5 * o2.message;
        let r = ((3u128 * o1.r as u128 + 5u128 * o2.r as u128) % pp.q as u128) as u64;
        assert!(pp.verify(combined, &Opening { message: msg, r }));
    }

    #[test]
    fn empty_combine_is_identity() {
        let pp = PedersenParams::demo();
        assert_eq!(pp.combine(&[]).0, 1);
        let id = pp.commit_with(0, 0);
        assert_eq!(id.0, 1);
    }
}
