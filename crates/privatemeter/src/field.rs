//! Modular arithmetic helpers over 64-bit moduli (via 128-bit widening).

/// `(a * b) mod m` without overflow.
pub fn mod_mul(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `(a + b) mod m` without overflow.
pub fn mod_add(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 + b as u128) % m as u128) as u64
}

/// `base^exp mod m` by square-and-multiply.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    assert!(m > 0, "modulus must be non-zero");
    if m == 1 {
        return 0;
    }
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mod_mul(acc, base, m);
        }
        base = mod_mul(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Multiplicative inverse of `a` modulo prime `p` (Fermat).
///
/// # Panics
///
/// Panics if `a` is zero modulo `p`.
pub fn mod_inv(a: u64, p: u64) -> u64 {
    assert!(!a.is_multiple_of(p), "zero has no inverse");
    mod_pow(a, p - 2, p)
}

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    // These witnesses are exact for n < 2^64.
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mod_mul(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_pow_basics() {
        assert_eq!(mod_pow(2, 10, 1_000_000_007), 1024);
        assert_eq!(mod_pow(5, 0, 97), 1);
        assert_eq!(mod_pow(7, 96, 97), 1); // Fermat
        assert_eq!(mod_pow(123, 456, 1), 0);
    }

    #[test]
    fn mod_mul_no_overflow() {
        let big = u64::MAX - 58; // arbitrary large values
        let m = u64::MAX - 82;
        let r = mod_mul(big, big, m);
        assert!(r < m);
    }

    #[test]
    fn inverse_round_trip() {
        let p = 2_305_843_009_213_691_579u64;
        for a in [2u64, 3, 12345, 987_654_321] {
            let inv = mod_inv(a, p);
            assert_eq!(mod_mul(a, inv, p), 1);
        }
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_rejected() {
        mod_inv(0, 97);
    }

    #[test]
    fn primality() {
        assert!(is_prime(2));
        assert!(is_prime(97));
        assert!(is_prime(2_305_843_009_213_691_579)); // our demo p
        assert!(is_prime(1_152_921_504_606_845_789)); // our demo q
        assert!(!is_prime(1));
        assert!(!is_prime(561)); // Carmichael
        assert!(!is_prime(2_305_843_009_213_691_577));
    }
}
