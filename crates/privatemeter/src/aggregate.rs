//! Privacy-preserving neighbourhood aggregation.
//!
//! Utilities legitimately need feeder- or neighbourhood-level totals (grid
//! analytics the paper wants to keep possible) without learning any single
//! home's usage. Homes jointly blind their contributions with pairwise
//! masks that cancel in the sum: the aggregator learns exactly the total,
//! and each home's commitment lets it verify no one lied.

use crate::field::mod_mul;
use crate::pedersen::{Commitment, Opening, PedersenParams};
use rand::Rng;
use serde::{Deserialize, Serialize};
use timeseries::rng::SeededRng;

/// One home's submission to the aggregation round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaskedReading {
    /// The home's reading plus its net mask, mod the group order.
    pub masked_value: u64,
    /// Commitment to the *true* reading (for verification).
    pub commitment: Commitment,
    /// The blinding randomness of the commitment, revealed at aggregation
    /// (the value itself stays masked — hiding comes from the pairwise
    /// masks, binding from the commitment).
    pub r: u64,
}

/// Runs one aggregation round over `readings_wh` (one value per home).
///
/// Returns the submissions and the modulus used; pairwise masks are
/// simulated locally (in a deployment each pair of homes derives its mask
/// from a shared secret).
pub fn mask_round(
    params: &PedersenParams,
    readings_wh: &[u64],
    rng: &mut SeededRng,
) -> Vec<MaskedReading> {
    let n = readings_wh.len();
    let q = params.q;
    // Pairwise masks: m[i][j] = -m[j][i]; each home i adds Σ_j m[i][j].
    let mut net_masks = vec![0u64; n];
    for i in 0..n {
        for j in i + 1..n {
            let m: u64 = rng.gen_range(0..q);
            net_masks[i] = ((net_masks[i] as u128 + m as u128) % q as u128) as u64;
            net_masks[j] = ((net_masks[j] as u128 + (q - m) as u128) % q as u128) as u64;
        }
    }
    readings_wh
        .iter()
        .zip(&net_masks)
        .map(|(&value, &mask)| {
            let r: u64 = rng.gen_range(0..q);
            MaskedReading {
                masked_value: ((value as u128 + mask as u128) % q as u128) as u64,
                commitment: params.commit_with(value, r),
                r,
            }
        })
        .collect()
}

/// Aggregates a round: recovers the neighbourhood total and verifies it
/// against the homomorphic product of the homes' commitments.
///
/// Returns `None` when verification fails (some home lied about its
/// reading or its mask).
pub fn aggregate_round(params: &PedersenParams, submissions: &[MaskedReading]) -> Option<u64> {
    let q = params.q;
    let total = submissions
        .iter()
        .fold(0u128, |acc, s| (acc + s.masked_value as u128) % q as u128) as u64;
    // Verify: product of commitments must open to (total, Σr) — masks
    // cancel, so the masked sum equals the committed sum mod q.
    let combined = Commitment(
        submissions
            .iter()
            .fold(1u64, |acc, s| mod_mul(acc, s.commitment.0, params.p)),
    );
    let r_total = submissions
        .iter()
        .fold(0u128, |acc, s| (acc + s.r as u128) % q as u128) as u64;
    params
        .verify(
            combined,
            &Opening {
                message: total,
                r: r_total,
            },
        )
        .then_some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::rng::seeded_rng;

    #[test]
    fn total_recovered_exactly() {
        let pp = PedersenParams::demo();
        let readings = vec![12_000u64, 7_500, 31_000, 150, 9_999];
        let mut rng = seeded_rng(1);
        let subs = mask_round(&pp, &readings, &mut rng);
        let total = aggregate_round(&pp, &subs).expect("honest round verifies");
        assert_eq!(total, readings.iter().sum::<u64>());
    }

    #[test]
    fn individual_values_are_masked() {
        let pp = PedersenParams::demo();
        let readings = vec![100u64, 200, 300];
        let subs = mask_round(&pp, &readings, &mut seeded_rng(2));
        // No submission equals (or is near) its true reading.
        for (s, &r) in subs.iter().zip(&readings) {
            assert!(s.masked_value.abs_diff(r) > 1_000_000, "mask too weak");
        }
    }

    #[test]
    fn tampered_submission_detected() {
        let pp = PedersenParams::demo();
        let readings = vec![5_000u64, 6_000, 7_000];
        let mut subs = mask_round(&pp, &readings, &mut seeded_rng(3));
        subs[1].masked_value = subs[1].masked_value.wrapping_add(50); // inflate
        assert!(aggregate_round(&pp, &subs).is_none());
    }

    #[test]
    fn single_home_round() {
        // Degenerate but legal: one home (no masks cancel, value exposed —
        // the protocol still verifies).
        let pp = PedersenParams::demo();
        let subs = mask_round(&pp, &[42], &mut seeded_rng(4));
        assert_eq!(aggregate_round(&pp, &subs), Some(42));
    }

    #[test]
    fn empty_round() {
        let pp = PedersenParams::demo();
        let subs = mask_round(&pp, &[], &mut seeded_rng(5));
        assert_eq!(aggregate_round(&pp, &subs), Some(0));
    }
}
