//! Traffic shaping: the anti-fingerprinting defense.
//!
//! Padding flow sizes to buckets and blending in constant-rate cover
//! traffic destroys the metadata features fingerprinting relies on. The
//! cost is overhead bytes — measured and reported, since shaping is only
//! credible with its price tag.

use crate::flow::FlowRecord;
use serde::{Deserialize, Serialize};

/// A traffic shaper applied at the gateway on behalf of all devices.
///
/// Two mechanisms compose: flow sizes are padded to buckets (hiding
/// magnitudes), and per-device flow *counts* are padded to a constant rate
/// per window with dummy cover flows (hiding timing — without this, the
/// mere rate of event flows still betrays occupancy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficShaper {
    /// Flow sizes are padded up to the next multiple of this many bytes.
    pub pad_to_bytes: u64,
    /// Window over which per-device flow counts are equalized, seconds
    /// (0 disables constant-rate cover traffic).
    pub cover_window_secs: u64,
    /// Size of each cover flow, bytes (split like the padded flows).
    pub cover_flow_bytes: u64,
}

impl Default for TrafficShaper {
    fn default() -> Self {
        TrafficShaper {
            pad_to_bytes: 1 << 20, // 1 MiB buckets
            cover_window_secs: 1_800,
            cover_flow_bytes: 1 << 20,
        }
    }
}

/// The result of shaping: what an observer now sees, plus the overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct Shaped {
    /// The shaped flow stream.
    pub flows: Vec<FlowRecord>,
    /// Padding + cover overhead as a fraction of the original bytes.
    pub overhead_frac: f64,
}

impl TrafficShaper {
    /// Shapes a flow stream covering `horizon_secs` for the device set in
    /// `device_ids`.
    pub fn shape(&self, flows: &[FlowRecord], device_ids: &[u32], horizon_secs: u64) -> Shaped {
        let original_bytes: u64 = flows.iter().map(|f| f.total_bytes()).sum();
        let mut out = Vec::with_capacity(flows.len());
        // Pad real flows.
        for f in flows {
            let padded = pad(f.total_bytes(), self.pad_to_bytes);
            let up = padded / 2;
            out.push(FlowRecord {
                bytes_up: up,
                bytes_down: padded - up,
                ..*f
            });
        }
        // Constant-rate cover traffic: pad each device's per-window flow
        // count up to its own maximum, so counts carry no information.
        if self.cover_window_secs > 0 && horizon_secs > 0 {
            let n_windows = horizon_secs.div_ceil(self.cover_window_secs) as usize;
            for &device_id in device_ids {
                let mut counts = vec![0u32; n_windows];
                for f in flows {
                    if f.device_id == device_id {
                        let w = (f.start_secs / self.cover_window_secs) as usize;
                        if w < counts.len() {
                            counts[w] += 1;
                        }
                    }
                }
                let target = counts.iter().copied().max().unwrap_or(0).max(1);
                for (w, &c) in counts.iter().enumerate() {
                    for k in 0..target.saturating_sub(c) {
                        // Deterministic spread inside the window.
                        let offset =
                            (k as u64 * 997 + device_id as u64 * 131) % self.cover_window_secs;
                        out.push(FlowRecord {
                            start_secs: w as u64 * self.cover_window_secs + offset,
                            duration_secs: 5,
                            device_id,
                            bytes_up: self.cover_flow_bytes / 2,
                            bytes_down: self.cover_flow_bytes - self.cover_flow_bytes / 2,
                            endpoint: 500_000, // the shaping relay
                        });
                    }
                }
            }
        }
        out.sort_by_key(|f| f.start_secs);
        let shaped_bytes: u64 = out.iter().map(|f| f.total_bytes()).sum();
        let overhead_frac = if original_bytes > 0 {
            (shaped_bytes.saturating_sub(original_bytes)) as f64 / original_bytes as f64
        } else {
            0.0
        };
        Shaped {
            flows: out,
            overhead_frac,
        }
    }
}

fn pad(bytes: u64, bucket: u64) -> u64 {
    if bucket <= 1 {
        return bytes;
    }
    bytes.div_ceil(bucket).max(1) * bucket
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceType;
    use crate::fingerprint::{accuracy, labelled_examples, NaiveBayes};
    use crate::generate::simulate_home_network;
    use timeseries::{LabelSeries, Resolution, Timestamp};

    fn occupancy(days: usize) -> LabelSeries {
        LabelSeries::from_fn(Timestamp::ZERO, Resolution::ONE_MINUTE, days * 1440, |i| {
            let m = i % 1440;
            !(540..1_020).contains(&m)
        })
    }

    #[test]
    fn padding_quantizes_sizes() {
        assert_eq!(pad(1, 1024), 1024);
        assert_eq!(pad(1024, 1024), 1024);
        assert_eq!(pad(1025, 1024), 2048);
        assert_eq!(pad(0, 1024), 1024);
        assert_eq!(pad(7, 1), 7);
    }

    #[test]
    fn shaping_defeats_fingerprinting() {
        let inv = DeviceType::all().to_vec();
        let train_trace = simulate_home_network(&inv, &occupancy(6), 6, 300);
        let test_trace = simulate_home_network(&inv, &occupancy(6), 6, 400);
        // Attacker trains on *unshaped* data (a lab profile)…
        let nb = NaiveBayes::train(&labelled_examples(&train_trace, 6));
        let ids: Vec<u32> = test_trace.devices.iter().map(|d| d.device_id).collect();
        // …but the home applies shaping.
        let shaped =
            TrafficShaper::default().shape(&test_trace.flows, &ids, test_trace.horizon_secs);
        let mut shaped_trace = test_trace.clone();
        shaped_trace.flows = shaped.flows;
        let acc_shaped = accuracy(&nb, &labelled_examples(&shaped_trace, 6));
        let acc_clear = accuracy(&nb, &labelled_examples(&test_trace, 6));
        assert!(
            acc_shaped < acc_clear - 0.3,
            "shaped {acc_shaped} should be far below clear {acc_clear}"
        );
    }

    #[test]
    fn overhead_reported() {
        let inv = [DeviceType::SmartPlug];
        let trace = simulate_home_network(&inv, &occupancy(2), 2, 500);
        let shaped = TrafficShaper::default().shape(&trace.flows, &[1], trace.horizon_secs);
        // A chatty-but-tiny device pays enormous relative overhead.
        assert!(
            shaped.overhead_frac > 10.0,
            "overhead {}",
            shaped.overhead_frac
        );
        assert!(shaped.flows.len() > trace.flows.len());
    }

    #[test]
    fn no_cover_traffic_mode() {
        let inv = [DeviceType::Hub];
        let trace = simulate_home_network(&inv, &occupancy(1), 1, 600);
        let shaper = TrafficShaper {
            cover_window_secs: 0,
            ..Default::default()
        };
        let shaped = shaper.shape(&trace.flows, &[1], trace.horizon_secs);
        assert_eq!(shaped.flows.len(), trace.flows.len());
    }

    #[test]
    fn constant_rate_hides_occupancy() {
        use crate::activity::TrafficOccupancy;
        let inv = DeviceType::all().to_vec();
        let occ = occupancy(6);
        let trace = simulate_home_network(&inv, &occ, 6, 700);
        let ids: Vec<u32> = trace.devices.iter().map(|d| d.device_id).collect();
        let shaped = TrafficShaper::default().shape(&trace.flows, &ids, trace.horizon_secs);
        let attack = TrafficOccupancy::default();
        let before = attack
            .evaluate(&trace.flows, &occ, trace.horizon_secs)
            .unwrap()
            .mcc();
        let after = attack
            .evaluate(&shaped.flows, &occ, trace.horizon_secs)
            .unwrap()
            .mcc();
        assert!(before > 0.5, "attack works on clear traffic: {before:.3}");
        assert!(after < 0.2, "shaping should hide occupancy: {after:.3}");
    }
}
